#!/usr/bin/env python3
"""The attack gauntlet: Table 1 live, plus a fault-tolerance finale.

Runs every concrete attack from the paper's threat model against TLS,
mbTLS, and the baselines, and prints the resulting threat/defense matrix —
including where the *baselines* fall over, which is the point of mbTLS's
per-hop keys and SGX protection. Then kills a middlebox mid-handshake and
shows the session degrade gracefully instead of hanging: the availability
half of robustness that Table 1's confidentiality rows don't cover.
Finally an on-path downgrade box strips the MiddleboxSupport extension
and corrupts a secondary handshake, showing detection via the transcript
binding and the accounted-vs-fail-closed fallback policy.

Run:  python examples/attack_gauntlet.py
"""

from repro.bench.tables import render_table
from repro.bench.threats import run_all_threats
from repro.netsim.adversary import GlobalAdversary
from repro.netsim.fuzz import ChunkMutator, FuzzTap
from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    SessionEstablished,
)
from repro.core.drivers import (
    MiddleboxService,
    RetryPolicy,
    SessionSupervisor,
    serve_mbtls,
)
from repro.crypto.drbg import HmacDrbg
from repro.netsim.faults import FaultInjector, FaultPlan, HostCrash
from repro.netsim.network import Network
from repro.pki import CertificateAuthority, TrustStore
from repro.tls.config import TLSConfig
from repro.tls.events import ApplicationData


def run_crash_scenario() -> None:
    """A middlebox dies 12 ms into the handshake; the supervised client
    times out, redials past the corpse, and finishes degraded — never a
    hang, never an exception out of the event loop."""
    rng = HmacDrbg(b"gauntlet-chaos")
    ca = CertificateAuthority("root", rng.fork(b"ca"))
    trust = TrustStore([ca.certificate])

    net = Network()
    for name in ("client", "proxy", "server"):
        net.add_host(name)
    net.add_link("client", "proxy", latency=0.002)
    net.add_link("proxy", "server", latency=0.002)

    MiddleboxService(
        net.host("proxy"),
        lambda: MiddleboxConfig(
            name="proxy",
            tls=TLSConfig(rng=rng.fork(b"mb"),
                          credential=ca.issue_credential("proxy")),
            role=MiddleboxRole.CLIENT_SIDE,
            process=lambda direction, data: data,
        ),
    )

    echoed: list[bytes] = []

    def on_server_event(engine, driver, event):
        if isinstance(event, ApplicationData):
            echoed.append(event.data)
            driver.send_application_data(b"ACK:" + event.data)

    serve_mbtls(
        net.host("server"),
        lambda: MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"srv"),
                          credential=ca.issue_credential("server")),
            middlebox_trust_store=trust,
        ),
        on_event=on_server_event,
    )

    plan = FaultPlan(
        faults=(HostCrash(time=0.012, host="proxy"),), seed=b"gauntlet"
    )
    injector = FaultInjector(net, plan)

    supervisor_box: list[SessionSupervisor] = []

    def on_client_event(event):
        if isinstance(event, SessionEstablished):
            supervisor_box[0].send_application_data(b"still-here?")

    supervisor_box.append(
        SessionSupervisor(
            net.host("client"), "server",
            lambda: MbTLSEndpointConfig(
                tls=TLSConfig(rng=rng.fork(b"cli"), trust_store=trust,
                              server_name="server"),
                middlebox_trust_store=trust,
            ),
            on_event=on_client_event,
            policy=RetryPolicy(handshake_timeout=0.5, max_attempts=3,
                               backoff_base=0.05),
        )
    )
    net.sim.run(until=10.0)

    supervisor = supervisor_box[0]
    print("\nfault-tolerance finale: middlebox crash mid-handshake")
    print(f"  fault plan     : {plan.describe()}")
    for fault in injector.log:
        print(f"  applied        : t={fault.time:.3f}s {fault.kind} at {fault.where}")
    print(f"  outcome        : {supervisor.outcome} "
          f"(attempt {supervisor.attempt}, "
          f"middleboxes joined: {len(supervisor.engine.middleboxes)})")
    print(f"  data delivered : {echoed}")
    assert supervisor.outcome == "degraded", supervisor.outcome
    assert echoed == [b"still-here?"]
    print("  => the dead middlebox was bypassed on redial; the session "
          "degraded cleanly instead of hanging.")


def run_fuzz_scenario() -> None:
    """Malformed-record finale: a seeded fuzz mutation flips one bit of a
    protected record mid-stream. Under ``tamper_policy="abort"`` the hop
    whose MAC catches it raises a fatal ``bad_record_mac`` that sweeps the
    whole path, and every party learns *which* hop detected the damage. A
    peer-fault alert, by contrast, is terminal: the supervisor records
    ``aborted`` and never redials — retrying cannot change the answer."""
    rng = HmacDrbg(b"gauntlet-fuzz")
    ca = CertificateAuthority("root", rng.fork(b"ca"))
    trust = TrustStore([ca.certificate])

    net = Network()
    for name in ("client", "proxy", "server", "rogue"):
        net.add_host(name)
    net.add_link("client", "proxy", latency=0.002)
    net.add_link("proxy", "server", latency=0.002)
    net.add_link("client", "rogue", latency=0.002)
    adversary = GlobalAdversary(net)

    MiddleboxService(
        net.host("proxy"),
        lambda: MiddleboxConfig(
            name="proxy",
            tls=TLSConfig(rng=rng.fork(b"mb"),
                          credential=ca.issue_credential("proxy")),
            role=MiddleboxRole.CLIENT_SIDE,
            process=lambda direction, data: data,
            tamper_policy="abort",
        ),
    )
    serve_mbtls(
        net.host("server"),
        lambda: MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"srv"),
                          credential=ca.issue_credential("server")),
            middlebox_trust_store=trust,
            tamper_policy="abort",
        ),
    )

    def client_config() -> MbTLSEndpointConfig:
        return MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"cli"), trust_store=trust,
                          server_name="server"),
            middlebox_trust_store=trust,
            tamper_policy="abort",
        )

    supervisor_box: list[SessionSupervisor] = []

    def on_client_event(event):
        if isinstance(event, SessionEstablished):
            # The session is up; arm the fuzzer on the proxy->server hop and
            # send one record straight into the mutation. The case replays
            # from (seed=b"gauntlet-fuzz", mutation_index=0) alone.
            adversary.add_tap_between(
                "proxy", "server",
                FuzzTap(ChunkMutator(b"gauntlet-fuzz", 0, "bit_flip"),
                        sender="proxy"),
            )
            supervisor_box[0].send_application_data(b"doomed-record")

    supervisor_box.append(
        SessionSupervisor(
            net.host("client"), "server", client_config,
            on_event=on_client_event,
            policy=RetryPolicy(handshake_timeout=0.5, max_attempts=3,
                               backoff_base=0.05),
        )
    )
    net.sim.run(until=10.0)
    supervisor = supervisor_box[0]

    print("\nmalformed-record finale: seeded fuzz mutation mid-stream")
    print(f"  outcome        : {supervisor.outcome} "
          f"(attempt {supervisor.attempt})")
    print(f"  abort          : origin={supervisor.abort.origin!r} "
          f"alert={supervisor.abort.alert!r}")
    assert supervisor.abort is not None
    assert supervisor.abort.alert == "bad_record_mac"
    assert supervisor.abort.origin == "server"
    assert supervisor.engine.closed
    print("  => the server's per-hop MAC caught the flipped bit; the fatal "
          "alert swept\n     every hop back to the client, attributed to "
          "the detecting party.")

    # A rogue endpoint is not a path fault: the alert is a peer fault and
    # the supervisor declines to redial.
    rogue_ca = CertificateAuthority("mallory", rng.fork(b"mallory"))
    serve_mbtls(
        net.host("rogue"),
        lambda: MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"rogue"),
                          credential=rogue_ca.issue_credential("server")),
            middlebox_trust_store=TrustStore([rogue_ca.certificate]),
        ),
    )
    rogue_supervisor = SessionSupervisor(
        net.host("client"), "rogue",
        client_config,
        policy=RetryPolicy(handshake_timeout=0.5, max_attempts=3,
                           backoff_base=0.05),
    )
    net.sim.run(until=20.0)
    print("\npeer-fault finale: rogue server with an untrusted certificate")
    print(f"  outcome        : {rogue_supervisor.outcome} "
          f"(attempt {rogue_supervisor.attempt} — no redial)")
    print(f"  abort          : alert={rogue_supervisor.abort.alert!r}")
    assert rogue_supervisor.outcome == "aborted"
    assert rogue_supervisor.attempt == 1
    print("  => a peer-fault alert is terminal; transient path corruption "
          "retries,\n     peer rejection does not.")


def run_downgrade_scenario() -> None:
    """Downgrade finale: an on-path box strips the MiddleboxSupport
    extension (the transcript binding catches it at the server), then a
    corrupted secondary handshake forces the fallback policy choice —
    shed the middlebox with the loss accounted, or fail closed."""
    from repro import obs
    from repro.bench.selftest import run_case
    from repro.bench.threats import Scenario
    from repro.netsim.downgrade import DowngradeAdversary, DowngradeCase

    verdict = run_case("mbtls", DowngradeCase(b"st-0", 0))
    print("\ndowngrade finale 1: MiddleboxSupport stripped from the "
          "ClientHello")
    print(f"  case           : {verdict.describe()}")
    assert verdict.verdict == "detected" and verdict.origin == "server"
    print("  => the hellos the endpoints hash no longer match; the server's "
          "Finished\n     check fails first and the decrypt_error alert "
          "names it.")

    with obs.scoped() as plane:
        scenario = Scenario(b"gauntlet-dg")
        adversary = DowngradeAdversary(b"gauntlet-dg", 7, "corrupt_secondary")
        scenario.attack_hop("client", "mbox", adversary, "mbox")
        engine, _service, _events = scenario.deploy_mbtls()
        fallbacks = sum(
            value for _, value in plane.metrics.iter_counters("session.fallback")
        )
    print("\ndowngrade finale 2a: corrupted secondary handshake, "
          "allow_fallback=True")
    print(f"  established    : {engine.established} "
          f"(middleboxes joined: {len(engine.middleboxes)})")
    print(f"  ledger         : "
          f"{[reason for _, reason in engine.fallback_decisions]}")
    print(f"  accounted      : session.fallback counter total = {fallbacks}")
    assert engine.established and engine.middleboxes == ()
    assert engine.fallback_decisions and fallbacks >= 1

    scenario = Scenario(b"gauntlet-dg2")
    adversary = DowngradeAdversary(b"gauntlet-dg2", 7, "corrupt_secondary")
    scenario.attack_hop("client", "mbox", adversary, "mbox")
    engine, _service, _events = scenario.deploy_mbtls(allow_fallback=False)
    print("\ndowngrade finale 2b: same attack, allow_fallback=False")
    print(f"  established    : {engine.established}")
    print(f"  abort          : origin={engine.abort.origin!r} "
          f"alert={engine.abort.alert!r}")
    assert not engine.established
    assert engine.abort.alert == "insufficient_security"
    print("  => the weakened path is never silent: shed-and-account by "
          "default,\n     fail-closed on request. `python -m repro selftest` "
          "scores all eight\n     attacks against all ten implementations.")


def main() -> None:
    print("executing adversarial scenarios (wiretaps, code substitution,")
    print("record splicing, memory dumps) ...\n")
    outcomes = run_all_threats()
    rows = [
        [
            outcome.threat,
            outcome.protocol,
            "DEFENDED" if outcome.defended else "** VULNERABLE **",
            outcome.mechanism,
        ]
        for outcome in outcomes
    ]
    print(
        render_table(
            "Table 1 — threats and defenses, executed",
            ["threat", "protocol", "outcome", "defense mechanism"],
            rows,
        )
    )
    vulnerable = [o for o in outcomes if not o.defended]
    print(
        f"\n{len(outcomes) - len(vulnerable)} defended, {len(vulnerable)} "
        "vulnerable — each vulnerability is a baseline design mbTLS fixes:"
    )
    for outcome in vulnerable:
        print(f"  - {outcome.protocol}: {outcome.threat}")
    run_crash_scenario()
    run_fuzz_scenario()
    run_downgrade_scenario()


if __name__ == "__main__":
    main()
