#!/usr/bin/env python3
"""The attack gauntlet: Table 1 live.

Runs every concrete attack from the paper's threat model against TLS,
mbTLS, and the baselines, and prints the resulting threat/defense matrix —
including where the *baselines* fall over, which is the point of mbTLS's
per-hop keys and SGX protection.

Run:  python examples/attack_gauntlet.py
"""

from repro.bench.tables import render_table
from repro.bench.threats import run_all_threats


def main() -> None:
    print("executing adversarial scenarios (wiretaps, code substitution,")
    print("record splicing, memory dumps) ...\n")
    outcomes = run_all_threats()
    rows = [
        [
            outcome.threat,
            outcome.protocol,
            "DEFENDED" if outcome.defended else "** VULNERABLE **",
            outcome.mechanism,
        ]
        for outcome in outcomes
    ]
    print(
        render_table(
            "Table 1 — threats and defenses, executed",
            ["threat", "protocol", "outcome", "defense mechanism"],
            rows,
        )
    )
    vulnerable = [o for o in outcomes if not o.defended]
    print(
        f"\n{len(outcomes) - len(vulnerable)} defended, {len(vulnerable)} "
        "vulnerable — each vulnerability is a baseline design mbTLS fixes:"
    )
    for outcome in vulnerable:
        print(f"  - {outcome.protocol}: {outcome.threat}")


if __name__ == "__main__":
    main()
