#!/usr/bin/env python3
"""Outsourced middlebox on untrusted infrastructure (the paper's §3.2 core
scenario): the middlebox *service provider* (MSP) runs its proxy on a
*middlebox infrastructure provider* (MIP) that is actively malicious.

Demonstrates:
  1. With SGX, the session keys live only inside the enclave — the MIP's
     full memory dump contains none of them, and the client verifies the
     proxy's code identity through remote attestation bound to the
     handshake (P1A, P3B).
  2. When the MIP swaps the proxy binary for a backdoored build, the
     measurement changes and the client refuses to hand over session keys.

Run:  python examples/outsourced_proxy.py
"""

from repro import (
    AttestationService,
    CertificateAuthority,
    EnclaveCode,
    EngineDriver,
    HmacDrbg,
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    MiddleboxService,
    Network,
    Platform,
    SessionEstablished,
    TLSConfig,
    TLSServerEngine,
    TrustStore,
    open_mbtls,
)
from repro.apps.proxy import HeaderInsertingProxy
from repro.core.config import MiddleboxRejected
from repro.tls.events import ApplicationData


def build_world(rng, enclave, arena, trust, ca, verifier):
    server_cred = ca.issue_credential("api.example")
    proxy_cred = ca.issue_credential("flywheel.msp.example")
    net = Network()
    for name in ("client", "cloud", "api.example"):
        net.add_host(name)
    net.add_link("client", "cloud", 0.005)
    net.add_link("cloud", "api.example", 0.015)

    def accept(sock, source):
        engine = TLSServerEngine(TLSConfig(rng=rng.fork(b"srv"), credential=server_cred))
        driver = EngineDriver(engine, sock)
        driver.on_event = (
            lambda event: driver.send_application_data(b"api-response")
            if isinstance(event, ApplicationData)
            else None
        )
        driver.start()

    net.host("api.example").listen(443, accept)

    MiddleboxService(
        net.host("cloud"),
        lambda: MiddleboxConfig(
            name="flywheel.msp.example",
            tls=TLSConfig(
                rng=rng.fork(b"proxy"),
                credential=proxy_cred,
                enclave=enclave,          # terminate TLS inside the enclave
                on_secret=arena.store,    # where derived keys physically live
            ),
            role=MiddleboxRole.CLIENT_SIDE,
            process=HeaderInsertingProxy(),
        ),
    )

    events = []
    config = MbTLSEndpointConfig(
        tls=TLSConfig(rng=rng.fork(b"cli"), trust_store=trust,
                      server_name="api.example"),
        middlebox_trust_store=trust,
        require_middlebox_attestation=True,
        middlebox_attestation_verifier=verifier,
    )

    def on_event(event):
        events.append(event)
        if isinstance(event, SessionEstablished):
            driver.send_application_data(b"GET /data")

    engine, driver = open_mbtls(net.host("client"), "api.example", config,
                                on_event=on_event)
    net.sim.run()
    return engine, events


def main() -> None:
    rng = HmacDrbg(b"outsourced")
    ca = CertificateAuthority("root", rng.fork(b"ca"))
    trust = TrustStore([ca.certificate])
    intel = AttestationService(rng.fork(b"intel"))

    audited_build = EnclaveCode(
        name="flywheel-proxy", version="2.4.1", image=b"audited proxy binary"
    )
    verifier = intel.verifier(expected_measurements={audited_build.measurement})

    # ---- Act 1: honest launch on a malicious MIP -----------------------
    print("=== Act 1: audited proxy in an enclave on a hostile cloud ===")
    mip = Platform(intel, malicious=True)
    enclave = mip.launch_enclave(audited_build)
    arena = mip.arena_for(enclave)
    engine, events = build_world(rng.fork(b"act1"), enclave, arena, trust, ca, verifier)

    established = [e for e in events if isinstance(e, SessionEstablished)][0]
    proxy = established.middleboxes[0]
    print(f"middlebox joined: {proxy.name}")
    print(f"verified code measurement: {proxy.measurement.hex()[:16]}...")
    print(f"secrets held in enclave memory: {len(arena.all_bytes())}")
    stolen = mip.dump_visible_secrets()
    print(f"secrets the MIP can read from its own hardware: {len(stolen)}")
    assert stolen == set()

    # ---- Act 2: the MIP swaps the binary --------------------------------
    print("\n=== Act 2: the MIP substitutes a backdoored proxy build ===")
    evil_mip = Platform(intel, malicious=True)
    evil_mip.plant_code_substitution(
        EnclaveCode(name="flywheel-proxy", version="2.4.1", image=b"backdoored")
    )
    evil_enclave = evil_mip.launch_enclave(audited_build)
    evil_arena = evil_mip.arena_for(evil_enclave)
    engine, events = build_world(
        rng.fork(b"act2"), evil_enclave, evil_arena, trust, ca, verifier
    )
    rejections = [e for e in events if isinstance(e, MiddleboxRejected)]
    established = [e for e in events if isinstance(e, SessionEstablished)][0]
    print(f"client rejected the middlebox: {rejections[0].reason}")
    print(f"middleboxes holding session keys: {list(established.middleboxes)}")
    assert established.middleboxes == ()
    print("\nThe substituted code changed the enclave measurement; attestation")
    print("failed, so the backdoored proxy never received session keys — the")
    print("session completed end-to-end with the middlebox as a blind relay.")


if __name__ == "__main__":
    main()
