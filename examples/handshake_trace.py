#!/usr/bin/env python3
"""Render the mbTLS handshake ladder — the paper's Figure 3, live.

Sets up a client, one discovered client-side middlebox, and a legacy TLS
server, wiretaps every hop, runs a session, and prints the time-ordered
record ladder: the primary handshake, the interleaved secondary handshake
riding Encapsulated records, key-material delivery, and the re-encrypted
data phase.

Run:  python examples/handshake_trace.py
"""

from repro import (
    CertificateAuthority,
    EngineDriver,
    HmacDrbg,
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    MiddleboxService,
    Network,
    SessionEstablished,
    TLSConfig,
    TLSServerEngine,
    TrustStore,
    open_mbtls,
)
from repro.netsim import GlobalAdversary, render_trace, trace_session
from repro.tls.events import ApplicationData


def main() -> None:
    rng = HmacDrbg(b"figure-3")
    ca = CertificateAuthority("root", rng.fork(b"ca"))
    trust = TrustStore([ca.certificate])

    net = Network()
    for name in ("client", "mbox", "server"):
        net.add_host(name)
    net.add_link("client", "mbox", 0.002)
    net.add_link("mbox", "server", 0.002)
    adversary = GlobalAdversary(net)

    def accept(sock, source):
        engine = TLSServerEngine(
            TLSConfig(rng=rng.fork(b"srv"), credential=ca.issue_credential("server"))
        )
        driver = EngineDriver(engine, sock)
        driver.on_event = (
            lambda event: driver.send_application_data(b"response-payload")
            if isinstance(event, ApplicationData)
            else None
        )
        driver.start()

    net.host("server").listen(443, accept)

    MiddleboxService(
        net.host("mbox"),
        lambda: MiddleboxConfig(
            name="mbox",
            tls=TLSConfig(rng=rng.fork(b"mb"), credential=ca.issue_credential("mbox")),
            role=MiddleboxRole.CLIENT_SIDE,
        ),
    )

    def on_event(event):
        if isinstance(event, SessionEstablished):
            driver.send_application_data(b"request-payload")

    engine, driver = open_mbtls(
        net.host("client"),
        "server",
        MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"cli"), trust_store=trust,
                          server_name="server"),
            middlebox_trust_store=trust,
        ),
        on_event=on_event,
    )
    net.sim.run()

    print("The mbTLS handshake, as observed by a global wiretap (Figure 3):\n")
    print(render_trace(trace_session(adversary)))
    print("\nNote the paper's choreography: the middlebox answers the")
    print("double-duty ClientHello on subchannel 1 *before* forwarding the")
    print("primary ServerHello, the secondary handshake finishes inside the")
    print("primary's flights, and the data phase is re-encrypted per hop")
    print("(the ApplicationData ciphertexts differ on the two hops).")


if __name__ == "__main__":
    main()
