#!/usr/bin/env python3
"""A service provider deploys its own edge middleboxes (§3.5, "Trust",
third scenario): the *server* adds caching proxies in edge ISPs, discovered
in-band, verified by certificate — the Google-Edge-Network use case from
the paper's introduction. The client is a completely legacy TLS client.

Shows: server-side announcement and discovery, a shared web cache serving
repeat requests from the edge, and endpoint isolation (the legacy client
neither knows nor needs to know the middlebox exists).

Run:  python examples/edge_cdn.py
"""

from repro import (
    CertificateAuthority,
    EngineDriver,
    HmacDrbg,
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    MiddleboxService,
    Network,
    SessionEstablished,
    TLSClientEngine,
    TLSConfig,
    TrustStore,
    serve_mbtls,
)
from repro.apps.cache import CacheApp, SharedCacheStore
from repro.apps.http import HttpClient, HttpParser, HttpResponse
from repro.tls.events import ApplicationData, HandshakeComplete


def main() -> None:
    rng = HmacDrbg(b"edge-cdn")
    ca = CertificateAuthority("root", rng.fork(b"ca"))
    trust = TrustStore([ca.certificate])
    origin_cred = ca.issue_credential("origin.example")
    edge_cred = ca.issue_credential("edge.origin.example")

    net = Network()
    for name in ("alice", "bob", "edge-isp", "origin.example"):
        net.add_host(name)
    # Two users in the same edge ISP, an ocean away from the origin.
    net.add_link("alice", "edge-isp", 0.004)
    net.add_link("bob", "edge-isp", 0.006)
    net.add_link("edge-isp", "origin.example", 0.070)

    # --- the origin: an mbTLS server expecting its own edge boxes -------
    store = SharedCacheStore()
    origin_hits = {"count": 0}

    def make_origin_config():
        return MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"origin"), credential=origin_cred),
            middlebox_trust_store=trust,
            # The origin only admits middleboxes carrying ITS domain's certs.
            approve_middlebox=lambda info: info.name.endswith(".origin.example"),
        )

    def on_origin_event(engine, driver, event):
        if isinstance(event, SessionEstablished):
            names = [m.name for m in event.middleboxes]
            print(f"  origin: session up, edge middleboxes: {names}")
        if isinstance(event, ApplicationData):
            parser = HttpParser(parse_requests=True)
            for request in parser.feed(event.data):
                origin_hits["count"] += 1
                body = f"content of {request.path} (render #{origin_hits['count']})"
                driver.send_application_data(
                    HttpResponse(status=200, body=body.encode()).encode()
                )

    serve_mbtls(net.host("origin.example"), make_origin_config,
                on_event=on_origin_event)

    # --- the edge cache, announced server-side ---------------------------
    MiddleboxService(
        net.host("edge-isp"),
        lambda: MiddleboxConfig(
            name="edge.origin.example",
            tls=TLSConfig(rng=rng.fork(b"edge"), credential=edge_cred),
            role=MiddleboxRole.SERVER_SIDE,
            served_servers=frozenset({"origin.example"}),
            process=CacheApp(store),
        ),
    )

    # --- two LEGACY TLS clients ------------------------------------------
    def browse(user: str, path: str) -> None:
        http = HttpClient()
        engine = TLSClientEngine(
            TLSConfig(rng=rng.fork(user.encode()), trust_store=trust,
                      server_name="origin.example")
        )
        sock = net.host(user).connect("origin.example", 443)

        def on_event(event):
            if isinstance(event, HandshakeComplete):
                driver.send_application_data(HttpClient.get(path, "origin.example"))
            elif isinstance(event, ApplicationData):
                for response in http.on_data(event.data):
                    cache_state = response.header("x-cache") or "MISS"
                    print(f"  {user}: {path} -> {response.body.decode()!r} "
                          f"[{cache_state}]")

        driver = EngineDriver(engine, sock, on_event=on_event)
        driver.start()
        net.sim.run()

    print("Alice fetches /video (cold cache -> origin renders it):")
    browse("alice", "/video")
    print("Bob fetches /video (same edge ISP -> served from the edge cache):")
    browse("bob", "/video")

    print(f"\norigin renders: {origin_hits['count']} | "
          f"cache hits: {store.hits} | entries: {list(store.entries)}")
    assert origin_hits["count"] == 1 and store.hits == 1
    print("The second user was served at the edge; neither client was")
    print("upgraded, and the origin authenticated its own middlebox.")


if __name__ == "__main__":
    main()
