#!/usr/bin/env python3
"""Quickstart: an mbTLS session with one discovered middlebox.

Builds a three-host simulated network (client - proxy - server), runs a
legacy TLS web server, drops a header-inserting mbTLS proxy on the path,
and fetches a page with an mbTLS client. Shows in-band discovery, explicit
middlebox authentication, and legacy-server interoperability (P5/P6).

Run:  python examples/quickstart.py
"""

from repro import (
    CertificateAuthority,
    EngineDriver,
    HmacDrbg,
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
    MiddleboxService,
    Network,
    SessionEstablished,
    TLSConfig,
    TLSServerEngine,
    TrustStore,
    open_mbtls,
)
from repro.apps.http import HttpClient, HttpParser, HttpResponse
from repro.apps.proxy import HeaderInsertingProxy
from repro.tls.events import ApplicationData


def main() -> None:
    rng = HmacDrbg(b"quickstart")

    # --- PKI: one root CA everyone trusts ------------------------------
    ca = CertificateAuthority("demo-root", rng.fork(b"ca"))
    trust = TrustStore([ca.certificate])
    server_cred = ca.issue_credential("www.example")
    proxy_cred = ca.issue_credential("proxy.isp.example")

    # --- topology: client -- proxy -- server ---------------------------
    net = Network()
    for name in ("client", "proxy-host", "www.example"):
        net.add_host(name)
    net.add_link("client", "proxy-host", latency=0.010)
    net.add_link("proxy-host", "www.example", latency=0.030)

    # --- a LEGACY TLS web server (no mbTLS support needed: P5) ----------
    def accept(sock, source):
        engine = TLSServerEngine(TLSConfig(rng=rng.fork(b"srv"), credential=server_cred))
        driver = EngineDriver(engine, sock)
        parser = HttpParser(parse_requests=True)

        def on_event(event):
            if isinstance(event, ApplicationData):
                for request in parser.feed(event.data):
                    via = request.header("via") or "(none)"
                    body = f"hello! your request came via: {via}".encode()
                    driver.send_application_data(
                        HttpResponse(status=200, body=body).encode()
                    )

        driver.on_event = on_event
        driver.start()

    net.host("www.example").listen(443, accept)

    # --- the middlebox: the paper's header-inserting HTTP proxy ---------
    proxy_app = HeaderInsertingProxy(via="1.1 mbtls-demo-proxy")
    MiddleboxService(
        net.host("proxy-host"),
        lambda: MiddleboxConfig(
            name="proxy.isp.example",
            tls=TLSConfig(rng=rng.fork(b"proxy"), credential=proxy_cred),
            role=MiddleboxRole.CLIENT_SIDE,
            process=proxy_app,
        ),
    )

    # --- the mbTLS client ------------------------------------------------
    http = HttpClient()

    def on_event(event):
        if isinstance(event, SessionEstablished):
            names = [m.name for m in event.middleboxes]
            print(f"[{net.sim.now*1000:6.1f} ms] session established; "
                  f"middleboxes (authenticated, in path order): {names}")
            driver.send_application_data(HttpClient.get("/", "www.example"))
        elif isinstance(event, ApplicationData):
            for response in http.on_data(event.data):
                print(f"[{net.sim.now*1000:6.1f} ms] HTTP {response.status}: "
                      f"{response.body.decode()}")

    config = MbTLSEndpointConfig(
        tls=TLSConfig(
            rng=rng.fork(b"client"), trust_store=trust, server_name="www.example"
        ),
        middlebox_trust_store=trust,
        approve_middlebox=lambda info: print(
            f"           policy check: approve middlebox {info.name!r}? yes"
        ) or True,
    )
    engine, driver = open_mbtls(net.host("client"), "www.example", config,
                                on_event=on_event)
    net.sim.run()

    assert http.responses and b"mbtls-demo-proxy" in http.responses[0].body
    print("\nThe proxy inserted its Via header inside the encrypted session,")
    print("the client authenticated the proxy explicitly, and the server is")
    print("a completely stock TLS 1.2 endpoint.")


if __name__ == "__main__":
    main()
