"""Baseline protocols the paper compares against (and their weaknesses)."""

from repro.baselines.blindbox import (
    BlindBoxDetector,
    BlindBoxInspectorConnection,
    BlindBoxStreamConnection,
    EncryptedRule,
    RuleAuthority,
    TokenStream,
)

from repro.baselines.mctls import (
    ContextKeys,
    ContextPermission,
    McTLSContext,
    McTLSMiddleboxConnection,
    McTLSParty,
    McTLSRecordConnection,
    McTLSSession,
)
from repro.baselines.mdtls import (
    MdTLSClientConnection,
    MdTLSDeployment,
    MdTLSMiddleboxConnection,
    MdTLSServerConnection,
)
from repro.baselines.relay import SpliceRelay, SpliceRelayService
from repro.baselines.shared_key import (
    KeySharingClient,
    KeySharingConnection,
    KeySharingMiddlebox,
    KeySharingService,
)
from repro.baselines.split_tls import SplitTLSMiddlebox, SplitTLSService

__all__ = [
    "BlindBoxDetector",
    "BlindBoxInspectorConnection",
    "BlindBoxStreamConnection",
    "EncryptedRule",
    "RuleAuthority",
    "TokenStream",
    "ContextKeys",
    "ContextPermission",
    "McTLSContext",
    "McTLSMiddleboxConnection",
    "McTLSParty",
    "McTLSRecordConnection",
    "McTLSSession",
    "MdTLSClientConnection",
    "MdTLSDeployment",
    "MdTLSMiddleboxConnection",
    "MdTLSServerConnection",
    "SpliceRelay",
    "SpliceRelayService",
    "KeySharingClient",
    "KeySharingConnection",
    "KeySharingMiddlebox",
    "KeySharingService",
    "SplitTLSMiddlebox",
    "SplitTLSService",
]
