"""Baseline protocols the paper compares against (and their weaknesses)."""

from repro.baselines.blindbox import (
    BlindBoxDetector,
    EncryptedRule,
    RuleAuthority,
    TokenStream,
)

from repro.baselines.mctls import (
    ContextKeys,
    ContextPermission,
    McTLSContext,
    McTLSParty,
    McTLSSession,
)
from repro.baselines.relay import SpliceRelayService
from repro.baselines.shared_key import (
    KeySharingClient,
    KeySharingMiddlebox,
    KeySharingService,
)
from repro.baselines.split_tls import SplitTLSMiddlebox, SplitTLSService

__all__ = [
    "BlindBoxDetector",
    "EncryptedRule",
    "RuleAuthority",
    "TokenStream",
    "ContextKeys",
    "ContextPermission",
    "McTLSContext",
    "McTLSParty",
    "McTLSSession",
    "SpliceRelayService",
    "KeySharingClient",
    "KeySharingMiddlebox",
    "KeySharingService",
    "SplitTLSMiddlebox",
    "SplitTLSService",
]
