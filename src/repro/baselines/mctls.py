"""Simplified Multi-Context TLS (mcTLS, SIGCOMM '15) — §2.2's access-control
point in the design space.

mcTLS encrypts different parts of the data stream ("contexts") under
different keys and gives each middlebox only the keys for the contexts it
may access; read and write are separated by layering MACs:

* a *read* key lets a party decrypt a context;
* *endpoint MAC* keys are held only by the endpoints (and writers), so a
  read-only middlebox can observe but any modification it makes is detected.

We reproduce the record-layer access-control mechanism and the contributory
key derivation (both endpoints contribute to every context key, so a
middlebox joins only if *both* approve — the property that also makes mcTLS
incompatible with legacy endpoints). The full mcTLS handshake is out of
scope; DESIGN.md records this simplification.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from enum import Enum

from repro.crypto.gcm import AESGCM
from repro.crypto.kdf import prf
from repro.errors import (
    IntegrityError,
    PolicyError,
    ProtocolError,
    ReproError,
    SessionAborted,
)
from repro.io.framing import FRAME_ALERT, FRAME_CLOSE, alert_frame, close_frame, frame, pop_frames
from repro.io.record_plane import RecordPlane
from repro.tls.events import AlertReceived, ApplicationData, ConnectionClosed
from repro.wire.alerts import Alert, AlertDescription

__all__ = [
    "ContextPermission",
    "ContextKeys",
    "McTLSContext",
    "McTLSSession",
    "McTLSParty",
    "McTLSRecordConnection",
    "McTLSMiddleboxConnection",
]


class ContextPermission(Enum):
    NONE = "none"
    READ = "read"
    WRITE = "write"  # implies read


@dataclass(frozen=True)
class ContextKeys:
    """Key material for one context, possibly truncated by permission."""

    read_key: bytes | None
    writer_mac_key: bytes | None
    endpoint_mac_key: bytes | None


class McTLSContext:
    """One mcTLS context: an encrypted, access-controlled slice of the stream."""

    def __init__(self, context_id: int, keys: ContextKeys) -> None:
        self.context_id = context_id
        self.keys = keys
        self._sequence = 0

    def seal(self, plaintext: bytes, is_endpoint: bool) -> bytes:
        """Encrypt + MAC a record for this context.

        Writers add a writer MAC; endpoints additionally add the endpoint
        MAC that read-only parties cannot forge.
        """
        if self.keys.read_key is None or self.keys.writer_mac_key is None:
            raise PolicyError("no write access to this context")
        aead = AESGCM(self.keys.read_key)
        nonce = self._sequence.to_bytes(12, "big")
        header = self.context_id.to_bytes(1, "big") + self._sequence.to_bytes(8, "big")
        ciphertext = aead.encrypt(nonce, plaintext, header)
        writer_mac = hmac.new(self.keys.writer_mac_key, header + ciphertext, "sha256").digest()
        if is_endpoint:
            if self.keys.endpoint_mac_key is None:
                raise PolicyError("endpoint MAC key missing")
            endpoint_mac = hmac.new(
                self.keys.endpoint_mac_key, header + ciphertext, "sha256"
            ).digest()
        else:
            endpoint_mac = b"\x00" * 32  # a non-endpoint cannot produce it
        self._sequence += 1
        return header + ciphertext + writer_mac + endpoint_mac

    def open(self, record: bytes, verify_endpoint_mac: bool) -> bytes:
        """Decrypt a record; optionally verify it was written by an endpoint.

        Raises:
            PolicyError: if this party lacks read access.
            IntegrityError: if any MAC check fails.
        """
        if self.keys.read_key is None:
            raise PolicyError("no read access to this context")
        header, rest = record[:9], record[9:]
        ciphertext, writer_mac, endpoint_mac = rest[:-64], rest[-64:-32], rest[-32:]
        if self.keys.writer_mac_key is not None:
            expected = hmac.new(
                self.keys.writer_mac_key, header + ciphertext, "sha256"
            ).digest()
            if not hmac.compare_digest(writer_mac, expected):
                raise IntegrityError("mcTLS writer MAC check failed")
        if verify_endpoint_mac:
            if self.keys.endpoint_mac_key is None:
                raise PolicyError("cannot verify endpoint MAC without the key")
            expected = hmac.new(
                self.keys.endpoint_mac_key, header + ciphertext, "sha256"
            ).digest()
            if not hmac.compare_digest(endpoint_mac, expected):
                raise IntegrityError("record was modified by a non-endpoint")
        sequence = int.from_bytes(header[1:9], "big")
        aead = AESGCM(self.keys.read_key)
        return aead.decrypt(sequence.to_bytes(12, "big"), ciphertext, header)


class McTLSSession:
    """Derives context keys contributorily from both endpoints' secrets.

    Each context key is ``PRF(client_contribution || server_contribution)``:
    a middlebox can only obtain it if *both* endpoints hand over their half,
    which is mcTLS's "both endpoints must authorize" property.
    """

    def __init__(self, client_rng, server_rng, context_ids: list[int]) -> None:
        self._contributions = {
            context_id: (client_rng.random_bytes(32), server_rng.random_bytes(32))
            for context_id in context_ids
        }
        self.context_ids = list(context_ids)

    def _derive(self, context_id: int, label: bytes) -> bytes:
        client_half, server_half = self._contributions[context_id]
        return prf(client_half + server_half, label, context_id.to_bytes(1, "big"), 32)

    def keys_for(self, context_id: int, permission: ContextPermission) -> ContextKeys:
        """Key material a party with ``permission`` receives for a context."""
        if permission == ContextPermission.NONE:
            return ContextKeys(read_key=None, writer_mac_key=None, endpoint_mac_key=None)
        read_key = self._derive(context_id, b"mctls read")
        writer_mac = self._derive(context_id, b"mctls writer mac")
        if permission == ContextPermission.READ:
            return ContextKeys(read_key=read_key, writer_mac_key=writer_mac,
                               endpoint_mac_key=None)
        return ContextKeys(
            read_key=read_key,
            writer_mac_key=writer_mac,
            endpoint_mac_key=self._derive(context_id, b"mctls endpoint mac"),
        )

    def endpoint_party(self) -> "McTLSParty":
        """A full-access endpoint party."""
        grants = {
            context_id: self.keys_for(context_id, ContextPermission.WRITE)
            for context_id in self.context_ids
        }
        return McTLSParty(grants, is_endpoint=True)

    def middlebox_party(self, permissions: dict[int, ContextPermission]) -> "McTLSParty":
        """A middlebox with per-context permissions (both endpoints agreed)."""
        grants = {
            context_id: self.keys_for(
                context_id, permissions.get(context_id, ContextPermission.NONE)
            )
            for context_id in self.context_ids
        }
        return McTLSParty(grants, is_endpoint=False)


class McTLSParty:
    """One participant's view: its per-context keys."""

    def __init__(self, grants: dict[int, ContextKeys], is_endpoint: bool) -> None:
        self.is_endpoint = is_endpoint
        self.contexts = {
            context_id: McTLSContext(context_id, keys)
            for context_id, keys in grants.items()
        }

    def seal(self, context_id: int, plaintext: bytes) -> bytes:
        return self.contexts[context_id].seal(plaintext, is_endpoint=self.is_endpoint)

    def open(self, context_id: int, record: bytes, verify_endpoint_mac: bool = False) -> bytes:
        return self.contexts[context_id].open(record, verify_endpoint_mac)

    def can_read(self, context_id: int) -> bool:
        return self.contexts[context_id].keys.read_key is not None


def _alert_for(exc: Exception) -> AlertDescription:
    """Map a record-processing failure onto the alert it should raise."""
    if isinstance(exc, IntegrityError):
        return AlertDescription.BAD_RECORD_MAC
    if isinstance(exc, PolicyError):
        return AlertDescription.ACCESS_DENIED
    if isinstance(exc, ProtocolError):
        return AlertDescription.from_name(exc.alert)
    return AlertDescription.DECODE_ERROR


class McTLSRecordConnection:
    """Sans-IO stream endpoint speaking length-framed mcTLS records.

    mcTLS proper has no record framing of its own in this reproduction (the
    mechanism under study is the per-context access control), so this adapter
    supplies a minimal stream layer — a u32 length prefix per sealed record,
    with a zero-length frame as the close marker — and implements the shared
    :class:`repro.io.Connection` contract.
    """

    def __init__(
        self,
        party: McTLSParty,
        default_context: int,
        verify_endpoint_mac: bool = False,
    ) -> None:
        self.party = party
        self.default_context = default_context
        self.verify_endpoint_mac = verify_endpoint_mac
        self._out = RecordPlane()  # coalesced outbox only; no TLS parsing
        self._buffer = bytearray()
        self.closed = False
        self._started = False
        self.origin_label = "mctls-endpoint"
        self.abort: SessionAborted | None = None

    def start(self) -> None:
        if self._started:
            raise ProtocolError("mcTLS connection already started")
        self._started = True

    def send_application_data(self, data: bytes, context_id: int | None = None) -> None:
        if self.closed:
            raise ProtocolError("cannot send application data on a closed connection")
        context = self.default_context if context_id is None else context_id
        self._out.queue_raw(frame(self.party.seal(context, data)))

    def receive_bytes(self, data: bytes) -> list:
        if self.closed:
            return []
        self._buffer += data
        events: list = []
        try:
            frames = pop_frames(self._buffer)
        except ReproError as exc:
            self._abort(exc, events)
            return events
        for kind, payload in frames:
            if kind == FRAME_CLOSE:
                self.closed = True
                events.append(ConnectionClosed())
                break
            if kind == FRAME_ALERT:
                if self._handle_alert(payload, events):
                    break
                continue
            try:
                context_id = payload[0]
                plaintext = self.party.open(
                    context_id, payload, verify_endpoint_mac=self.verify_endpoint_mac
                )
            except (ReproError, KeyError, IndexError, ValueError) as exc:
                # Forged, truncated, or unknown-context record: answer with
                # a fatal alert and close (the abort invariant).
                self._abort(exc, events)
                break
            events.append(ApplicationData(data=plaintext))
        return events

    def _handle_alert(self, payload: bytes, events: list) -> bool:
        try:
            alert = Alert.decode(payload)
        except ReproError as exc:
            self._abort(exc, events)
            return True
        events.append(AlertReceived(alert=alert))
        if alert.is_fatal or alert.is_close:
            self.closed = True
            if alert.is_close:
                events.append(ConnectionClosed())
            else:
                name = alert.description.name.lower()
                self.abort = SessionAborted(
                    f"peer sent fatal {name}", origin=alert.origin, alert=name
                )
                events.append(
                    ConnectionClosed(error=name, alert=name, origin=alert.origin)
                )
            return True
        return False

    def _abort(self, exc: Exception, events: list) -> None:
        description = _alert_for(exc)
        name = description.name.lower()
        self._out.queue_raw(
            alert_frame(Alert.fatal(description, origin=self.origin_label).encode())
        )
        self.closed = True
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        events.append(
            ConnectionClosed(
                error=f"{name}: {exc}", alert=name, origin=self.origin_label
            )
        )

    def data_to_send(self) -> bytes:
        return self._out.data_to_send()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._out.queue_raw(close_frame())

    def peer_closed(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="transport closed")]


class McTLSMiddleboxConnection:
    """Sans-IO duplex mcTLS middlebox: inspects readable contexts in transit.

    Frames are forwarded verbatim — a read-only party cannot re-seal with
    the endpoint MAC, and forwarding unmodified bytes is exactly what keeps
    the endpoint MAC valid end to end.
    """

    def __init__(self, party: McTLSParty) -> None:
        self.party = party
        self._planes = [RecordPlane(), RecordPlane()]  # outboxes only
        self._buffers = [bytearray(), bytearray()]
        self.records_seen = 0
        self.plaintext_seen: list[bytes] = []
        self.closed = False
        self._started = False
        self.origin_label = "mctls-middlebox"
        self.abort: SessionAborted | None = None

    def start(self) -> None:
        if self._started:
            raise ProtocolError("mcTLS middlebox already started")
        self._started = True

    def receive_down(self, data: bytes) -> list:
        return self._receive(0, data)

    def receive_up(self, data: bytes) -> list:
        return self._receive(1, data)

    def _receive(self, side: int, data: bytes) -> list:
        if self.closed:
            return []
        buffer = self._buffers[side]
        outbound = self._planes[1 - side]
        buffer += data
        events: list = []
        try:
            frames = pop_frames(buffer)
        except ReproError as exc:
            self._abort(exc, events)
            return events
        for kind, payload in frames:
            if kind == FRAME_CLOSE:
                outbound.queue_raw(close_frame())
                continue
            if kind == FRAME_ALERT:
                # Hop-by-hop propagation: forward the alert verbatim and,
                # if it is fatal, tear down our own forwarding state too.
                outbound.queue_raw(alert_frame(payload))
                try:
                    alert = Alert.decode(payload)
                except ReproError:
                    continue
                if alert.is_fatal and not alert.is_close:
                    name = alert.description.name.lower()
                    self.closed = True
                    self.abort = SessionAborted(
                        f"fatal {name} passed through",
                        origin=alert.origin,
                        alert=name,
                    )
                    events.append(
                        ConnectionClosed(error=name, alert=name, origin=alert.origin)
                    )
                    break
                continue
            self.records_seen += 1
            try:
                context_id = payload[0]
                if self.party.can_read(context_id):
                    self.plaintext_seen.append(self.party.open(context_id, payload))
            except (ReproError, KeyError, IndexError, ValueError) as exc:
                # A record this hop could verify failed verification:
                # originate a fatal alert toward both segments.
                self._abort(exc, events)
                break
            outbound.queue_raw(frame(payload))
        return events

    def _abort(self, exc: Exception, events: list) -> None:
        description = _alert_for(exc)
        name = description.name.lower()
        encoded = Alert.fatal(description, origin=self.origin_label).encode()
        for plane in self._planes:
            plane.queue_raw(alert_frame(encoded))
        self.closed = True
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        events.append(
            ConnectionClosed(
                error=f"{name}: {exc}", alert=name, origin=self.origin_label
            )
        )

    def data_to_send_down(self) -> bytes:
        return self._planes[0].data_to_send()

    def data_to_send_up(self) -> bytes:
        return self._planes[1].data_to_send()

    def peer_closed_down(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="client segment closed")]

    def peer_closed_up(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="server segment closed")]
