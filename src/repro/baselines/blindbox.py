"""Simplified BlindBox (SIGCOMM '15) — §2.2's functional-crypto point in the
design space.

BlindBox lets a pattern-matching middlebox (an IDS) inspect traffic
*without* learning the plaintext: alongside the regular TLS stream, the
sender emits deterministic encryptions of sliding-window tokens; the
middlebox holds the same deterministic encryptions of its *rule* patterns
(obtained through an oblivious protocol at setup) and matches ciphertext
against ciphertext.

We reproduce the data-path mechanism — tokenization, salted-deterministic
token encryption, equality matching — which is what the design-space
comparison in §2.2 turns on:

* [Data access: func. crypto] the middlebox learns only which rules
  matched, never the stream contents;
* [Computation: limited] it fundamentally cannot transform data — there is
  no mbTLS-style compression proxy or cache in this model;
* [Legacy: both endpoints upgraded] both ends must produce the token
  stream.

The oblivious rule-encryption setup (garbled circuits in the paper) is
abstracted: a :class:`RuleAuthority` plays the trusted setup that hands the
middlebox encrypted rules without revealing the token key. DESIGN.md
records the simplification.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass

from repro.errors import PolicyError, ProtocolError, ReproError, SessionAborted
from repro.io.framing import FRAME_ALERT, FRAME_CLOSE, alert_frame, close_frame, frame, pop_frames
from repro.io.record_plane import RecordPlane
from repro.tls.events import AlertReceived, ApplicationData, ConnectionClosed
from repro.wire.alerts import Alert, AlertDescription

__all__ = [
    "TokenStream",
    "EncryptedRule",
    "RuleAuthority",
    "BlindBoxDetector",
    "BlindBoxStreamConnection",
    "BlindBoxInspectorConnection",
]

DEFAULT_WINDOW = 8  # sliding-window token size, like BlindBox's 8-byte tokens


def _encrypt_token(key: bytes, token: bytes) -> bytes:
    """Deterministic token encryption (PRF under the session token key)."""
    return hmac.new(key, b"blindbox-token" + token, "sha256").digest()[:16]


class TokenStream:
    """Endpoint-side tokenizer: plaintext -> encrypted token sequence.

    Tokens are every ``window``-byte sliding substring, so any rule of at
    least ``window`` bytes appearing in the stream is detectable. Carryover
    between chunks keeps matches that straddle chunk boundaries.
    """

    def __init__(self, token_key: bytes, window: int = DEFAULT_WINDOW) -> None:
        if len(token_key) < 16:
            raise PolicyError("token key too short")
        self._key = token_key
        self.window = window
        self._carry = b""

    def tokenize(self, plaintext: bytes) -> list[bytes]:
        data = self._carry + plaintext
        tokens = [
            _encrypt_token(self._key, data[i : i + self.window])
            for i in range(0, len(data) - self.window + 1)
        ]
        self._carry = data[-(self.window - 1):] if self.window > 1 else b""
        return tokens


@dataclass(frozen=True)
class EncryptedRule:
    """A rule as the middlebox sees it: name + encrypted pattern tokens."""

    name: str
    encrypted_tokens: tuple[bytes, ...]


class RuleAuthority:
    """Stands in for BlindBox's oblivious rule-encryption setup.

    Holds the session token key; encrypts the IDS's rule patterns under it
    without ever giving the IDS the key itself (in the paper this is a
    garbled-circuit protocol between the endpoints and the middlebox).
    """

    def __init__(self, token_key: bytes, window: int = DEFAULT_WINDOW) -> None:
        self._key = token_key
        self.window = window

    def encrypt_rule(self, name: str, pattern: bytes) -> EncryptedRule:
        if len(pattern) < self.window:
            raise PolicyError(
                f"pattern shorter than the {self.window}-byte token window"
            )
        tokens = tuple(
            _encrypt_token(self._key, pattern[i : i + self.window])
            for i in range(len(pattern) - self.window + 1)
        )
        return EncryptedRule(name=name, encrypted_tokens=tokens)


@dataclass
class Match:
    rule: str
    token_index: int


class BlindBoxDetector:
    """The middlebox: matches encrypted tokens against encrypted rules.

    It never holds the token key — only the encrypted rules — so a matching
    token reveals *that* a rule pattern occurred, nothing else.
    """

    def __init__(self, rules: list[EncryptedRule]) -> None:
        self._first_token_index: dict[bytes, list[EncryptedRule]] = {}
        for rule in rules:
            self._first_token_index.setdefault(rule.encrypted_tokens[0], []).append(rule)
        self.matches: list[Match] = []
        self._window: list[bytes] = []
        self._seen = 0
        self._reported: set[tuple[str, int]] = set()

    def inspect(self, encrypted_tokens: list[bytes]) -> list[Match]:
        """Consume a chunk of the token stream; returns fresh matches."""
        fresh: list[Match] = []
        self._window.extend(encrypted_tokens)
        for offset, token in enumerate(self._window):
            for rule in self._first_token_index.get(token, []):
                needed = len(rule.encrypted_tokens)
                candidate = self._window[offset : offset + needed]
                key = (rule.name, self._seen + offset)
                if (
                    len(candidate) == needed
                    and tuple(candidate) == rule.encrypted_tokens
                    and key not in self._reported
                ):
                    self._reported.add(key)
                    fresh.append(Match(rule=rule.name, token_index=key[1]))
        # Keep a tail big enough for the longest rule to match across chunks.
        longest = max(
            (len(rule.encrypted_tokens) for rules in self._first_token_index.values()
             for rule in rules),
            default=1,
        )
        if len(self._window) > longest:
            dropped = len(self._window) - longest
            self._seen += dropped
            del self._window[:dropped]
            self._reported = {
                entry for entry in self._reported if entry[1] >= self._seen
            }
        self.matches.extend(fresh)
        return fresh


_TOKEN_LEN = 16


def _encode_payload(tokens: list[bytes], data: bytes) -> bytes:
    return frame(len(tokens).to_bytes(2, "big") + b"".join(tokens) + data)


def _decode_payload(payload: bytes) -> tuple[list[bytes], bytes]:
    count = int.from_bytes(payload[:2], "big")
    end = 2 + count * _TOKEN_LEN
    tokens = [payload[i : i + _TOKEN_LEN] for i in range(2, end, _TOKEN_LEN)]
    return tokens, payload[end:]


class BlindBoxStreamConnection:
    """Sans-IO BlindBox endpoint: data chunks travel with their token stream.

    Each outbound chunk is framed as ``u32 len | u16 n_tokens | tokens | data``
    so the on-path detector can strip the encrypted tokens without touching the
    data bytes (which in a full deployment are the regular TLS ciphertext; the
    simplification is recorded in the module docstring). Implements the shared
    :class:`repro.io.Connection` contract.
    """

    def __init__(self, token_stream: TokenStream) -> None:
        self.tokens = token_stream
        self._out = RecordPlane()  # coalesced outbox only; no TLS parsing
        self._buffer = bytearray()
        self.closed = False
        self._started = False
        self.origin_label = "blindbox-endpoint"
        self.abort: SessionAborted | None = None

    def start(self) -> None:
        if self._started:
            raise ProtocolError("BlindBox connection already started")
        self._started = True

    def send_application_data(self, data: bytes) -> None:
        if self.closed:
            raise ProtocolError("cannot send application data on a closed connection")
        self._out.queue_raw(_encode_payload(self.tokens.tokenize(data), data))

    def receive_bytes(self, data: bytes) -> list:
        if self.closed:
            return []
        self._buffer += data
        events: list = []
        try:
            frames = pop_frames(self._buffer)
        except ReproError as exc:
            self._abort(exc, events)
            return events
        for kind, payload in frames:
            if kind == FRAME_CLOSE:
                self.closed = True
                events.append(ConnectionClosed())
                break
            if kind == FRAME_ALERT:
                if self._handle_alert(payload, events):
                    break
                continue
            _tokens, chunk = _decode_payload(payload)
            events.append(ApplicationData(data=chunk))
        return events

    def _handle_alert(self, payload: bytes, events: list) -> bool:
        try:
            alert = Alert.decode(payload)
        except ReproError as exc:
            self._abort(exc, events)
            return True
        events.append(AlertReceived(alert=alert))
        if alert.is_close:
            self.closed = True
            events.append(ConnectionClosed())
            return True
        if alert.is_fatal:
            name = alert.description.name.lower()
            self.closed = True
            self.abort = SessionAborted(
                f"peer sent fatal {name}", origin=alert.origin, alert=name
            )
            events.append(ConnectionClosed(error=name, alert=name, origin=alert.origin))
            return True
        return False

    def _abort(self, exc: Exception, events: list) -> None:
        description = (
            AlertDescription.from_name(getattr(exc, "alert", "decode_error"))
            if isinstance(exc, ProtocolError)
            else AlertDescription.DECODE_ERROR
        )
        name = description.name.lower()
        self._out.queue_raw(alert_frame(Alert.fatal(description, origin=self.origin_label).encode()))
        self.closed = True
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        events.append(ConnectionClosed(error=f"{name}: {exc}", alert=name, origin=self.origin_label))

    def data_to_send(self) -> bytes:
        return self._out.data_to_send()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._out.queue_raw(close_frame())

    def peer_closed(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="transport closed")]


class BlindBoxInspectorConnection:
    """Sans-IO duplex BlindBox middlebox: matches tokens, relays frames.

    The detector sees only the encrypted token stream — frames are forwarded
    byte-for-byte, because the inspector fundamentally cannot transform the
    data (the [Computation: limited] cell of the §2.2 design space).
    """

    def __init__(
        self,
        detector: BlindBoxDetector,
        detector_up: BlindBoxDetector | None = None,
    ) -> None:
        self.detector_down = detector
        self.detector_up = detector_up if detector_up is not None else detector
        self._planes = [RecordPlane(), RecordPlane()]  # outboxes only
        self._buffers = [bytearray(), bytearray()]
        self.frames_inspected = 0
        self.closed = False
        self._started = False
        self.origin_label = "blindbox-inspector"
        self.abort: SessionAborted | None = None

    def start(self) -> None:
        if self._started:
            raise ProtocolError("BlindBox inspector already started")
        self._started = True

    def receive_down(self, data: bytes) -> list:
        return self._receive(0, self.detector_down, data)

    def receive_up(self, data: bytes) -> list:
        return self._receive(1, self.detector_up, data)

    def _receive(self, side: int, detector: BlindBoxDetector, data: bytes) -> list:
        if self.closed:
            return []
        buffer = self._buffers[side]
        outbound = self._planes[1 - side]
        buffer += data
        events: list = []
        try:
            frames = pop_frames(buffer)
        except ReproError as exc:
            self._abort(exc, events)
            return events
        for kind, payload in frames:
            if kind == FRAME_CLOSE:
                outbound.queue_raw(close_frame())
                continue
            if kind == FRAME_ALERT:
                # Alerts pass through untouched; a fatal one tears this hop
                # down too so the session cannot linger half-open.
                outbound.queue_raw(alert_frame(payload))
                try:
                    alert = Alert.decode(payload)
                except ReproError:
                    continue
                if alert.is_fatal and not alert.is_close:
                    name = alert.description.name.lower()
                    self.closed = True
                    self.abort = SessionAborted(
                        f"fatal {name} passed through", origin=alert.origin, alert=name
                    )
                    events.append(
                        ConnectionClosed(error=name, alert=name, origin=alert.origin)
                    )
                    break
                continue
            tokens, _chunk = _decode_payload(payload)
            detector.inspect(tokens)
            self.frames_inspected += 1
            outbound.queue_raw(frame(payload))
        return events

    def _abort(self, exc: Exception, events: list) -> None:
        description = (
            AlertDescription.from_name(getattr(exc, "alert", "decode_error"))
            if isinstance(exc, ProtocolError)
            else AlertDescription.DECODE_ERROR
        )
        name = description.name.lower()
        payload = Alert.fatal(description, origin=self.origin_label).encode()
        for plane in self._planes:
            plane.queue_raw(alert_frame(payload))
        self.closed = True
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        events.append(
            ConnectionClosed(error=f"{name}: {exc}", alert=name, origin=self.origin_label)
        )

    def data_to_send_down(self) -> bytes:
        return self._planes[0].data_to_send()

    def data_to_send_up(self) -> bytes:
        return self._planes[1].data_to_send()

    def peer_closed_down(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="client segment closed")]

    def peer_closed_up(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="server segment closed")]
