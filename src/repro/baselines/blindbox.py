"""Simplified BlindBox (SIGCOMM '15) — §2.2's functional-crypto point in the
design space.

BlindBox lets a pattern-matching middlebox (an IDS) inspect traffic
*without* learning the plaintext: alongside the regular TLS stream, the
sender emits deterministic encryptions of sliding-window tokens; the
middlebox holds the same deterministic encryptions of its *rule* patterns
(obtained through an oblivious protocol at setup) and matches ciphertext
against ciphertext.

We reproduce the data-path mechanism — tokenization, salted-deterministic
token encryption, equality matching — which is what the design-space
comparison in §2.2 turns on:

* [Data access: func. crypto] the middlebox learns only which rules
  matched, never the stream contents;
* [Computation: limited] it fundamentally cannot transform data — there is
  no mbTLS-style compression proxy or cache in this model;
* [Legacy: both endpoints upgraded] both ends must produce the token
  stream.

The oblivious rule-encryption setup (garbled circuits in the paper) is
abstracted: a :class:`RuleAuthority` plays the trusted setup that hands the
middlebox encrypted rules without revealing the token key. DESIGN.md
records the simplification.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field

from repro.errors import PolicyError

__all__ = ["TokenStream", "EncryptedRule", "RuleAuthority", "BlindBoxDetector"]

DEFAULT_WINDOW = 8  # sliding-window token size, like BlindBox's 8-byte tokens


def _encrypt_token(key: bytes, token: bytes) -> bytes:
    """Deterministic token encryption (PRF under the session token key)."""
    return hmac.new(key, b"blindbox-token" + token, "sha256").digest()[:16]


class TokenStream:
    """Endpoint-side tokenizer: plaintext -> encrypted token sequence.

    Tokens are every ``window``-byte sliding substring, so any rule of at
    least ``window`` bytes appearing in the stream is detectable. Carryover
    between chunks keeps matches that straddle chunk boundaries.
    """

    def __init__(self, token_key: bytes, window: int = DEFAULT_WINDOW) -> None:
        if len(token_key) < 16:
            raise PolicyError("token key too short")
        self._key = token_key
        self.window = window
        self._carry = b""

    def tokenize(self, plaintext: bytes) -> list[bytes]:
        data = self._carry + plaintext
        tokens = [
            _encrypt_token(self._key, data[i : i + self.window])
            for i in range(0, len(data) - self.window + 1)
        ]
        self._carry = data[-(self.window - 1):] if self.window > 1 else b""
        return tokens


@dataclass(frozen=True)
class EncryptedRule:
    """A rule as the middlebox sees it: name + encrypted pattern tokens."""

    name: str
    encrypted_tokens: tuple[bytes, ...]


class RuleAuthority:
    """Stands in for BlindBox's oblivious rule-encryption setup.

    Holds the session token key; encrypts the IDS's rule patterns under it
    without ever giving the IDS the key itself (in the paper this is a
    garbled-circuit protocol between the endpoints and the middlebox).
    """

    def __init__(self, token_key: bytes, window: int = DEFAULT_WINDOW) -> None:
        self._key = token_key
        self.window = window

    def encrypt_rule(self, name: str, pattern: bytes) -> EncryptedRule:
        if len(pattern) < self.window:
            raise PolicyError(
                f"pattern shorter than the {self.window}-byte token window"
            )
        tokens = tuple(
            _encrypt_token(self._key, pattern[i : i + self.window])
            for i in range(len(pattern) - self.window + 1)
        )
        return EncryptedRule(name=name, encrypted_tokens=tokens)


@dataclass
class Match:
    rule: str
    token_index: int


class BlindBoxDetector:
    """The middlebox: matches encrypted tokens against encrypted rules.

    It never holds the token key — only the encrypted rules — so a matching
    token reveals *that* a rule pattern occurred, nothing else.
    """

    def __init__(self, rules: list[EncryptedRule]) -> None:
        self._first_token_index: dict[bytes, list[EncryptedRule]] = {}
        for rule in rules:
            self._first_token_index.setdefault(rule.encrypted_tokens[0], []).append(rule)
        self.matches: list[Match] = []
        self._window: list[bytes] = []
        self._seen = 0
        self._reported: set[tuple[str, int]] = set()

    def inspect(self, encrypted_tokens: list[bytes]) -> list[Match]:
        """Consume a chunk of the token stream; returns fresh matches."""
        fresh: list[Match] = []
        self._window.extend(encrypted_tokens)
        for offset, token in enumerate(self._window):
            for rule in self._first_token_index.get(token, []):
                needed = len(rule.encrypted_tokens)
                candidate = self._window[offset : offset + needed]
                key = (rule.name, self._seen + offset)
                if (
                    len(candidate) == needed
                    and tuple(candidate) == rule.encrypted_tokens
                    and key not in self._reported
                ):
                    self._reported.add(key)
                    fresh.append(Match(rule=rule.name, token_index=key[1]))
        # Keep a tail big enough for the longest rule to match across chunks.
        longest = max(
            (len(rule.encrypted_tokens) for rules in self._first_token_index.values()
             for rule in rules),
            default=1,
        )
        if len(self._window) > longest:
            dropped = len(self._window) - longest
            self._seen += dropped
            del self._window[:dropped]
            self._reported = {
                entry for entry in self._reported if entry[1] >= self._seen
            }
        self.matches.extend(fresh)
        return fresh
