"""mdTLS (arXiv 2306.03573) — delegation certificates + proxy signatures.

mdTLS keeps mbTLS's per-hop record protection but replaces the per-hop
*secondary handshakes* with delegation: before the session, each endpoint
issues a signed warrant (:class:`~repro.wire.mdtls.DelegationCertificate`)
for every middlebox it wants on path, binding the middlebox's identity,
public key, and permissions to the endpoint's own certificate chain.  The
primary handshake then runs end to end **once**:

* the ClientHello / ServerHello carry the endpoints' warrant batches in
  the ``delegation_certificate`` extension;
* middleboxes forward every handshake record *verbatim* (so the endpoint
  Finished computation stays valid end to end) while shadowing the
  transcript, and each one **proxy-signs** the transcript hash after the
  Finished in each direction instead of handshaking for itself;
* the client delivers each middlebox's two hop secrets RSA-sealed under
  the warranted key (:class:`~repro.wire.mdtls.HopKeyDelivery`);
* both endpoints verify the aggregate proxy-signature chain against the
  warranted keys before declaring the session established.

The data plane is per-hop AEAD exactly like mbTLS: hop *i*'s keys are
derived from ``hop_secret(i)`` and a middlebox re-encrypts between its
client-side and server-side hops.

Simplifications, recorded in DESIGN.md §15: no ChangeCipherSpec (the
Finished flight travels in the clear, like our mcTLS reproduction), and
warrants are issued out of band by the deployment rather than via an
online enrollment protocol.
"""

from __future__ import annotations

import hashlib

from repro.crypto.kdf import prf
from repro.crypto.x25519 import x25519, x25519_base
from repro.errors import (
    CryptoError,
    IntegrityError,
    PolicyError,
    ProtocolError,
    ReproError,
    SessionAborted,
)
from repro.io.record_plane import RecordPlane
from repro.pki.authority import Credential
from repro.pki.store import TrustStore
from repro.tls.ciphersuites import DEFAULT_SUITES, CipherSuite, suite_by_code
from repro.tls.events import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    HandshakeComplete,
)
from repro.tls.keyschedule import derive_master_secret, finished_verify_data
from repro.tls.record_layer import ConnectionState
from repro.wire.alerts import Alert, AlertDescription
from repro.wire.extensions import Extension, ExtensionType
from repro.wire.handshake import (
    Certificate,
    ClientHello,
    ClientKeyExchange,
    Finished,
    Handshake,
    HandshakeBuffer,
    HandshakeType,
    KexAlgorithm,
    ServerHello,
    ServerHelloDone,
    ServerKeyExchange,
)
from repro.wire.mdtls import (
    DelegationCertificate,
    DelegationCertificateExtension,
    HopKeyDelivery,
    ProxySignature,
)
from repro.wire.records import ContentType, Record

__all__ = [
    "MdTLSDeployment",
    "MdTLSClientConnection",
    "MdTLSMiddleboxConnection",
    "MdTLSServerConnection",
    "derive_hop_secret",
    "hop_states",
]

_HOP_SECRET_LABEL = b"mdtls hop secret"
_HOP_EXPANSION_LABEL = b"mdtls key expansion"
_WARRANT_LIFETIME = 3600.0


def derive_hop_secret(
    master_secret: bytes, client_random: bytes, server_random: bytes, hop: int
) -> bytes:
    """The 32-byte secret protecting hop ``hop`` (0 = client-side hop)."""
    return prf(
        master_secret,
        _HOP_SECRET_LABEL,
        client_random + server_random + bytes([hop]),
        32,
    )


def hop_states(
    hop_secret: bytes,
    suite: CipherSuite,
    client_random: bytes,
    server_random: bytes,
) -> tuple[ConnectionState, ConnectionState]:
    """(client_write, server_write) record states for one hop."""
    total = 2 * suite.key_length + 2 * suite.fixed_iv_length
    block = prf(
        hop_secret, _HOP_EXPANSION_LABEL, server_random + client_random, total
    )
    offset = 0
    client_key = block[offset : offset + suite.key_length]
    offset += suite.key_length
    server_key = block[offset : offset + suite.key_length]
    offset += suite.key_length
    client_iv = block[offset : offset + suite.fixed_iv_length]
    offset += suite.fixed_iv_length
    server_iv = block[offset : offset + suite.fixed_iv_length]
    return (
        ConnectionState(suite, client_key, client_iv, sequence=0),
        ConnectionState(suite, server_key, server_iv, sequence=0),
    )


def _alert_for(exc: Exception) -> AlertDescription:
    """Map a processing failure onto the alert it should raise."""
    if isinstance(exc, IntegrityError):
        return AlertDescription.BAD_RECORD_MAC
    if isinstance(exc, PolicyError):
        return AlertDescription.ACCESS_DENIED
    if isinstance(exc, ProtocolError):
        return AlertDescription.from_name(exc.alert)
    return AlertDescription.DECODE_ERROR


def _plaintext_alert(alert: Alert) -> Record:
    """Alerts always travel unprotected on the mdTLS alert plane."""
    return Record(content_type=ContentType.ALERT, payload=alert.encode())


class MdTLSDeployment:
    """Pre-session warrant issuance plus connection builders.

    The deployment models the out-of-band step of the mdTLS design: both
    endpoints know the on-path middleboxes ahead of time and sign one
    warrant each per middlebox.  ``build_client`` / ``build_middlebox`` /
    ``build_server`` then hand out sans-IO connections wired with exactly
    the material each party would hold.
    """

    def __init__(
        self,
        *,
        rng,
        trust_store: TrustStore,
        client_credential: Credential,
        server_credential: Credential,
        middleboxes: list[tuple[str, Credential]] | tuple = (),
        server_name: str | None = None,
        now: float = 0.0,
    ) -> None:
        self.rng = rng
        self.trust_store = trust_store
        self.client_credential = client_credential
        self.server_credential = server_credential
        self.middleboxes = list(middleboxes)
        self.server_name = (
            server_name
            if server_name is not None
            else server_credential.certificate.subject
        )
        self.now = now
        self.client_warrants = tuple(
            self._issue(client_credential, name, credential)
            for name, credential in self.middleboxes
        )
        self.server_warrants = tuple(
            self._issue(server_credential, name, credential)
            for name, credential in self.middleboxes
        )

    def _issue(
        self, delegator: Credential, name: str, credential: Credential
    ) -> DelegationCertificate:
        return DelegationCertificate.issue(
            delegator=delegator.certificate.subject,
            delegator_key=delegator.private_key,
            delegator_chain=delegator.encoded_chain(),
            middlebox=name,
            middlebox_key=credential.private_key.public_key,
            permissions="read-write",
            not_before=self.now,
            not_after=self.now + _WARRANT_LIFETIME,
        )

    def build_client(self, rng=None) -> "MdTLSClientConnection":
        return MdTLSClientConnection(
            rng=rng if rng is not None else self.rng.fork(b"mdtls-client"),
            trust_store=self.trust_store,
            server_name=self.server_name,
            warrants=self.client_warrants,
            now=self.now,
        )

    def build_middlebox(self, index: int, rng=None) -> "MdTLSMiddleboxConnection":
        name, credential = self.middleboxes[index]
        return MdTLSMiddleboxConnection(
            name=name,
            credential=credential,
            trust_store=self.trust_store,
            now=self.now,
        )

    def build_server(self, rng=None) -> "MdTLSServerConnection":
        return MdTLSServerConnection(
            rng=rng if rng is not None else self.rng.fork(b"mdtls-server"),
            credential=self.server_credential,
            trust_store=self.trust_store,
            warrants=self.server_warrants,
            expected_middleboxes=[
                (name, credential.private_key.public_key)
                for name, credential in self.middleboxes
            ],
            now=self.now,
        )


class _MdTLSEndpoint:
    """State shared by both mdTLS endpoints: plane, transcript, aborts."""

    origin_label = "mdtls-endpoint"

    def __init__(self) -> None:
        self._plane = RecordPlane()
        self._handshake = HandshakeBuffer()
        self._transcript = bytearray()
        self.established = False
        self.closed = False
        self._started = False
        self.abort: SessionAborted | None = None
        self._states: tuple[ConnectionState, ConnectionState] | None = None

    # -- shared Connection-contract plumbing ------------------------------

    def start(self) -> None:
        if self._started:
            raise ProtocolError("mdTLS connection already started")
        self._started = True
        self._on_start()

    def _on_start(self) -> None:  # pragma: no cover - endpoint hook
        pass

    def data_to_send(self) -> bytes:
        return self._plane.data_to_send()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._plane.queue_encoded(_plaintext_alert(Alert.close_notify()))

    def peer_closed(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="transport closed")]

    def _append_transcript(self, message: Handshake) -> None:
        if message.msg_type != HandshakeType.MDTLS_PROXY_SIGNATURE:
            self._transcript += message.encode()

    def _transcript_hash(self) -> bytes:
        return hashlib.sha256(bytes(self._transcript)).digest()

    def _send_handshake(self, message) -> Handshake:
        framed = Handshake(msg_type=message.msg_type, body=message.encode_body())
        self._append_transcript(framed)
        self._plane.queue_record(ContentType.HANDSHAKE, framed.encode())
        return framed

    def _abort(self, exc: Exception, events: list) -> None:
        description = _alert_for(exc)
        name = description.name.lower()
        self._plane.queue_encoded(
            _plaintext_alert(Alert.fatal(description, origin=self.origin_label))
        )
        self.closed = True
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        events.append(
            ConnectionClosed(
                error=f"{name}: {exc}", alert=name, origin=self.origin_label
            )
        )

    def _handle_alert(self, payload: bytes, events: list) -> bool:
        """Process an inbound alert record; True if the connection ended."""
        alert = Alert.decode(bytes(payload))
        events.append(AlertReceived(alert=alert))
        if alert.is_close:
            self.closed = True
            events.append(ConnectionClosed())
            return True
        if alert.is_fatal:
            name = alert.description.name.lower()
            self.closed = True
            self.abort = SessionAborted(
                f"peer sent fatal {name}", origin=alert.origin, alert=name
            )
            events.append(
                ConnectionClosed(error=name, alert=name, origin=alert.origin)
            )
            return True
        return False

    def receive_bytes(self, data: bytes) -> list:
        if self.closed:
            return []
        events: list = []
        try:
            self._plane.feed(data)
            records = self._plane.pop_records()
        except ReproError as exc:
            self._abort(exc, events)
            return events
        for record in records:
            if self.closed:
                break
            try:
                if record.content_type == ContentType.ALERT:
                    if self._handle_alert(record.payload, events):
                        break
                    continue
                if record.content_type == ContentType.HANDSHAKE:
                    if self.established:
                        raise ProtocolError(
                            "handshake record after establishment",
                            alert="unexpected_message",
                        )
                    payload = record.payload
                    self._handshake.feed(
                        payload if isinstance(payload, bytes) else bytes(payload)
                    )
                    for message in self._handshake.pop_messages():
                        self._handle_handshake(message, events)
                        if self.closed:
                            break
                    continue
                if record.content_type == ContentType.APPLICATION_DATA:
                    if not self.established:
                        raise ProtocolError(
                            "application data before handshake completion",
                            alert="unexpected_message",
                        )
                    events.append(
                        ApplicationData(data=self._plane.unprotect(record))
                    )
                    continue
                raise ProtocolError(
                    f"unexpected content type {int(record.content_type)}",
                    alert="unexpected_message",
                )
            except (ReproError, KeyError, IndexError, ValueError) as exc:
                self._abort(exc, events)
                break
        return events

    def send_application_data(self, data: bytes) -> None:
        if self.closed:
            raise ProtocolError("cannot send application data on a closed connection")
        if not self.established:
            raise ProtocolError("handshake is not complete")
        self._plane.queue_application_data(data)

    def _install_states(
        self, read_state: ConnectionState, write_state: ConnectionState
    ) -> None:
        self._plane.replace_states(read_state, write_state)

    def _handle_handshake(self, message: Handshake, events: list) -> None:
        raise NotImplementedError


class MdTLSClientConnection(_MdTLSEndpoint):
    """Sans-IO mdTLS client endpoint.

    Flight 1: ClientHello carrying the client's warrant batch.  Flight 3
    (after the server's hello flight): ClientKeyExchange, one
    HopKeyDelivery per warranted middlebox, and the client Finished.  The
    session is established once the server Finished *and* every
    middlebox's server-to-client proxy signature verify.
    """

    origin_label = "mdtls-client"

    def __init__(
        self,
        *,
        rng,
        trust_store: TrustStore,
        server_name: str,
        warrants: tuple[DelegationCertificate, ...] = (),
        now: float = 0.0,
    ) -> None:
        super().__init__()
        self._rng = rng
        self._trust = trust_store
        self._server_name = server_name
        self._warrants = tuple(warrants)
        self._now = now
        self._state = "start"
        self._client_random = b""
        self._server_random = b""
        self._suite: CipherSuite | None = None
        self._kex_private = b""
        self._master_secret = b""
        self._server_certificate = None
        self._c2s_hash = b""
        self._s2c_hash = b""
        self._proxy_signatures: list[ProxySignature] = []
        self.peer_certificate = None

    def _on_start(self) -> None:
        self._client_random = self._rng.random_bytes(32)
        hello = ClientHello(
            random=self._client_random,
            cipher_suites=DEFAULT_SUITES,
            extensions=(
                DelegationCertificateExtension(self._warrants).to_extension(),
            ),
        )
        framed = Handshake(msg_type=hello.msg_type, body=hello.encode_body())
        self._append_transcript(framed)
        self._plane.queue_record(ContentType.HANDSHAKE, framed.encode())
        self._state = "wait_server_hello"

    def _handle_handshake(self, message: Handshake, events: list) -> None:
        kind = message.msg_type
        if kind == HandshakeType.SERVER_HELLO:
            self._expect_state("wait_server_hello", kind)
            self._append_transcript(message)
            self._process_server_hello(ServerHello.decode_body(message.body))
            self._state = "wait_certificate"
            return
        if kind == HandshakeType.CERTIFICATE:
            self._expect_state("wait_certificate", kind)
            self._append_transcript(message)
            self._process_certificate(Certificate.decode_body(message.body))
            self._state = "wait_server_kex"
            return
        if kind == HandshakeType.SERVER_KEY_EXCHANGE:
            self._expect_state("wait_server_kex", kind)
            self._append_transcript(message)
            self._process_server_kex(ServerKeyExchange.decode_body(message.body))
            self._state = "wait_hello_done"
            return
        if kind == HandshakeType.SERVER_HELLO_DONE:
            self._expect_state("wait_hello_done", kind)
            self._append_transcript(message)
            ServerHelloDone.decode_body(message.body)
            self._send_client_flight()
            self._state = "wait_finished"
            return
        if kind == HandshakeType.FINISHED:
            self._expect_state("wait_finished", kind)
            finished = Finished.decode_body(message.body)
            expected = finished_verify_data(
                self._master_secret, self._transcript_hash(), is_client=False
            )
            if finished.verify_data != expected:
                raise ProtocolError(
                    "server Finished verification failed", alert="decrypt_error"
                )
            self._append_transcript(message)
            self._s2c_hash = self._transcript_hash()
            self._state = "wait_proxy_signatures"
            self._maybe_complete(events)
            return
        if kind == HandshakeType.MDTLS_PROXY_SIGNATURE:
            self._expect_state("wait_proxy_signatures", kind)
            self._proxy_signatures.append(ProxySignature.decode_body(message.body))
            self._maybe_complete(events)
            return
        raise ProtocolError(
            f"unexpected handshake message {kind.name} in state {self._state}",
            alert="unexpected_message",
        )

    def _expect_state(self, state: str, kind: HandshakeType) -> None:
        if self._state != state:
            raise ProtocolError(
                f"unexpected {kind.name} in state {self._state}",
                alert="unexpected_message",
            )

    def _process_server_hello(self, hello: ServerHello) -> None:
        if hello.cipher_suite not in DEFAULT_SUITES:
            raise ProtocolError(
                "server selected a suite we did not offer",
                alert="illegal_parameter",
            )
        self._server_random = hello.random
        self._suite = suite_by_code(hello.cipher_suite)
        extension = hello.find_extension(int(ExtensionType.DELEGATION_CERTIFICATE))
        if extension is None:
            # The in-band mdTLS signal was stripped: the server either does
            # not speak mdTLS or a downgrade box removed the extension.
            raise ProtocolError(
                "server hello carries no delegation certificates",
                alert="handshake_failure",
            )
        batch = DelegationCertificateExtension.from_extension(extension)
        if len(batch.warrants) != len(self._warrants):
            raise ProtocolError(
                "server warrant count does not match the client's",
                alert="handshake_failure",
            )
        for ours, theirs in zip(self._warrants, batch.warrants):
            theirs.verify(
                self._trust,
                now=self._now,
                middlebox=ours.middlebox,
                middlebox_key=ours.middlebox_key,
            )

    def _process_certificate(self, certificate: Certificate) -> None:
        from repro.pki.certificate import Certificate as PkiCertificate

        chain = tuple(PkiCertificate.decode(cert) for cert in certificate.chain)
        self._server_certificate = self._trust.validate_chain(
            chain, self._server_name, self._now
        )
        self.peer_certificate = self._server_certificate

    def _process_server_kex(self, kex: ServerKeyExchange) -> None:
        signed = self._client_random + self._server_random + kex.params
        if not self._server_certificate.public_key.verify(signed, kex.signature):
            raise ProtocolError(
                "bad signature on ServerKeyExchange", alert="decrypt_error"
            )
        server_public = kex.parse_ecdhe_public()
        self._kex_private = self._rng.random_bytes(32)
        shared = x25519(self._kex_private, server_public)
        self._master_secret = derive_master_secret(
            shared, self._client_random, self._server_random
        )

    def _send_client_flight(self) -> None:
        public = x25519_base(self._kex_private)
        self._send_handshake(ClientKeyExchange(exchange_data=public))
        for hop, warrant in enumerate(self._warrants):
            secrets = derive_hop_secret(
                self._master_secret, self._client_random, self._server_random, hop
            ) + derive_hop_secret(
                self._master_secret,
                self._client_random,
                self._server_random,
                hop + 1,
            )
            sealed = warrant.middlebox_key.encrypt(secrets, self._rng)
            self._send_handshake(
                HopKeyDelivery(middlebox=warrant.middlebox, encrypted_secrets=sealed)
            )
        verify_data = finished_verify_data(
            self._master_secret, self._transcript_hash(), is_client=True
        )
        self._send_handshake(Finished(verify_data=verify_data))
        self._c2s_hash = self._transcript_hash()

    def _maybe_complete(self, events: list) -> None:
        if len(self._proxy_signatures) < len(self._warrants):
            return
        if len(self._proxy_signatures) > len(self._warrants):
            raise ProtocolError(
                "more proxy signatures than warranted middleboxes",
                alert="unexpected_message",
            )
        seen = {signature.middlebox for signature in self._proxy_signatures}
        for warrant in self._warrants:
            if warrant.middlebox not in seen:
                raise ProtocolError(
                    f"missing proxy signature from {warrant.middlebox!r}",
                    alert="handshake_failure",
                )
        by_name = {warrant.middlebox: warrant for warrant in self._warrants}
        payload_hash = self._s2c_hash
        for signature in self._proxy_signatures:
            if signature.direction != 1:
                raise ProtocolError(
                    "client received a client-to-server proxy signature",
                    alert="unexpected_message",
                )
            warrant = by_name[signature.middlebox]
            payload = ProxySignature.signed_payload(1, payload_hash)
            if not warrant.middlebox_key.verify(payload, signature.signature):
                raise ProtocolError(
                    f"bad proxy signature from {signature.middlebox!r}",
                    alert="decrypt_error",
                )
        client_write, server_write = hop_states(
            derive_hop_secret(
                self._master_secret, self._client_random, self._server_random, 0
            ),
            self._suite,
            self._client_random,
            self._server_random,
        )
        self._install_states(server_write, client_write)
        self.established = True
        self._state = "established"
        events.append(
            HandshakeComplete(
                cipher_suite=self._suite.code,
                peer_certificate=self._server_certificate,
            )
        )


class MdTLSServerConnection(_MdTLSEndpoint):
    """Sans-IO mdTLS server endpoint.

    Requires the client's warrant batch in the ClientHello (a stripped
    extension aborts the handshake — no silent fallback to vanilla TLS),
    answers with its own warrants, and withholds its Finished until the
    client Finished *and* every middlebox's client-to-server proxy
    signature verify against the warranted keys.
    """

    origin_label = "mdtls-server"

    def __init__(
        self,
        *,
        rng,
        credential: Credential,
        trust_store: TrustStore,
        warrants: tuple[DelegationCertificate, ...] = (),
        expected_middleboxes: list[tuple[str, object]] | tuple = (),
        now: float = 0.0,
    ) -> None:
        super().__init__()
        self._rng = rng
        self._credential = credential
        self._trust = trust_store
        self._warrants = tuple(warrants)
        self._expected = list(expected_middleboxes)
        self._now = now
        self._state = "wait_client_hello"
        self._client_random = b""
        self._server_random = b""
        self._suite: CipherSuite | None = None
        self._kex_private = b""
        self._master_secret = b""
        self._c2s_hash = b""
        self._deliveries: list[HopKeyDelivery] = []
        self._proxy_signatures: list[ProxySignature] = []
        self._client_warrants: tuple[DelegationCertificate, ...] = ()

    def _handle_handshake(self, message: Handshake, events: list) -> None:
        kind = message.msg_type
        if kind == HandshakeType.CLIENT_HELLO:
            self._expect_state("wait_client_hello", kind)
            self._append_transcript(message)
            self._process_client_hello(ClientHello.decode_body(message.body))
            self._state = "wait_client_kex"
            return
        if kind == HandshakeType.CLIENT_KEY_EXCHANGE:
            self._expect_state("wait_client_kex", kind)
            self._append_transcript(message)
            kex = ClientKeyExchange.decode_body(message.body)
            shared = x25519(self._kex_private, kex.exchange_data)
            self._master_secret = derive_master_secret(
                shared, self._client_random, self._server_random
            )
            self._state = "wait_key_deliveries"
            return
        if kind == HandshakeType.MDTLS_KEY_DELIVERY:
            self._expect_state("wait_key_deliveries", kind)
            self._append_transcript(message)
            delivery = HopKeyDelivery.decode_body(message.body)
            if len(self._deliveries) >= len(self._expected):
                raise ProtocolError(
                    "more hop-key deliveries than warranted middleboxes",
                    alert="unexpected_message",
                )
            expected_name = self._expected[len(self._deliveries)][0]
            if delivery.middlebox != expected_name:
                raise ProtocolError(
                    f"hop-key delivery for {delivery.middlebox!r}, expected "
                    f"{expected_name!r}",
                    alert="handshake_failure",
                )
            self._deliveries.append(delivery)
            return
        if kind == HandshakeType.FINISHED:
            self._expect_state("wait_key_deliveries", kind)
            if len(self._deliveries) != len(self._expected):
                raise ProtocolError(
                    "client Finished before all hop-key deliveries",
                    alert="handshake_failure",
                )
            finished = Finished.decode_body(message.body)
            expected = finished_verify_data(
                self._master_secret, self._transcript_hash(), is_client=True
            )
            if finished.verify_data != expected:
                raise ProtocolError(
                    "client Finished verification failed", alert="decrypt_error"
                )
            self._append_transcript(message)
            self._c2s_hash = self._transcript_hash()
            self._state = "wait_proxy_signatures"
            self._maybe_finish(events)
            return
        if kind == HandshakeType.MDTLS_PROXY_SIGNATURE:
            self._expect_state("wait_proxy_signatures", kind)
            self._proxy_signatures.append(ProxySignature.decode_body(message.body))
            self._maybe_finish(events)
            return
        raise ProtocolError(
            f"unexpected handshake message {kind.name} in state {self._state}",
            alert="unexpected_message",
        )

    def _expect_state(self, state: str, kind: HandshakeType) -> None:
        if self._state != state:
            raise ProtocolError(
                f"unexpected {kind.name} in state {self._state}",
                alert="unexpected_message",
            )

    def _process_client_hello(self, hello: ClientHello) -> None:
        extension = hello.find_extension(int(ExtensionType.DELEGATION_CERTIFICATE))
        if extension is None:
            # mdTLS is delegation-or-abort: losing the extension means a
            # downgrade box stripped the in-band signal.
            raise ProtocolError(
                "client hello carries no delegation certificates",
                alert="handshake_failure",
            )
        batch = DelegationCertificateExtension.from_extension(extension)
        if len(batch.warrants) != len(self._expected):
            raise ProtocolError(
                "client warrant count does not match the deployment",
                alert="handshake_failure",
            )
        for (name, public_key), warrant in zip(self._expected, batch.warrants):
            warrant.verify(
                self._trust, now=self._now, middlebox=name, middlebox_key=public_key
            )
        self._client_warrants = batch.warrants
        selected = None
        for code in DEFAULT_SUITES:
            if code in hello.cipher_suites:
                selected = code
                break
        if selected is None:
            raise ProtocolError(
                "no cipher suite in common", alert="handshake_failure"
            )
        self._client_random = hello.random
        self._suite = suite_by_code(selected)
        self._server_random = self._rng.random_bytes(32)
        self._send_handshake(
            ServerHello(
                random=self._server_random,
                cipher_suite=selected,
                extensions=(
                    DelegationCertificateExtension(self._warrants).to_extension(),
                ),
            )
        )
        self._send_handshake(Certificate(chain=self._credential.encoded_chain()))
        self._kex_private = self._rng.random_bytes(32)
        params = ServerKeyExchange.encode_ecdhe_params(
            x25519_base(self._kex_private)
        )
        signature = self._credential.private_key.sign(
            self._client_random + self._server_random + params
        )
        self._send_handshake(
            ServerKeyExchange(
                algorithm=KexAlgorithm.ECDHE_X25519,
                params=params,
                signature=signature,
            )
        )
        self._send_handshake(ServerHelloDone())

    def _maybe_finish(self, events: list) -> None:
        if len(self._proxy_signatures) < len(self._expected):
            return
        if len(self._proxy_signatures) > len(self._expected):
            raise ProtocolError(
                "more proxy signatures than warranted middleboxes",
                alert="unexpected_message",
            )
        by_name = dict(self._expected)
        seen = set()
        for signature in self._proxy_signatures:
            if signature.direction != 0:
                raise ProtocolError(
                    "server received a server-to-client proxy signature",
                    alert="unexpected_message",
                )
            if signature.middlebox not in by_name:
                raise ProtocolError(
                    f"proxy signature from unwarranted {signature.middlebox!r}",
                    alert="handshake_failure",
                )
            payload = ProxySignature.signed_payload(0, self._c2s_hash)
            if not by_name[signature.middlebox].verify(payload, signature.signature):
                raise ProtocolError(
                    f"bad proxy signature from {signature.middlebox!r}",
                    alert="decrypt_error",
                )
            seen.add(signature.middlebox)
        if len(seen) != len(self._expected):
            raise ProtocolError(
                "duplicate proxy signature in the aggregate chain",
                alert="handshake_failure",
            )
        verify_data = finished_verify_data(
            self._master_secret, self._transcript_hash(), is_client=False
        )
        self._send_handshake(Finished(verify_data=verify_data))
        hop = len(self._expected)
        client_write, server_write = hop_states(
            derive_hop_secret(
                self._master_secret, self._client_random, self._server_random, hop
            ),
            self._suite,
            self._client_random,
            self._server_random,
        )
        self._install_states(client_write, server_write)
        self.established = True
        self._state = "established"
        events.append(HandshakeComplete(cipher_suite=self._suite.code))


class MdTLSMiddleboxConnection:
    """Sans-IO duplex mdTLS middlebox.

    Forwards every handshake record *verbatim* (keeping the endpoints'
    Finished computation valid end to end) while shadowing the transcript,
    verifies its own warrants as they fly past, decrypts its
    :class:`HopKeyDelivery`, and appends a :class:`ProxySignature` after
    the Finished in each direction.  Once both Finished have passed it
    installs the two hop states and re-encrypts application data between
    its client-side and server-side hops.
    """

    origin_label = "mdtls-middlebox"

    def __init__(
        self,
        *,
        name: str,
        credential: Credential,
        trust_store: TrustStore,
        now: float = 0.0,
    ) -> None:
        self.name = name
        self.origin_label = f"mdtls-middlebox:{name}"
        self._credential = credential
        self._trust = trust_store
        self._now = now
        # Plane 0 faces the client ("down"), plane 1 the server ("up").
        self._planes = [RecordPlane(), RecordPlane()]
        self._handshakes = [HandshakeBuffer(), HandshakeBuffer()]
        self._transcript = bytearray()
        self._suite: CipherSuite | None = None
        self._client_random = b""
        self._server_random = b""
        self._hop_secrets: tuple[bytes, bytes] | None = None
        self._client_warrant_seen = False
        self._server_warrant_seen = False
        self._client_finished_seen = False
        self.established = False
        self.closed = False
        self._started = False
        self.abort: SessionAborted | None = None
        self.records_forwarded = 0

    def start(self) -> None:
        if self._started:
            raise ProtocolError("mdTLS middlebox already started")
        self._started = True

    def receive_down(self, data: bytes) -> list:
        return self._receive(0, data)

    def receive_up(self, data: bytes) -> list:
        return self._receive(1, data)

    def data_to_send_down(self) -> bytes:
        return self._planes[0].data_to_send()

    def data_to_send_up(self) -> bytes:
        return self._planes[1].data_to_send()

    def peer_closed_down(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="client segment closed")]

    def peer_closed_up(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="server segment closed")]

    def _transcript_hash(self) -> bytes:
        return hashlib.sha256(bytes(self._transcript)).digest()

    def _abort(self, exc: Exception, events: list) -> None:
        description = _alert_for(exc)
        name = description.name.lower()
        record = _plaintext_alert(Alert.fatal(description, origin=self.origin_label))
        for plane in self._planes:
            plane.queue_encoded(record)
        self.closed = True
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        events.append(
            ConnectionClosed(
                error=f"{name}: {exc}", alert=name, origin=self.origin_label
            )
        )

    def _receive(self, side: int, data: bytes) -> list:
        if self.closed:
            return []
        inbound = self._planes[side]
        outbound = self._planes[1 - side]
        events: list = []
        try:
            inbound.feed(data)
            records = inbound.pop_records()
        except ReproError as exc:
            self._abort(exc, events)
            return events
        for record in records:
            if self.closed:
                break
            try:
                if record.content_type == ContentType.ALERT:
                    if self._forward_alert(record, outbound, events):
                        break
                    continue
                if record.content_type == ContentType.HANDSHAKE:
                    # Still legal after establishment: trailing proxy
                    # signatures from middleboxes closer to the server pass
                    # through here; _shadow_handshake rejects anything else.
                    self._forward_handshake(side, record, outbound, events)
                    continue
                if record.content_type == ContentType.APPLICATION_DATA:
                    if not self.established:
                        raise ProtocolError(
                            "application data before handshake completion",
                            alert="unexpected_message",
                        )
                    plaintext = inbound.unprotect(record)
                    outbound.queue_record(ContentType.APPLICATION_DATA, plaintext)
                    self.records_forwarded += 1
                    continue
                raise ProtocolError(
                    f"unexpected content type {int(record.content_type)}",
                    alert="unexpected_message",
                )
            except (ReproError, KeyError, IndexError, ValueError) as exc:
                self._abort(exc, events)
                break
        return events

    def _forward_alert(self, record: Record, outbound: RecordPlane, events: list) -> bool:
        payload = record.payload
        encoded = payload if isinstance(payload, bytes) else bytes(payload)
        outbound.queue_encoded(
            Record(content_type=ContentType.ALERT, payload=encoded)
        )
        alert = Alert.decode(encoded)
        if alert.is_fatal and not alert.is_close:
            # Hop-by-hop propagation: tear our own forwarding state down too.
            name = alert.description.name.lower()
            self.closed = True
            self.abort = SessionAborted(
                f"fatal {name} passed through", origin=alert.origin, alert=name
            )
            events.append(
                ConnectionClosed(error=name, alert=name, origin=alert.origin)
            )
            return True
        return False

    def _forward_handshake(
        self, side: int, record: Record, outbound: RecordPlane, events: list
    ) -> None:
        payload = record.payload
        encoded = payload if isinstance(payload, bytes) else bytes(payload)
        # Verbatim forwarding first: the endpoints' transcript must see the
        # exact bytes the other endpoint produced.
        outbound.queue_encoded(
            Record(content_type=ContentType.HANDSHAKE, payload=encoded)
        )
        buffer = self._handshakes[side]
        buffer.feed(encoded)
        for message in buffer.pop_messages():
            self._shadow_handshake(side, message, outbound)

    def _shadow_handshake(
        self, side: int, message: Handshake, outbound: RecordPlane
    ) -> None:
        kind = message.msg_type
        if kind == HandshakeType.MDTLS_PROXY_SIGNATURE:
            return  # not part of the signed transcript
        if self.established:
            raise ProtocolError(
                "handshake message after establishment",
                alert="unexpected_message",
            )
        self._transcript += message.encode()
        if kind == HandshakeType.CLIENT_HELLO:
            if side != 0:
                raise ProtocolError(
                    "ClientHello from the server side", alert="unexpected_message"
                )
            self._process_client_hello(ClientHello.decode_body(message.body))
            return
        if kind == HandshakeType.SERVER_HELLO:
            if side != 1:
                raise ProtocolError(
                    "ServerHello from the client side", alert="unexpected_message"
                )
            self._process_server_hello(ServerHello.decode_body(message.body))
            return
        if kind == HandshakeType.MDTLS_KEY_DELIVERY:
            delivery = HopKeyDelivery.decode_body(message.body)
            if delivery.middlebox == self.name:
                self._accept_delivery(delivery)
            return
        if kind == HandshakeType.FINISHED:
            direction = 0 if side == 0 else 1
            if direction == 0:
                self._client_finished_seen = True
            signature = self._credential.private_key.sign(
                ProxySignature.signed_payload(direction, self._transcript_hash())
            )
            framed = Handshake(
                msg_type=HandshakeType.MDTLS_PROXY_SIGNATURE,
                body=ProxySignature(
                    middlebox=self.name, direction=direction, signature=signature
                ).encode_body(),
            )
            outbound.queue_record(ContentType.HANDSHAKE, framed.encode())
            if direction == 1:
                if not self._client_finished_seen:
                    raise ProtocolError(
                        "server Finished before client Finished",
                        alert="unexpected_message",
                    )
                self._install_hop_states()
            return
        # Certificate / ServerKeyExchange / ServerHelloDone /
        # ClientKeyExchange: transcript-shadowed above, otherwise opaque to
        # the middlebox.

    def _process_client_hello(self, hello: ClientHello) -> None:
        extension = hello.find_extension(int(ExtensionType.DELEGATION_CERTIFICATE))
        if extension is None:
            raise ProtocolError(
                "client hello carries no delegation certificates",
                alert="handshake_failure",
            )
        batch = DelegationCertificateExtension.from_extension(extension)
        self._verify_own_warrant(batch, delegated_by="client")
        self._client_warrant_seen = True
        self._client_random = hello.random

    def _process_server_hello(self, hello: ServerHello) -> None:
        if not self._client_warrant_seen:
            raise ProtocolError(
                "ServerHello before ClientHello", alert="unexpected_message"
            )
        extension = hello.find_extension(int(ExtensionType.DELEGATION_CERTIFICATE))
        if extension is None:
            raise ProtocolError(
                "server hello carries no delegation certificates",
                alert="handshake_failure",
            )
        batch = DelegationCertificateExtension.from_extension(extension)
        self._verify_own_warrant(batch, delegated_by="server")
        self._server_warrant_seen = True
        self._server_random = hello.random
        self._suite = suite_by_code(hello.cipher_suite)

    def _verify_own_warrant(
        self, batch: DelegationCertificateExtension, delegated_by: str
    ) -> None:
        own_key = self._credential.private_key.public_key
        for warrant in batch.warrants:
            if warrant.middlebox == self.name:
                warrant.verify(
                    self._trust,
                    now=self._now,
                    middlebox=self.name,
                    middlebox_key=own_key,
                )
                return
        raise ProtocolError(
            f"no {delegated_by}-issued warrant for middlebox {self.name!r}",
            alert="access_denied",
        )

    def _accept_delivery(self, delivery: HopKeyDelivery) -> None:
        try:
            secrets = self._credential.private_key.decrypt(
                delivery.encrypted_secrets
            )
        except CryptoError as exc:
            raise ProtocolError(
                "hop-key delivery does not decrypt under our key",
                alert="decrypt_error",
            ) from exc
        if len(secrets) != 64:
            raise ProtocolError(
                "hop-key delivery has the wrong secret length",
                alert="decrypt_error",
            )
        self._hop_secrets = (secrets[:32], secrets[32:])

    def _install_hop_states(self) -> None:
        if self._hop_secrets is None:
            raise ProtocolError(
                "handshake finished without a hop-key delivery for us",
                alert="handshake_failure",
            )
        if self._suite is None:
            raise ProtocolError(
                "handshake finished before suite negotiation",
                alert="unexpected_message",
            )
        client_side, server_side = self._hop_secrets
        down_c2s, down_s2c = hop_states(
            client_side, self._suite, self._client_random, self._server_random
        )
        up_c2s, up_s2c = hop_states(
            server_side, self._suite, self._client_random, self._server_random
        )
        # Down plane: read what the client wrote, write toward the client.
        self._planes[0].replace_states(down_c2s, down_s2c)
        # Up plane: read what the server wrote, write toward the server.
        self._planes[1].replace_states(up_s2c, up_c2s)
        self.established = True
