"""The naïve approach of Figure 1: share the primary session key.

An IETF-draft-era design (and CloudFlare Keyless SSL's cousin): establish a
normal end-to-end TLS session, then hand the session keys to the middlebox
over a secondary channel. mbTLS's §3.3 explains why this fails its threat
model; the benchmarks demonstrate the failures concretely:

* the same key protects every hop, so an adversary comparing records
  entering and leaving a middlebox learns whether it modified them
  (no P1C) — an unmodified record is *byte-identical* on both hops;
* records can be replayed from one hop onto another or made to skip the
  middlebox entirely (no P4);
* the key sits in plain middlebox memory, visible to the MIP (no P1A
  against the infrastructure).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import (
    CryptoError,
    DecodeError,
    IntegrityError,
    ProtocolError,
    SessionAborted,
)
from repro.io.record_plane import RecordPlane
from repro.netsim.driver import CpuMeter, DuplexDriver
from repro.netsim.network import Host, InterceptedFlow
from repro.tls.ciphersuites import suite_by_code
from repro.tls.engine import TLSClientEngine
from repro.tls.events import ConnectionClosed
from repro.tls.keyschedule import KeyBlock
from repro.tls.record_layer import ConnectionState
from repro.wire.alerts import Alert, AlertDescription
from repro.wire.records import ContentType, Record

__all__ = [
    "KeySharingClient",
    "KeySharingConnection",
    "KeySharingMiddlebox",
    "KeySharingService",
]

_DOWN, _UP = 0, 1


class KeySharingClient:
    """A TLS client that exports its session keys for a middlebox.

    Wraps :class:`TLSClientEngine`; after the handshake the application
    calls :meth:`exported_keys` and ships them to the middlebox over any
    secure side channel (the experiments use a separate TLS connection).
    """

    def __init__(self, engine: TLSClientEngine) -> None:
        self.engine = engine

    def exported_keys(self) -> tuple[int, KeyBlock]:
        suite, key_block = self.engine.export_key_block()
        return suite.code, key_block


class KeySharingMiddlebox:
    """In-path middlebox holding the endpoints' own session keys.

    It decrypts passing records to run ``process`` over the plaintext and —
    this is the point — re-encrypts them under the *same* keys and sequence
    numbers, so unmodified records leave byte-identical.
    """

    def __init__(
        self, process: Callable[[str, bytes], bytes] = lambda direction, data: data
    ) -> None:
        self._process = process
        self._suite = None
        self._c2s_state: ConnectionState | None = None
        self._s2c_state: ConnectionState | None = None
        self.records_processed = 0
        self.plaintext_seen: list[bytes] = []

    @property
    def keys_installed(self) -> bool:
        return self._c2s_state is not None

    def install_keys(
        self, suite_code: int, key_block: KeyBlock, start_sequence: int = 1
    ) -> None:
        """Receive the shared session keys (out of band)."""
        suite = suite_by_code(suite_code)
        self._suite = suite
        self._c2s_state = ConnectionState(
            suite, key_block.client_write_key, key_block.client_write_iv, start_sequence
        )
        self._s2c_state = ConnectionState(
            suite, key_block.server_write_key, key_block.server_write_iv, start_sequence
        )

    def handle_record(self, direction: str, record: Record) -> Record:
        """Decrypt, process, and re-encrypt one data record in place."""
        state = self._c2s_state if direction == "c2s" else self._s2c_state
        sequence_before = state.sequence
        plaintext = state.unprotect(record)
        self.plaintext_seen.append(plaintext)
        transformed = self._process(direction, plaintext)
        self.records_processed += 1
        # Re-protect under the SAME key at the SAME sequence number: this is
        # what makes unmodified records byte-identical across the middlebox.
        rewrite = state.clone_at(sequence_before)
        out = rewrite.protect(record.content_type, transformed)
        return out

    def seal_alert(self, direction: str, payload: bytes) -> Record | None:
        """Protect an alert toward one side under the shared keys.

        Returns ``None`` before the keys arrive — alerts travel in the
        clear during the handshake anyway.
        """
        state = self._c2s_state if direction == "c2s" else self._s2c_state
        if state is None:
            return None
        return state.protect(ContentType.ALERT, payload)


class KeySharingConnection:
    """Sans-IO duplex splice around a :class:`KeySharingMiddlebox`.

    Handshake records are relayed verbatim; once keys arrive, application
    data records are decrypted/processed/re-encrypted. Records that arrive
    before the keys are relayed verbatim (the middlebox physically cannot
    do anything else).
    """

    def __init__(self, middlebox: KeySharingMiddlebox) -> None:
        self.middlebox = middlebox
        self._planes = [RecordPlane(), RecordPlane()]
        self.closed = False
        self._started = False
        self.origin_label = "shared-key-middlebox"
        self.abort: SessionAborted | None = None

    def start(self) -> None:
        if self._started:
            raise ProtocolError("key-sharing splice already started")
        self._started = True

    def receive_down(self, data: bytes) -> list:
        return self._receive(_DOWN, "c2s", data)

    def receive_up(self, data: bytes) -> list:
        return self._receive(_UP, "s2c", data)

    def _receive(self, side: int, direction: str, data: bytes) -> list:
        if self.closed:
            return []
        inbound = self._planes[side]
        outbound = self._planes[1 - side]
        events: list = []
        try:
            inbound.feed(data)
            records = inbound.pop_records()
        except (DecodeError, ProtocolError) as exc:
            self._abort(exc, events)
            return events
        for record in records:
            if (
                record.content_type == ContentType.APPLICATION_DATA
                and self.middlebox.keys_installed
            ):
                try:
                    record = self.middlebox.handle_record(direction, record)
                except (IntegrityError, CryptoError, DecodeError, ProtocolError) as exc:
                    # A tampered record: it cannot be forwarded, and the
                    # shared sequence numbers mean neither can anything
                    # after it. Alert both sides and tear the splice down.
                    self._abort(exc, events)
                    break
            outbound.queue_encoded(record)
        return events

    def _abort(self, exc: Exception, events: list) -> None:
        if isinstance(exc, IntegrityError):
            description = AlertDescription.BAD_RECORD_MAC
        elif isinstance(exc, ProtocolError):
            description = AlertDescription.from_name(getattr(exc, "alert", "internal_error"))
        else:
            description = AlertDescription.DECODE_ERROR
        name = description.name.lower()
        payload = Alert.fatal(description, origin=self.origin_label).encode()
        for plane, direction in ((self._planes[_DOWN], "s2c"), (self._planes[_UP], "c2s")):
            try:
                sealed = self.middlebox.seal_alert(direction, payload)
                if sealed is not None:
                    plane.queue_encoded(sealed)
                else:
                    plane.queue_record(ContentType.ALERT, payload)
            except (CryptoError, ProtocolError):
                pass
        self.closed = True
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        events.append(
            ConnectionClosed(error=f"{name}: {exc}", alert=name, origin=self.origin_label)
        )

    def data_to_send_down(self) -> bytes:
        return self._planes[_DOWN].data_to_send()

    def data_to_send_up(self) -> bytes:
        return self._planes[_UP].data_to_send()

    def peer_closed_down(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="client segment closed")]

    def peer_closed_up(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="server segment closed")]


class KeySharingService:
    """Deploys a key-sharing middlebox as an on-path interceptor."""

    def __init__(
        self,
        host: Host,
        process: Callable[[str, bytes], bytes] = lambda direction, data: data,
        port: int = 443,
        meter: CpuMeter | None = None,
    ) -> None:
        self.host = host
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.middleboxes: list[KeySharingMiddlebox] = []
        self.drivers: list[DuplexDriver] = []
        self._process = process
        host.intercept(port, self._on_intercept)

    def share_keys(self, suite_code: int, key_block: KeyBlock) -> None:
        """The client pushes its session keys to every flow's middlebox."""
        for middlebox in self.middleboxes:
            middlebox.install_keys(suite_code, key_block)

    def _on_intercept(self, flow: InterceptedFlow) -> None:
        middlebox = KeySharingMiddlebox(self._process)
        self.middleboxes.append(middlebox)
        connection = KeySharingConnection(middlebox)
        driver = DuplexDriver(connection, flow.socket, meter=self.meter)
        self.drivers.append(driver)
        with self.meter.measure():
            connection.start()
        driver.bind_up(flow.dial_onward())
