"""The naïve approach of Figure 1: share the primary session key.

An IETF-draft-era design (and CloudFlare Keyless SSL's cousin): establish a
normal end-to-end TLS session, then hand the session keys to the middlebox
over a secondary channel. mbTLS's §3.3 explains why this fails its threat
model; the benchmarks demonstrate the failures concretely:

* the same key protects every hop, so an adversary comparing records
  entering and leaving a middlebox learns whether it modified them
  (no P1C) — an unmodified record is *byte-identical* on both hops;
* records can be replayed from one hop onto another or made to skip the
  middlebox entirely (no P4);
* the key sits in plain middlebox memory, visible to the MIP (no P1A
  against the infrastructure).
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.driver import CpuMeter
from repro.netsim.network import Host, InterceptedFlow
from repro.tls.ciphersuites import suite_by_code
from repro.tls.engine import TLSClientEngine
from repro.tls.keyschedule import KeyBlock
from repro.tls.record_layer import ConnectionState
from repro.wire.records import ContentType, Record, RecordBuffer

__all__ = ["KeySharingClient", "KeySharingMiddlebox", "KeySharingService"]


class KeySharingClient:
    """A TLS client that exports its session keys for a middlebox.

    Wraps :class:`TLSClientEngine`; after the handshake the application
    calls :meth:`exported_keys` and ships them to the middlebox over any
    secure side channel (the experiments use a separate TLS connection).
    """

    def __init__(self, engine: TLSClientEngine) -> None:
        self.engine = engine

    def exported_keys(self) -> tuple[int, KeyBlock]:
        suite, key_block = self.engine.export_key_block()
        return suite.code, key_block


class KeySharingMiddlebox:
    """In-path middlebox holding the endpoints' own session keys.

    It decrypts passing records to run ``process`` over the plaintext and —
    this is the point — re-encrypts them under the *same* keys and sequence
    numbers, so unmodified records leave byte-identical.
    """

    def __init__(
        self, process: Callable[[str, bytes], bytes] = lambda direction, data: data
    ) -> None:
        self._process = process
        self._suite = None
        self._c2s_state: ConnectionState | None = None
        self._s2c_state: ConnectionState | None = None
        self.records_processed = 0
        self.plaintext_seen: list[bytes] = []

    @property
    def keys_installed(self) -> bool:
        return self._c2s_state is not None

    def install_keys(
        self, suite_code: int, key_block: KeyBlock, start_sequence: int = 1
    ) -> None:
        """Receive the shared session keys (out of band)."""
        suite = suite_by_code(suite_code)
        self._suite = suite
        self._c2s_state = ConnectionState(
            suite, key_block.client_write_key, key_block.client_write_iv, start_sequence
        )
        self._s2c_state = ConnectionState(
            suite, key_block.server_write_key, key_block.server_write_iv, start_sequence
        )

    def handle_record(self, direction: str, record: Record) -> Record:
        """Decrypt, process, and re-encrypt one data record in place."""
        state = self._c2s_state if direction == "c2s" else self._s2c_state
        sequence_before = state.sequence
        plaintext = state.unprotect(record)
        self.plaintext_seen.append(plaintext)
        transformed = self._process(direction, plaintext)
        self.records_processed += 1
        # Re-protect under the SAME key at the SAME sequence number: this is
        # what makes unmodified records byte-identical across the middlebox.
        rewrite = state.clone_at(sequence_before)
        out = rewrite.protect(record.content_type, transformed)
        return out


class KeySharingService:
    """Deploys a key-sharing middlebox as an on-path interceptor.

    Handshake records are relayed verbatim; once keys arrive (pushed by the
    client via :meth:`share_keys`), data records are decrypted/processed/
    re-encrypted. Records that arrive before the keys are relayed verbatim
    (the middlebox physically cannot do anything else).
    """

    def __init__(
        self,
        host: Host,
        process: Callable[[str, bytes], bytes] = lambda direction, data: data,
        port: int = 443,
        meter: CpuMeter | None = None,
    ) -> None:
        self.host = host
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.middleboxes: list[KeySharingMiddlebox] = []
        self._process = process
        host.intercept(port, self._on_intercept)

    def share_keys(self, suite_code: int, key_block: KeyBlock) -> None:
        """The client pushes its session keys to every flow's middlebox."""
        for middlebox in self.middleboxes:
            middlebox.install_keys(suite_code, key_block)

    def _on_intercept(self, flow: InterceptedFlow) -> None:
        middlebox = KeySharingMiddlebox(self._process)
        self.middleboxes.append(middlebox)
        down = flow.socket
        up = flow.dial_onward()
        buffers = {id(down): RecordBuffer(), id(up): RecordBuffer()}

        def relay(src, dst, direction: str):
            def on_data(data: bytes) -> None:
                with self.meter.measure():
                    buffer = buffers[id(src)]
                    buffer.feed(data)
                    out = bytearray()
                    for record in buffer.pop_records():
                        if (
                            record.content_type == ContentType.APPLICATION_DATA
                            and middlebox.keys_installed
                        ):
                            record = middlebox.handle_record(direction, record)
                        out += record.encode()
                if out and not dst.closed:
                    dst.send(bytes(out))

            return on_data

        down.on_data(relay(down, up, "c2s"))
        up.on_data(relay(up, down, "s2c"))
        down.on_close(lambda: up.close() if not up.closed else None)
        up.on_close(lambda: down.close() if not down.closed else None)
