"""Transparent relays — the TLS baseline of Figure 6.

Two flavours:

* a *path relay* is just a host on the route with no interceptor; the
  network forwards through it with link latency only ("the middlebox simply
  relays packets", the worst case to compare mbTLS against);
* a :class:`SpliceRelayService` terminates TCP and splices bytes — an
  application-layer relay with no TLS processing, used to isolate the cost
  of split TCP from the cost of split TLS.
"""

from __future__ import annotations

from repro.netsim.driver import CpuMeter
from repro.netsim.network import Host, InterceptedFlow

__all__ = ["SpliceRelayService"]


class SpliceRelayService:
    """Splits TCP at a host and splices bytes verbatim in both directions."""

    def __init__(self, host: Host, port: int = 443, meter: CpuMeter | None = None) -> None:
        self.host = host
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.connections = 0
        self.bytes_relayed = 0
        host.intercept(port, self._on_intercept)

    def _on_intercept(self, flow: InterceptedFlow) -> None:
        self.connections += 1
        down = flow.socket
        up = flow.dial_onward()

        def forward(dst):
            def on_data(data: bytes) -> None:
                self.bytes_relayed += len(data)
                if not dst.closed:
                    dst.send(data)
            return on_data

        down.on_data(forward(up))
        up.on_data(forward(down))
        down.on_close(lambda: up.close() if not up.closed else None)
        up.on_close(lambda: down.close() if not down.closed else None)
