"""Transparent relays — the TLS baseline of Figure 6.

Two flavours:

* a *path relay* is just a host on the route with no interceptor; the
  network forwards through it with link latency only ("the middlebox simply
  relays packets", the worst case to compare mbTLS against);
* a :class:`SpliceRelay` terminates TCP and splices bytes — an
  application-layer relay with no TLS processing, used to isolate the cost
  of split TCP from the cost of split TLS. :class:`SpliceRelayService`
  deploys one per intercepted connection behind a
  :class:`~repro.netsim.driver.DuplexDriver`.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.io.record_plane import RecordPlane
from repro.netsim.driver import CpuMeter, DuplexDriver
from repro.netsim.network import Host, InterceptedFlow
from repro.tls.events import ConnectionClosed

__all__ = ["SpliceRelay", "SpliceRelayService"]


class SpliceRelay:
    """Sans-IO byte splice: bytes in on one segment, out on the other."""

    def __init__(self) -> None:
        # Planes are used for their coalesced outboxes only; the relay never
        # parses records.
        self._out_down = RecordPlane()
        self._out_up = RecordPlane()
        self.bytes_relayed = 0
        self.closed = False
        self._started = False

    def start(self) -> None:
        if self._started:
            raise ProtocolError("relay already started")
        self._started = True

    def receive_down(self, data: bytes) -> list:
        if self.closed:
            return []
        self.bytes_relayed += len(data)
        self._out_up.queue_raw(data)
        return []

    def receive_up(self, data: bytes) -> list:
        if self.closed:
            return []
        self.bytes_relayed += len(data)
        self._out_down.queue_raw(data)
        return []

    def data_to_send_down(self) -> bytes:
        return self._out_down.data_to_send()

    def data_to_send_up(self) -> bytes:
        return self._out_up.data_to_send()

    def peer_closed_down(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="client segment closed")]

    def peer_closed_up(self) -> list:
        if self.closed:
            return []
        self.closed = True
        return [ConnectionClosed(error="server segment closed")]


class SpliceRelayService:
    """Splits TCP at a host and splices bytes verbatim in both directions."""

    def __init__(self, host: Host, port: int = 443, meter: CpuMeter | None = None) -> None:
        self.host = host
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.relays: list[SpliceRelay] = []
        self.drivers: list[DuplexDriver] = []
        host.intercept(port, self._on_intercept)

    @property
    def connections(self) -> int:
        return len(self.relays)

    @property
    def bytes_relayed(self) -> int:
        return sum(relay.bytes_relayed for relay in self.relays)

    def _on_intercept(self, flow: InterceptedFlow) -> None:
        relay = SpliceRelay()
        self.relays.append(relay)
        driver = DuplexDriver(relay, flow.socket, meter=self.meter)
        self.drivers.append(driver)
        with self.meter.measure():
            relay.start()
        driver.bind_up(flow.dial_onward())
