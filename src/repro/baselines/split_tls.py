"""Split TLS: interception with a custom root certificate (§2.2).

The standard practice mbTLS replaces: an administrator provisions clients
with a custom root CA; the interception middlebox terminates the client's
TLS connection with a certificate it *fabricates on the fly* for the
destination, and opens its own second TLS connection to the server.

The well-known weaknesses are intentionally reproduced and surfaced by the
security benchmarks:

* the client authenticates the *middlebox's* fabricated certificate, never
  the real server [Authentication: owner ✗];
* whether the middlebox validates the real server at all is a middlebox
  configuration knob the client cannot observe (``validate_upstream``);
* all session keys and plaintext live in ordinary middlebox memory, fully
  visible to the infrastructure provider.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SessionAborted
from repro.netsim.driver import CpuMeter, DuplexDriver
from repro.netsim.network import Host, InterceptedFlow
from repro.pki.authority import CertificateAuthority
from repro.pki.store import TrustStore
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import ApplicationData, ConnectionClosed
from repro.wire.alerts import AlertDescription

__all__ = ["SplitTLSMiddlebox", "SplitTLSService"]


class SplitTLSMiddlebox:
    """Sans-IO split-TLS interceptor for one connection.

    Runs a full TLS *server* toward the client (with a fabricated leaf for
    the intended destination) and a full TLS *client* toward the server,
    splicing plaintext between them through ``process``.
    """

    def __init__(
        self,
        interception_ca: CertificateAuthority,
        destination: str,
        rng,
        upstream_trust: TrustStore | None = None,
        validate_upstream: bool = True,
        process: Callable[[str, bytes], bytes] = lambda direction, data: data,
        on_secret: Callable[[str, bytes], None] | None = None,
        now: Callable[[], float] = lambda: 0.0,
        key_bits: int | None = None,
        fabricated_credential=None,
    ) -> None:
        # Fabricate a certificate for the destination, signed by our CA
        # (or accept a service-cached credential to skip per-connection
        # key generation, like real interceptors do).
        if fabricated_credential is not None:
            fake_credential = fabricated_credential
        else:
            from repro.pki.authority import DEFAULT_KEY_BITS

            fake_credential = interception_ca.issue_credential(
                destination, rng=rng, now=now(),
                key_bits=key_bits if key_bits else DEFAULT_KEY_BITS,
            )
        self.down_engine = TLSServerEngine(
            TLSConfig(rng=rng.fork(b"down"), credential=fake_credential, on_secret=on_secret)
        )
        self.up_engine = TLSClientEngine(
            TLSConfig(
                rng=rng.fork(b"up"),
                trust_store=upstream_trust if validate_upstream else None,
                server_name=destination if validate_upstream else None,
                on_secret=on_secret,
                now=now,
            )
        )
        self.down_engine.origin_label = "split-tls-middlebox"
        self.up_engine.origin_label = "split-tls-middlebox"
        self._process = process
        self.records_processed = 0
        self.closed = False
        self.abort: SessionAborted | None = None

    def start(self) -> None:
        self.down_engine.start()
        self.up_engine.start()

    def receive_down(self, data: bytes) -> list:
        if self.closed:
            return []
        events = self.down_engine.receive_bytes(data)
        out = []
        for event in events:
            if isinstance(event, ApplicationData):
                transformed = self._process("c2s", event.data)
                self.records_processed += 1
                if self.up_engine.handshake_complete:
                    self.up_engine.send_application_data(transformed)
                else:
                    self._pending_up = getattr(self, "_pending_up", b"") + transformed
            elif isinstance(event, ConnectionClosed):
                self._segment_closed(self.down_engine, self.up_engine)
            out.append(event)
        return out

    def receive_up(self, data: bytes) -> list:
        if self.closed:
            return []
        events = self.up_engine.receive_bytes(data)
        for event in events:
            if isinstance(event, ApplicationData):
                transformed = self._process("s2c", event.data)
                self.records_processed += 1
                if self.down_engine.handshake_complete:
                    self.down_engine.send_application_data(transformed)
            elif isinstance(event, ConnectionClosed):
                self._segment_closed(self.up_engine, self.down_engine)
        # Flush data the client sent before the upstream handshake finished.
        pending = getattr(self, "_pending_up", b"")
        if pending and self.up_engine.handshake_complete:
            self.up_engine.send_application_data(pending)
            self._pending_up = b""
        return events

    def _segment_closed(self, source, other) -> None:
        """One session ended; end the other too (no half-open splice).

        Split TLS runs two *independent* TLS sessions, so a fatal alert on
        one cannot be forwarded verbatim — it is re-originated on the other
        session, preserving the original hop attribution.
        """
        self.closed = True
        if self.abort is None and source.abort is not None:
            self.abort = source.abort
        if other.closed:
            return
        if source.abort is not None:
            other.origin_label = source.abort.origin or other.origin_label
            other.send_fatal_alert(
                AlertDescription.from_name(source.abort.alert),
                str(source.abort),
            )
        else:
            other.close()

    def data_to_send_down(self) -> bytes:
        return self.down_engine.data_to_send()

    def data_to_send_up(self) -> bytes:
        return self.up_engine.data_to_send()

    def peer_closed_down(self) -> list:
        """The client segment died: say a clean goodbye toward the server."""
        if self.closed:
            return []
        self.closed = True
        if not self.up_engine.closed:
            self.up_engine.close()
        return [ConnectionClosed(error="client segment closed")]

    def peer_closed_up(self) -> list:
        """The server segment died: say a clean goodbye toward the client."""
        if self.closed:
            return []
        self.closed = True
        if not self.down_engine.closed:
            self.down_engine.close()
        return [ConnectionClosed(error="server segment closed")]

    # MbTLSMiddlebox-compatible surface for drivers.
    dial_target = None

    @property
    def joined(self) -> bool:
        return (
            self.down_engine.handshake_complete and self.up_engine.handshake_complete
        )


class SplitTLSService:
    """Deploys split-TLS interception on a host."""

    def __init__(
        self,
        host: Host,
        interception_ca: CertificateAuthority,
        rng,
        upstream_trust: TrustStore | None = None,
        validate_upstream: bool = True,
        process: Callable[[str, bytes], bytes] = lambda direction, data: data,
        port: int = 443,
        meter: CpuMeter | None = None,
        on_secret: Callable[[str, bytes], None] | None = None,
        key_bits: int | None = None,
    ) -> None:
        self.host = host
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.middleboxes: list[SplitTLSMiddlebox] = []
        self.drivers: list[DuplexDriver] = []
        self._ca = interception_ca
        self._rng = rng
        self._trust = upstream_trust
        self._validate = validate_upstream
        self._process = process
        self._on_secret = on_secret
        self._key_bits = key_bits
        # One leaf key pair for all fabrications: real interceptors generate
        # a key once and only sign a fresh certificate per destination.
        self._leaf_key = None
        self._fab_cache = {}
        host.intercept(port, self._on_intercept)

    def _fabricate(self, destination: str):
        from repro.crypto.rsa import generate_rsa_key
        from repro.pki.authority import Credential, DEFAULT_KEY_BITS

        if destination in self._fab_cache:
            return self._fab_cache[destination]
        if self._leaf_key is None:
            self._leaf_key = generate_rsa_key(
                self._key_bits or DEFAULT_KEY_BITS, self._rng.fork(b"leaf")
            )
        leaf = self._ca.issue(destination, self._leaf_key.public_key)
        credential = Credential(
            private_key=self._leaf_key,
            chain=(leaf, self._ca.certificate),
        )
        self._fab_cache[destination] = credential
        return credential

    def _on_intercept(self, flow: InterceptedFlow) -> None:
        middlebox = SplitTLSMiddlebox(
            self._ca,
            flow.destination,
            self._rng.fork(flow.destination.encode()),
            upstream_trust=self._trust,
            validate_upstream=self._validate,
            process=self._process,
            on_secret=self._on_secret,
            fabricated_credential=self._fabricate(flow.destination),
        )
        self.middleboxes.append(middlebox)
        driver = DuplexDriver(middlebox, flow.socket, meter=self.meter)
        self.drivers.append(driver)
        with self.meter.measure():
            middlebox.start()
        driver.bind_up(flow.dial_onward())
