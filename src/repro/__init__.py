"""mbTLS reproduction: secure communication for more than two parties.

A from-scratch Python implementation of the CoNEXT 2017 paper *And Then
There Were More: Secure Communication for More Than Two Parties* (Naylor et
al.): the mbTLS protocol, the TLS 1.2 engine it extends, a simulated SGX
substrate for outsourced middleboxes, a discrete-event network for the
evaluation, the baselines it is compared against, and middlebox
applications.

Public API highlights:

* ``repro.core`` — mbTLS endpoints and middleboxes.
* ``repro.tls`` — the sans-IO TLS 1.2 engine (also usable standalone).
* ``repro.sgx`` — simulated enclaves and remote attestation.
* ``repro.netsim`` — the discrete-event network simulator.
* ``repro.baselines`` — split TLS, shared-key, mcTLS, relays.
* ``repro.apps`` — HTTP substrate and middlebox applications.
* ``repro.bench`` — harnesses regenerating every table/figure in the paper.
"""

from repro.core import (
    MbTLSClientEngine,
    MbTLSEndpointConfig,
    MbTLSMiddlebox,
    MbTLSServerEngine,
    MiddleboxConfig,
    MiddleboxRole,
    MiddleboxService,
    SessionEstablished,
    open_mbtls,
    serve_mbtls,
)
from repro.crypto import HmacDrbg, system_rng
from repro.errors import ReproError
from repro.netsim import EngineDriver, Network, Simulator
from repro.pki import CertificateAuthority, Credential, TrustStore
from repro.sgx import AttestationService, EnclaveCode, Platform
from repro.tls import TLSClientEngine, TLSConfig, TLSServerEngine

__version__ = "1.0.0"

__all__ = [
    "MbTLSClientEngine",
    "MbTLSEndpointConfig",
    "MbTLSMiddlebox",
    "MbTLSServerEngine",
    "MiddleboxConfig",
    "MiddleboxRole",
    "MiddleboxService",
    "SessionEstablished",
    "open_mbtls",
    "serve_mbtls",
    "HmacDrbg",
    "system_rng",
    "ReproError",
    "EngineDriver",
    "Network",
    "Simulator",
    "CertificateAuthority",
    "Credential",
    "TrustStore",
    "AttestationService",
    "EnclaveCode",
    "Platform",
    "TLSClientEngine",
    "TLSConfig",
    "TLSServerEngine",
    "__version__",
]
