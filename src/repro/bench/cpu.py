"""Figure 5 harness: per-party handshake CPU time.

Runs full handshakes on a zero-latency network (so simulated transport
contributes nothing) with a :class:`CpuMeter` wrapped around every engine
call, and reports real CPU seconds per party for the paper's seven
configurations:

    tls            — plain TLS, no middlebox
    mbtls-0        — mbTLS endpoints, no middlebox
    split-1        — split TLS with one interception middlebox
    mbtls-1c       — mbTLS, one client-side middlebox
    mbtls-1s       — mbTLS, one server-side middlebox
    mbtls-2s       — mbTLS, two server-side middleboxes
    mbtls-3s       — mbTLS, three server-side middleboxes

The paper's claims to reproduce: the mbTLS middlebox is cheaper than split
TLS (one handshake instead of two); client-side middleboxes do not load the
server; server cost grows linearly, about one *client-role* handshake
(≈20 % of its baseline cost) per server-side middlebox.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.scenarios import Pki, build_chain_network, run_fetch
from repro.core.config import MiddleboxRole
from repro.crypto.drbg import HmacDrbg
from repro.netsim.driver import CpuMeter

__all__ = ["CONFIGURATIONS", "HandshakeCpu", "measure_configuration", "measure_all"]


@dataclass(frozen=True)
class HandshakeCpu:
    """Mean CPU seconds per party for one configuration."""

    configuration: str
    client: float
    middlebox: float  # mean across middleboxes; 0 if none
    server: float


CONFIGURATIONS: dict[str, dict] = {
    "tls": {"protocol": "tls", "middleboxes": []},
    "mbtls-0": {"protocol": "mbtls", "middleboxes": []},
    "split-1": {"protocol": "split", "middleboxes": [MiddleboxRole.CLIENT_SIDE]},
    "mbtls-1c": {"protocol": "mbtls", "middleboxes": [MiddleboxRole.CLIENT_SIDE]},
    "mbtls-1s": {"protocol": "mbtls", "middleboxes": [MiddleboxRole.SERVER_SIDE]},
    "mbtls-2s": {
        "protocol": "mbtls",
        "middleboxes": [MiddleboxRole.SERVER_SIDE] * 2,
    },
    "mbtls-3s": {
        "protocol": "mbtls",
        "middleboxes": [MiddleboxRole.SERVER_SIDE] * 3,
    },
}


def measure_configuration(
    name: str, pki: Pki, rng: HmacDrbg, trials: int = 5
) -> HandshakeCpu:
    """Run ``trials`` fresh handshakes of one configuration.

    Reports the per-party *median* across trials — robust against scheduler
    noise, which matters because each trial is a single handshake rather
    than the paper's 1000-iteration loop.
    """
    spec = CONFIGURATIONS[name]
    roles = spec["middleboxes"]
    samples = {"client": [], "middlebox": [], "server": []}
    for trial in range(trials):
        mbox_hosts = [f"mb{i}" for i in range(len(roles))]
        names = ["client"] + mbox_hosts + ["server"]
        network = build_chain_network([0.0] * (len(names) - 1), names)
        meters = {host: CpuMeter(host) for host in names}
        result = run_fetch(
            network,
            pki,
            rng.fork(b"%s-%d" % (name.encode(), trial)),
            protocol=spec["protocol"],
            middlebox_hosts=list(zip(mbox_hosts, roles)),
            response_size=64,
            meters=meters,
        )
        if not result.ok:
            raise RuntimeError(f"configuration {name} failed to complete a fetch")
        samples["client"].append(meters["client"].seconds)
        samples["server"].append(meters["server"].seconds)
        if mbox_hosts:
            samples["middlebox"].append(
                sum(meters[host].seconds for host in mbox_hosts) / len(mbox_hosts)
            )
        else:
            samples["middlebox"].append(0.0)

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    return HandshakeCpu(
        configuration=name,
        client=median(samples["client"]),
        middlebox=median(samples["middlebox"]),
        server=median(samples["server"]),
    )


def measure_all(trials: int = 5, seed: bytes = b"fig5") -> list[HandshakeCpu]:
    """Measure every Figure 5 configuration.

    Uses 2048-bit RSA credentials: the paper's per-middlebox server cost
    (~20% of a baseline handshake) comes from the asymmetry between the
    server's private-key operation and the client-role verify, which only
    shows at realistic key sizes.
    """
    rng = HmacDrbg(seed)
    pki = Pki(rng=rng.fork(b"pki"), key_bits=2048)
    return [
        measure_configuration(name, pki, rng.fork(name.encode()), trials)
        for name in CONFIGURATIONS
    ]
