"""The Table 2 client-network population: 241 sites across nine network
types, each with a middlebox/filter disposition.

§5.1 measured whether real networks' firewalls, normalizers, or IDSes drop
mbTLS handshakes (new record types + extension) — across 241 vantage points
they never did, because deployed filters do not rewrite TCP payloads of
flows they don't terminate. We reproduce the experiment over a synthetic
population with exactly the paper's site counts; the filter-policy mix is
the model's knob, with PASSTHROUGH dominating as observed, plus
grammar-checking filters in managed networks (which also pass mbTLS).

The hypothetical strict policies (DROP_UNKNOWN_TYPES / RESET_ON_UNKNOWN)
are *not* part of the observed population; the ablation benchmark turns
them on to show what would break.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.netsim.filters import FilterPolicy

__all__ = ["NETWORK_TYPE_COUNTS", "ClientSite", "generate_population"]

# Table 2's breakdown of distinct sites by network type.
NETWORK_TYPE_COUNTS: dict[str, int] = {
    "Enterprise": 6,
    "University": 11,
    "Residential": 34,
    "Public": 1,
    "Mobile": 2,
    "Hosting": 56,
    "Colocation Services": 35,
    "Data Center": 19,
    "Uncategorized": 77,
}

# Observed-world filter mix per network type: (policy, probability) pairs.
# Managed networks run flow-aware filters (grammar checks); nobody rewrites
# payloads of flows they do not terminate — hence no strict policies here.
_FILTER_MIX: dict[str, list[tuple[FilterPolicy, float]]] = {
    "Enterprise": [(FilterPolicy.GRAMMAR_CHECK, 0.7), (FilterPolicy.PASSTHROUGH, 0.3)],
    "University": [(FilterPolicy.GRAMMAR_CHECK, 0.5), (FilterPolicy.PASSTHROUGH, 0.5)],
    "Residential": [(FilterPolicy.PASSTHROUGH, 1.0)],
    "Public": [(FilterPolicy.GRAMMAR_CHECK, 0.5), (FilterPolicy.PASSTHROUGH, 0.5)],
    "Mobile": [(FilterPolicy.GRAMMAR_CHECK, 0.6), (FilterPolicy.PASSTHROUGH, 0.4)],
    "Hosting": [(FilterPolicy.PASSTHROUGH, 1.0)],
    "Colocation Services": [(FilterPolicy.PASSTHROUGH, 1.0)],
    "Data Center": [(FilterPolicy.PASSTHROUGH, 1.0)],
    "Uncategorized": [(FilterPolicy.GRAMMAR_CHECK, 0.2), (FilterPolicy.PASSTHROUGH, 0.8)],
}


@dataclass(frozen=True)
class ClientSite:
    """One vantage point: a client network with a filter disposition."""

    name: str
    network_type: str
    filter_policy: FilterPolicy
    latency_to_core: float  # one-way seconds to the wide-area core


def generate_population(
    rng: HmacDrbg,
    counts: dict[str, int] | None = None,
    strict_fraction: float = 0.0,
) -> list[ClientSite]:
    """Generate the client-site population.

    Args:
        counts: sites per network type (defaults to the paper's Table 2).
        strict_fraction: fraction of sites forced to a hypothetical strict
            policy (RESET_ON_UNKNOWN) — 0 for the observed world, >0 for
            the counterfactual ablation.
    """
    counts = counts if counts is not None else NETWORK_TYPE_COUNTS
    sites = []
    for network_type, count in counts.items():
        mix = _FILTER_MIX[network_type]
        for index in range(count):
            if strict_fraction > 0 and rng.random() < strict_fraction:
                policy = FilterPolicy.RESET_ON_UNKNOWN
            else:
                roll = rng.random()
                cumulative = 0.0
                policy = mix[-1][0]
                for candidate, probability in mix:
                    cumulative += probability
                    if roll < cumulative:
                        policy = candidate
                        break
            latency = 0.002 + rng.random() * 0.048  # 2-50 ms to the core
            sites.append(
                ClientSite(
                    name=f"{network_type.lower().replace(' ', '-')}-{index}",
                    network_type=network_type,
                    filter_policy=policy,
                    latency_to_core=latency,
                )
            )
    return sites
