"""Table 2 runner: mbTLS handshake viability across client networks.

For each client site, build client -> (site filter) -> middlebox -> server
with the site's filter policy attached to the first hop (the client's
access network, where §5.1's Tor exit nodes sat), run a full mbTLS
handshake with a client-side middlebox, and record success.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.bench.population import ClientSite
from repro.bench.scenarios import Pki
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole, SessionEstablished
from repro.core.drivers import MiddleboxService, open_mbtls
from repro.crypto.drbg import HmacDrbg
from repro.netsim.driver import EngineDriver
from repro.netsim.filters import TLSFilter
from repro.netsim.network import Network
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSServerEngine
from repro.tls.events import ApplicationData

__all__ = ["SiteResult", "run_site", "run_population"]


@dataclass(frozen=True)
class SiteResult:
    site: ClientSite
    handshake_ok: bool
    middlebox_joined: bool
    data_ok: bool


def run_site(site: ClientSite, pki: Pki, rng: HmacDrbg) -> SiteResult:
    """Run one site's handshake through its network filter."""
    network = Network()
    for name in ("client", "mbox", "server"):
        network.add_host(name)
    network.add_link("client", "mbox", site.latency_to_core)
    network.add_link("mbox", "server", 0.005)

    # The site's filter inspects the client's access-network streams.
    def attach_filter(stream, a, b):
        if "client" in (a, b):
            stream.add_tap(TLSFilter(site.filter_policy))

    network.on_new_stream(attach_filter)

    MiddleboxService(
        network.host("mbox"),
        lambda: MiddleboxConfig(
            name="mbox",
            tls=TLSConfig(rng=rng.fork(b"mb"), credential=pki.credential("mbox")),
            role=MiddleboxRole.CLIENT_SIDE,
        ),
    )

    def accept(socket, source):
        engine = TLSServerEngine(
            TLSConfig(rng=rng.fork(b"srv"), credential=pki.credential("server"))
        )
        driver = EngineDriver(engine, socket)
        driver.on_event = (
            lambda event: driver.send_application_data(b"pong")
            if isinstance(event, ApplicationData)
            else None
        )
        driver.start()

    network.host("server").listen(443, accept)

    outcome = {"established": False, "data": False, "mboxes": 0}

    def on_event(event):
        if isinstance(event, SessionEstablished):
            outcome["established"] = True
            outcome["mboxes"] = len(event.middleboxes)
            driver.send_application_data(b"ping")
        elif isinstance(event, ApplicationData):
            outcome["data"] = True

    engine, driver = open_mbtls(
        network.host("client"),
        "server",
        MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"cli"), trust_store=pki.trust, server_name="server"
            ),
            middlebox_trust_store=pki.trust,
        ),
        on_event=on_event,
    )
    network.sim.run(until=30.0)
    return SiteResult(
        site=site,
        handshake_ok=outcome["established"],
        middlebox_joined=outcome["mboxes"] > 0,
        data_ok=outcome["data"],
    )


def run_population(
    sites: list[ClientSite], pki: Pki, rng: HmacDrbg
) -> tuple[list[SiteResult], dict[str, tuple[int, int]]]:
    """Run every site; returns results and per-type (successes, total)."""
    results = [
        run_site(site, pki, rng.fork(site.name.encode())) for site in sites
    ]
    by_type: dict[str, tuple[int, int]] = {}
    totals = Counter(result.site.network_type for result in results)
    successes = Counter(
        result.site.network_type for result in results if result.handshake_ok
    )
    for network_type, total in sorted(totals.items()):
        by_type[network_type] = (successes.get(network_type, 0), total)
    return results, by_type
