"""WAN topology for Figure 6: four cloud regions and all 12
client-middlebox-server permutations.

One-way inter-region latencies approximate public inter-datacenter RTTs for
Azure's Australia / US-West / US-East / UK regions at the time of the paper.
Absolute values only set the scale; the figure's claim is the *delta*
between TLS and mbTLS on identical paths.
"""

from __future__ import annotations

from itertools import permutations

from repro.netsim.network import Network

__all__ = ["REGIONS", "ONE_WAY_LATENCY", "build_wan", "path_permutations"]

REGIONS = ("au", "usw", "use", "uk")

# One-way latency in seconds between regions (symmetric).
ONE_WAY_LATENCY: dict[frozenset, float] = {
    frozenset(("au", "usw")): 0.070,
    frozenset(("au", "use")): 0.100,
    frozenset(("au", "uk")): 0.140,
    frozenset(("usw", "use")): 0.035,
    frozenset(("usw", "uk")): 0.070,
    frozenset(("use", "uk")): 0.040,
}


def one_way(a: str, b: str) -> float:
    return ONE_WAY_LATENCY[frozenset((a, b))]


def build_wan(client_region: str, mbox_region: str, server_region: str) -> Network:
    """A client-mbox-server chain across three distinct regions."""
    network = Network()
    for name in ("client", "mbox", "server"):
        network.add_host(name)
    network.add_link("client", "mbox", one_way(client_region, mbox_region))
    network.add_link("mbox", "server", one_way(mbox_region, server_region))
    return network


def path_permutations() -> list[tuple[str, str, str]]:
    """The 12 (client, mbox, server) region triples of Fig. 6.

    Of the 24 ordered triples over 4 regions, the figure keeps one of each
    direction-reversed pair (client<->server swapped paths have identical
    latency), leaving 12.
    """
    return [
        (client, mbox, server)
        for client, mbox, server in permutations(REGIONS, 3)
        if REGIONS.index(client) < REGIONS.index(server)
    ]
