"""Fuzz-conformance harness: every party versus the mutation corpus.

Builds an in-memory session for each of the twelve
:class:`repro.io.Connection` / :class:`~repro.io.DuplexConnection`
implementations (the same twelve ``tests/test_connection_contract.py`` pins),
applies one deterministic :class:`~repro.netsim.fuzz.ChunkMutator` to the
client-to-server byte stream, and checks the abort invariant:

* no party ever leaks a non-:class:`~repro.errors.ReproError` exception;
* the pump always quiesces (a mutation may stall a session, never hang it);
* authenticated protocols never deliver plaintext that was not sent
  (BlindBox is exempt by design — it has no record integrity, which is the
  point the §2.2 comparison makes);
* both endpoints end the run closed — cleanly or via the alert plane,
  never half-open.

Every run is replayable: :func:`run_case` with an equal
:class:`~repro.netsim.fuzz.FuzzCase` produces a byte-identical transcript
digest. ``python -m repro fuzz`` runs the smoke corpus and prints failing
``(seed, mutation_index)`` pairs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.baselines.blindbox import (
    BlindBoxDetector,
    BlindBoxInspectorConnection,
    BlindBoxStreamConnection,
    RuleAuthority,
    TokenStream,
)
from repro.baselines.mctls import (
    ContextPermission,
    McTLSMiddleboxConnection,
    McTLSRecordConnection,
    McTLSSession,
)
from repro.baselines.mdtls import MdTLSDeployment
from repro.baselines.relay import SpliceRelay
from repro.baselines.shared_key import KeySharingConnection, KeySharingMiddlebox
from repro.baselines.split_tls import SplitTLSMiddlebox
from repro.bench.scenarios import Pki
from repro.core.client import MbTLSClientEngine
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole
from repro.core.middlebox import MbTLSMiddlebox
from repro.core.server import MbTLSServerEngine
from repro.crypto.drbg import HmacDrbg
from repro.errors import ReproError
from repro.netsim.fuzz import MUTATION_KINDS, AppliedMutation, FuzzCase
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import ApplicationData

__all__ = [
    "CASE_NAMES",
    "UNAUTHENTICATED_CASES",
    "FuzzReport",
    "build_parties",
    "run_case",
    "run_corpus",
    "smoke_corpus",
]

_PUMP_ROUNDS = 60
_C2S_PAYLOADS = (b"fuzz-ping-one", b"fuzz-ping-two")
_S2C_PAYLOADS = (b"fuzz-pong",)

#: Cases whose data plane carries no integrity protection: tampered bytes
#: reaching the application are the *documented* weakness, not a harness
#: failure.
UNAUTHENTICATED_CASES = frozenset({"blindbox", "blindbox_inspector"})


@dataclass
class _Parties:
    """One session's cast: ``left - middles - right`` plus phase hooks."""

    left: object
    middles: list
    right: object
    after_handshake: object = None  # callable, e.g. shared-key installation
    needs_handshake: bool = True


# One PKI per seed (RSA generation dominates otherwise); the engine DRBGs
# are derived independently so caching cannot perturb replay determinism.
_PKI_CACHE: dict[bytes, Pki] = {}


def _pki(seed: bytes) -> Pki:
    if seed not in _PKI_CACHE:
        _PKI_CACHE[seed] = Pki(rng=HmacDrbg(seed, personalization=b"fuzz-pki"))
    return _PKI_CACHE[seed]


def _tls_config(rng, pki, label: bytes, *, client: bool) -> TLSConfig:
    if client:
        return TLSConfig(
            rng=rng.fork(label), trust_store=pki.trust, server_name="server"
        )
    return TLSConfig(rng=rng.fork(label), credential=pki.credential("server"))


def _build_tls(pki, rng, seed) -> _Parties:
    return _Parties(
        left=TLSClientEngine(_tls_config(rng, pki, b"cli", client=True)),
        middles=[],
        right=TLSServerEngine(_tls_config(rng, pki, b"srv", client=False)),
    )


def _mbtls_endpoints(pki, rng):
    client = MbTLSClientEngine(
        MbTLSEndpointConfig(
            tls=_tls_config(rng, pki, b"cli", client=True),
            middlebox_trust_store=pki.trust,
            tamper_policy="abort",
        )
    )
    server = MbTLSServerEngine(
        MbTLSEndpointConfig(
            tls=_tls_config(rng, pki, b"srv", client=False),
            middlebox_trust_store=pki.trust,
            tamper_policy="abort",
        )
    )
    return client, server


def _build_mbtls(pki, rng, seed) -> _Parties:
    client, server = _mbtls_endpoints(pki, rng)
    return _Parties(left=client, middles=[], right=server)


def _build_mctls(pki, rng, seed) -> _Parties:
    session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), [1])
    return _Parties(
        left=McTLSRecordConnection(session.endpoint_party(), default_context=1),
        middles=[],
        right=McTLSRecordConnection(session.endpoint_party(), default_context=1),
        needs_handshake=False,
    )


def _build_blindbox(pki, rng, seed) -> _Parties:
    key = rng.fork(b"tok").random_bytes(32)
    return _Parties(
        left=BlindBoxStreamConnection(TokenStream(key)),
        middles=[],
        right=BlindBoxStreamConnection(TokenStream(key)),
        needs_handshake=False,
    )


def _build_mbtls_middlebox(pki, rng, seed) -> _Parties:
    client, server = _mbtls_endpoints(pki, rng)
    middlebox = MbTLSMiddlebox(
        MiddleboxConfig(
            name="mbox",
            tls=TLSConfig(rng=rng.fork(b"mb"), credential=pki.credential("mbox")),
            role=MiddleboxRole.AUTO,
            process=lambda direction, data: data,
            tamper_policy="abort",
        ),
        destination="server",
    )
    return _Parties(left=client, middles=[middlebox], right=server)


# The interception CA's serial counter advances on every issue, so the
# fabricated leaf is cached per seed too or replays would differ.
_FAB_CACHE: dict[bytes, object] = {}


def _fabricated_credential(seed: bytes, pki: Pki):
    if seed not in _FAB_CACHE:
        _FAB_CACHE[seed] = pki.ca.issue_credential(
            "server",
            rng=HmacDrbg(seed, personalization=b"fuzz-split-leaf"),
            key_bits=pki.key_bits,
        )
    return _FAB_CACHE[seed]


def _build_split_tls(pki, rng, seed) -> _Parties:
    middlebox = SplitTLSMiddlebox(
        pki.ca,
        "server",
        rng.fork(b"split"),
        upstream_trust=pki.trust,
        fabricated_credential=_fabricated_credential(seed, pki),
    )
    return _Parties(
        left=TLSClientEngine(_tls_config(rng, pki, b"cli", client=True)),
        middles=[middlebox],
        right=TLSServerEngine(_tls_config(rng, pki, b"srv", client=False)),
    )


def _build_splice_relay(pki, rng, seed) -> _Parties:
    return _Parties(
        left=TLSClientEngine(_tls_config(rng, pki, b"cli", client=True)),
        middles=[SpliceRelay()],
        right=TLSServerEngine(_tls_config(rng, pki, b"srv", client=False)),
    )


def _build_shared_key(pki, rng, seed) -> _Parties:
    client = TLSClientEngine(_tls_config(rng, pki, b"cli", client=True))
    server = TLSServerEngine(_tls_config(rng, pki, b"srv", client=False))
    middlebox = KeySharingMiddlebox()

    def share_keys() -> None:
        if client.handshake_complete and not middlebox.keys_installed:
            suite, key_block = client.export_key_block()
            middlebox.install_keys(suite.code, key_block)

    return _Parties(
        left=client,
        middles=[KeySharingConnection(middlebox)],
        right=server,
        after_handshake=share_keys,
    )


def _build_mctls_inspector(pki, rng, seed) -> _Parties:
    session = McTLSSession(rng.fork(b"c"), rng.fork(b"s"), [1])
    return _Parties(
        left=McTLSRecordConnection(session.endpoint_party(), default_context=1),
        middles=[
            McTLSMiddleboxConnection(
                session.middlebox_party({1: ContextPermission.READ})
            )
        ],
        right=McTLSRecordConnection(session.endpoint_party(), default_context=1),
        needs_handshake=False,
    )


def _build_blindbox_inspector(pki, rng, seed) -> _Parties:
    key = rng.fork(b"tok").random_bytes(32)
    authority = RuleAuthority(key)
    detector = BlindBoxDetector([authority.encrypt_rule("rule", b"suspicious")])
    return _Parties(
        left=BlindBoxStreamConnection(TokenStream(key)),
        middles=[BlindBoxInspectorConnection(detector)],
        right=BlindBoxStreamConnection(TokenStream(key)),
        needs_handshake=False,
    )


def _mdtls_deployment(pki, rng, middleboxes=()) -> MdTLSDeployment:
    return MdTLSDeployment(
        rng=rng.fork(b"mdtls"),
        trust_store=pki.trust,
        client_credential=pki.credential("client"),
        server_credential=pki.credential("server"),
        middleboxes=[(name, pki.credential(name)) for name in middleboxes],
    )


def _build_mdtls(pki, rng, seed) -> _Parties:
    deployment = _mdtls_deployment(pki, rng)
    return _Parties(
        left=deployment.build_client(),
        middles=[],
        right=deployment.build_server(),
    )


def _build_mdtls_middlebox(pki, rng, seed) -> _Parties:
    deployment = _mdtls_deployment(pki, rng, middleboxes=("mbox",))
    return _Parties(
        left=deployment.build_client(),
        middles=[deployment.build_middlebox(0)],
        right=deployment.build_server(),
    )


_BUILDERS = {
    "tls": _build_tls,
    "mbtls": _build_mbtls,
    "mctls": _build_mctls,
    "blindbox": _build_blindbox,
    "mbtls_middlebox": _build_mbtls_middlebox,
    "split_tls": _build_split_tls,
    "splice_relay": _build_splice_relay,
    "shared_key": _build_shared_key,
    "mctls_inspector": _build_mctls_inspector,
    "blindbox_inspector": _build_blindbox_inspector,
    "mdtls": _build_mdtls,
    "mdtls_middlebox": _build_mdtls_middlebox,
}

CASE_NAMES = tuple(_BUILDERS)


def build_parties(name: str, seed: bytes) -> _Parties:
    """Build the party chain for one implementation, deterministically."""
    rng = HmacDrbg(seed, personalization=b"fuzz-parties")
    return _BUILDERS[name](_pki(seed), rng, seed)


@dataclass
class FuzzReport:
    """The outcome of one fuzz case against one implementation."""

    name: str
    case: FuzzCase
    kind: str
    failures: tuple[str, ...]
    digest: str
    mutations: tuple[AppliedMutation, ...]
    events: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL " + "; ".join(self.failures)
        return f"{self.name} {self.case.describe()} kind={self.kind}: {status}"


class _Run:
    """One mutated session: the pump, the ledger, and the verdict."""

    def __init__(self, name: str, parties: _Parties, mutator) -> None:
        self.name = name
        self.parties = parties
        self.mutator = mutator
        self.failures: list[str] = []
        self.events: list[tuple[str, object]] = []
        self.hash = hashlib.sha256()

    # ------------------------------------------------------------- plumbing

    def _guard(self, party_name: str, fn, *args):
        """Run one party step; a non-ReproError escaping it is a finding."""
        try:
            return fn(*args)
        except ReproError:
            # The sans-IO contract prefers alerts over raises, but a raised
            # ReproError is still a *typed* refusal, not a crash.
            return []
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            self.failures.append(
                f"{party_name} leaked {type(exc).__name__}: {exc}"
            )
            return []

    def _record(self, party_name: str, events) -> None:
        for event in events or []:
            self.events.append((party_name, event))
            self.hash.update(party_name.encode() + type(event).__name__.encode())

    def _deliver(self, tag: bytes, data: bytes) -> None:
        self.hash.update(tag + len(data).to_bytes(4, "big") + data)

    def pump(self) -> None:
        """pump_chain with the mutator tapped into the c2s first hop."""
        left, middles, right = (
            self.parties.left,
            self.parties.middles,
            self.parties.right,
        )
        for _ in range(_PUMP_ROUNDS):
            progressed = False
            data = left.data_to_send()
            if data:
                progressed = True
                data = self.mutator.process_chunk(data) or b""
            if data:
                self._deliver(b"c>", data)
                target = middles[0].receive_down if middles else right.receive_bytes
                target_name = "middle0" if middles else "right"
                self._record(target_name, self._guard(target_name, target, data))
            for index, middle in enumerate(middles):
                data = middle.data_to_send_up()
                if data:
                    progressed = True
                    self._deliver(b"m>", data)
                    if index + 1 < len(middles):
                        nxt, nxt_name = (
                            middles[index + 1].receive_down,
                            f"middle{index + 1}",
                        )
                    else:
                        nxt, nxt_name = right.receive_bytes, "right"
                    self._record(nxt_name, self._guard(nxt_name, nxt, data))
            data = right.data_to_send()
            if data:
                progressed = True
                self._deliver(b"s>", data)
                target = middles[-1].receive_up if middles else left.receive_bytes
                target_name = f"middle{len(middles) - 1}" if middles else "left"
                self._record(target_name, self._guard(target_name, target, data))
            for index in range(len(middles) - 1, -1, -1):
                data = middles[index].data_to_send_down()
                if data:
                    progressed = True
                    self._deliver(b"m<", data)
                    if index > 0:
                        nxt, nxt_name = middles[index - 1].receive_up, f"middle{index - 1}"
                    else:
                        nxt, nxt_name = left.receive_bytes, "left"
                    self._record(nxt_name, self._guard(nxt_name, nxt, data))
            if not progressed:
                return
        self.failures.append(f"pump did not quiesce within {_PUMP_ROUNDS} rounds")

    def send(self, party_name: str, party, data: bytes) -> None:
        if getattr(party, "closed", False):
            return
        self._guard(party_name, party.send_application_data, data)
        self.pump()

    def close(self, party_name: str, party) -> None:
        self._guard(party_name, party.close)
        self.pump()

    # -------------------------------------------------------------- verdict

    def check_invariants(self) -> None:
        if self.name not in UNAUTHENTICATED_CASES:
            allowed = set(_C2S_PAYLOADS) | set(_S2C_PAYLOADS)
            for party_name, event in self.events:
                if party_name not in ("left", "right"):
                    continue
                if isinstance(event, ApplicationData) and event.data not in allowed:
                    self.failures.append(
                        f"{party_name} delivered tampered plaintext "
                        f"{event.data[:32]!r}"
                    )
        for party_name, party in (
            ("left", self.parties.left),
            ("right", self.parties.right),
        ):
            if not getattr(party, "closed", False):
                self.failures.append(f"{party_name} left half-open")

    def digest(self) -> str:
        self.hash.update(b"|".join(f.encode() for f in self.failures))
        return self.hash.hexdigest()


def run_case(name: str, case: FuzzCase) -> FuzzReport:
    """Run one implementation through one mutated session."""
    parties = build_parties(name, case.seed)
    mutator = case.mutator()
    run = _Run(name, parties, mutator)

    for party_name, party in (
        ("left", parties.left),
        *((f"middle{i}", m) for i, m in enumerate(parties.middles)),
        ("right", parties.right),
    ):
        run._guard(party_name, party.start)
    run.pump()
    if parties.after_handshake is not None:
        run._guard("harness", parties.after_handshake)

    established = (
        not parties.needs_handshake
        or getattr(parties.left, "established", False)
        or getattr(parties.left, "handshake_complete", False)
    )
    if established:
        for payload in _C2S_PAYLOADS:
            run.send("left", parties.left, payload)
        for payload in _S2C_PAYLOADS:
            run.send("right", parties.right, payload)
    run.close("left", parties.left)
    run.close("right", parties.right)
    run.check_invariants()

    return FuzzReport(
        name=name,
        case=case,
        kind=mutator.kind,
        failures=tuple(run.failures),
        digest=run.digest(),
        mutations=tuple(mutator.applied),
        events=tuple(
            f"{who}:{type(event).__name__}" for who, event in run.events
        ),
    )


def run_corpus(
    names=CASE_NAMES,
    seeds=(b"fz-0", b"fz-1", b"fz-2", b"fz-3", b"fz-4"),
    kinds=MUTATION_KINDS,
    mutation_indices=(1, 3),
) -> list[FuzzReport]:
    """The full conformance sweep: implementations x kinds x seeds."""
    reports = []
    for name in names:
        for kind in kinds:
            for seed in seeds:
                for index in mutation_indices:
                    reports.append(
                        run_case(name, FuzzCase(seed, index, kind))
                    )
    return reports


def smoke_corpus(seeds=(b"smoke-0", b"smoke-1")) -> list[FuzzReport]:
    """A CI-sized sweep: DRBG-chosen kinds over a small seed matrix."""
    reports = []
    for name in CASE_NAMES:
        for seed in seeds:
            for index in (0, 2):
                reports.append(run_case(name, FuzzCase(seed, index)))
    return reports
