"""``repro selftest`` — the downgrade gauntlet scoring service.

Drives the seeded :class:`~repro.netsim.downgrade.DowngradeAdversary`
corpus against every :class:`repro.io.Connection` implementation the fuzz
harness knows (the same ten ``tests/test_connection_contract.py`` pins) and
scores each run against the paper's security properties P1–P7. The contract
under test is the one Table 1 implies: an on-path downgrade attempt must be

* **detected** — an origin-attributed fatal alert tears the session down,
  or the forged party is visibly rejected and never joins; or
* **fallback** — a path member was excluded, but the decision is accounted
  (a ``session.fallback`` counter and the engine's fallback ledger); or
* **stalled** — the attack only denies service: nothing tampered was
  delivered, and the session simply never completes; or
* **harmless** — the session outcome is equivalent to the attack-free
  baseline (same establishment, suite, party set, delivered plaintext).

Anything else is a **silent downgrade** — the one verdict that fails the
selftest. Every case is replayable from ``(seed, case_index)`` alone;
``python -m repro selftest --seed S --index I [--impl NAME]`` re-runs one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro import obs
from repro.bench.fuzzing import (
    CASE_NAMES,
    UNAUTHENTICATED_CASES,
    build_parties,
)
from repro.core.config import MiddleboxRejected, SessionEstablished
from repro.errors import ReproError
from repro.netsim.downgrade import (
    ATTACK_KINDS,
    AppliedAttack,
    DowngradeCase,
)
from repro.tls.events import ApplicationData, MiddleboxJoined

__all__ = [
    "PROPERTIES",
    "CaseVerdict",
    "ImplScorecard",
    "SelftestReport",
    "run_case",
    "run_selftest",
]

_PUMP_ROUNDS = 80
_C2S_PAYLOADS = (b"selftest-ping-one", b"selftest-ping-two")
_S2C_PAYLOADS = (b"selftest-pong",)

#: The paper's security properties, as scored by this harness.
PROPERTIES = {
    "P1": "cipher-suite negotiation cannot be silently downgraded",
    "P2": "no tampered plaintext is ever delivered as authentic",
    "P3": "announcements confer nothing: forged/replayed parties never join",
    "P4": "forced fallback is detected or accounted, never silent",
    "P5": "stripping mbTLS signals is harmless to legacy sessions",
    "P6": "stripping the discovery signal from an mbTLS session is detected",
    "P7": "the attack-free baseline establishes and round-trips data",
}

#: Attack kinds feeding each property (P7 uses the baseline run instead).
_PROPERTY_KINDS = {
    "P1": ("suite_delete", "suite_inject"),
    "P2": ATTACK_KINDS,
    "P3": ("forge_announcement", "replay_announcement", "tamper_delegation"),
    "P4": ("suppress_announcement", "corrupt_secondary"),
    "P5": ("strip_support", "strip_server_hello"),
    "P6": ("strip_support",),
    "P7": (),
}

#: Implementations whose ClientHello carries a private-use signal (the
#: mbTLS discovery extension, or mdTLS delegation certificates): the
#: signal is present, so stripping it must be *detected* (P6); for
#: everything else stripping is vacuous and P6 is not applicable.
_MBTLS_IMPLS = frozenset({"mbtls", "mbtls_middlebox", "mdtls", "mdtls_middlebox"})

#: Where each attack's adversary sits. ``(direction, edge)``: c2s/left is
#: the hop leaving the client, c2s/right the hop entering the server, and
#: symmetrically for s2c. Hello rewrites happen as the bytes leave the
#: client; injection toward the server's announcement window happens on the
#: last hop; secondary corruption happens on the hop entering the client,
#: where the encapsulated ServerHello rides.
_PLACEMENT = {
    "strip_support": ("c2s", "left"),
    "suite_delete": ("c2s", "left"),
    "suite_inject": ("c2s", "left"),
    "forge_announcement": ("c2s", "right"),
    "replay_announcement": ("c2s", "right"),
    "suppress_announcement": ("c2s", "right"),
    "strip_server_hello": ("s2c", "right"),
    "corrupt_secondary": ("s2c", "left"),
    "tamper_delegation": ("c2s", "left"),
}

_VERDICT_OK = frozenset({"detected", "fallback", "stalled", "harmless"})


@dataclass(frozen=True)
class CaseVerdict:
    """One (implementation, downgrade case) run, scored.

    ``verdict`` is one of ``detected`` / ``fallback`` / ``stalled`` /
    ``harmless`` / ``silent-downgrade``; only the last fails. ``origin``
    names the hop that originated the fatal alert when the verdict is
    ``detected`` via the alert plane (empty for rejection-based detection).
    """

    impl: str
    seed: bytes
    case_index: int
    kind: str
    verdict: str
    origin: str
    detail: str
    attacks: tuple[AppliedAttack, ...]
    digest: str

    @property
    def ok(self) -> bool:
        return self.verdict in _VERDICT_OK

    def describe(self) -> str:
        status = self.verdict if self.ok else f"FAIL {self.verdict}"
        origin = f" origin={self.origin}" if self.origin else ""
        return (
            f"{self.impl} seed={self.seed!r} index={self.case_index} "
            f"kind={self.kind}: {status}{origin} ({self.detail})"
        )

    def to_json(self) -> dict:
        return {
            "impl": self.impl,
            "seed": self.seed.decode("latin-1"),
            "case_index": self.case_index,
            "kind": self.kind,
            "verdict": self.verdict,
            "origin": self.origin,
            "detail": self.detail,
            "attacks": [
                {"record": a.record_index, "kind": a.kind, "detail": a.detail}
                for a in self.attacks
            ],
            "digest": self.digest,
        }


@dataclass(frozen=True)
class ImplScorecard:
    """Per-implementation P1–P7 pass/fail row.

    ``properties`` maps ``P1``..``P7`` to ``"pass"`` / ``"FAIL"`` /
    ``"n/a"`` (the property does not apply to this implementation: P2 for
    the by-design unauthenticated baselines, P6 for non-mbTLS stacks).
    """

    impl: str
    properties: dict[str, str]
    verdicts: tuple[CaseVerdict, ...]

    @property
    def ok(self) -> bool:
        return "FAIL" not in self.properties.values()

    def to_json(self) -> dict:
        return {
            "impl": self.impl,
            "properties": dict(self.properties),
            "cases": [v.to_json() for v in self.verdicts],
        }


@dataclass(frozen=True)
class SelftestReport:
    """The whole gauntlet: one scorecard per implementation."""

    scorecards: tuple[ImplScorecard, ...]
    seeds: tuple[bytes, ...]

    @property
    def ok(self) -> bool:
        return all(card.ok for card in self.scorecards)

    @property
    def silent_downgrades(self) -> tuple[CaseVerdict, ...]:
        return tuple(
            verdict
            for card in self.scorecards
            for verdict in card.verdicts
            if verdict.verdict == "silent-downgrade"
        )

    def digest(self) -> str:
        """Deterministic fingerprint of every verdict in the report."""
        h = hashlib.sha256()
        for card in self.scorecards:
            for verdict in card.verdicts:
                h.update(verdict.digest.encode())
                h.update(verdict.verdict.encode())
        return h.hexdigest()

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "digest": self.digest(),
            "seeds": [seed.decode("latin-1") for seed in self.seeds],
            "scorecards": [card.to_json() for card in self.scorecards],
        }

    def render(self) -> str:
        """The scorecard table ``python -m repro selftest`` prints."""
        props = tuple(PROPERTIES)
        width = max(len(card.impl) for card in self.scorecards) + 2
        lines = ["impl".ljust(width) + "  ".join(p.ljust(4) for p in props)]
        lines.append("-" * (width + 6 * len(props)))
        for card in self.scorecards:
            cells = []
            for prop in props:
                value = card.properties[prop]
                cells.append(
                    {"pass": "pass", "FAIL": "FAIL", "n/a": "-"}[value].ljust(4)
                )
            lines.append(card.impl.ljust(width) + "  ".join(cells))
        failures = self.silent_downgrades
        lines.append("")
        if failures:
            lines.append(f"{len(failures)} silent downgrade(s):")
            lines.extend("  " + verdict.describe() for verdict in failures)
        else:
            lines.append("zero silent downgrades")
        lines.append(f"report digest {self.digest()[:16]}")
        return "\n".join(lines)


# --------------------------------------------------------------------- runs


@dataclass
class _Outcome:
    """What one session run produced, attack or baseline."""

    established: bool
    suite: int | None
    middleboxes: tuple[str, ...]
    delivered_left: tuple[bytes, ...]
    delivered_right: tuple[bytes, ...]
    tampered: tuple[bytes, ...]
    aborts: tuple[tuple[str, str, str], ...]  # (party, alert, origin)
    rejected: tuple[int, ...]  # subchannels visibly rejected
    joined: tuple[int, ...]  # subchannels that completed a secondary
    fallbacks: tuple[str, ...]  # accounted fallback reasons
    leaked: tuple[str, ...]  # non-ReproError crashes: always a failure
    quiesced: bool
    digest: str

    def equivalent(self, other: "_Outcome") -> bool:
        """Same session, security-wise, as ``other`` (the baseline)."""
        return (
            self.established == other.established
            and self.suite == other.suite
            and self.middleboxes == other.middleboxes
            and self.delivered_left == other.delivered_left
            and self.delivered_right == other.delivered_right
            and not self.aborts
            and not self.tampered
        )


def _party_suite(party) -> int | None:
    engine = getattr(party, "primary", party)
    suite = getattr(engine, "suite", None)
    return getattr(suite, "code", None)


def _party_established(party, needs_handshake: bool) -> bool:
    if not needs_handshake:
        return True
    return bool(
        getattr(party, "established", False)
        or getattr(party, "handshake_complete", False)
    )


class _Run:
    """One session pump with an adversary tapped into one hop."""

    def __init__(self, name: str, parties, adversary, placement) -> None:
        self.name = name
        self.parties = parties
        self.adversary = adversary  # None for the baseline run
        self.placement = placement  # (direction, edge) or None
        self.events: list[tuple[str, object]] = []
        self.leaked: list[str] = []
        self.quiesced = False
        self.established = False  # sampled pre-close; CLOSED wipes it
        self.hash = hashlib.sha256()
        # Stamp alert-plane labels on the plain TLS engines so detection is
        # origin-attributed across every implementation, not just mbTLS.
        for party, label in ((parties.left, "client"), (parties.right, "server")):
            if getattr(party, "origin_label", None) == "":
                party.origin_label = label

    def _guard(self, party_name: str, fn, *args):
        try:
            return fn(*args)
        except ReproError:
            return []
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            self.leaked.append(f"{party_name} leaked {type(exc).__name__}: {exc}")
            return []

    def _record(self, party_name: str, events) -> None:
        for event in events or []:
            self.events.append((party_name, event))
            self.hash.update(party_name.encode() + type(event).__name__.encode())

    def _mutate(self, direction: str, edge: str, data: bytes) -> bytes:
        """Apply the adversary iff it sits on this (direction, edge) hop.

        With no middleboxes each direction is a single hop, so the left and
        right edges coincide; the canonical slots (c2s/left, s2c/right) then
        stand in for both and the adversary still runs exactly once.
        """
        if self.adversary is None or not data:
            return data
        want_direction, want_edge = self.placement
        if direction != want_direction:
            return data
        if not self.parties.middles:
            if (direction, edge) not in (("c2s", "left"), ("s2c", "right")):
                return data
        elif edge != want_edge:
            return data
        return self.adversary.process_chunk(data) or b""

    def pump(self) -> None:
        left, middles, right = (
            self.parties.left,
            self.parties.middles,
            self.parties.right,
        )
        for _ in range(_PUMP_ROUNDS):
            progressed = False
            data = left.data_to_send()
            if data:
                progressed = True
                data = self._mutate("c2s", "left", data)
            if data:
                self.hash.update(b"c>" + len(data).to_bytes(4, "big") + data)
                target = middles[0].receive_down if middles else right.receive_bytes
                target_name = "middle0" if middles else "right"
                self._record(target_name, self._guard(target_name, target, data))
            for index, middle in enumerate(middles):
                data = middle.data_to_send_up()
                if data:
                    progressed = True
                    if index == len(middles) - 1:
                        data = self._mutate("c2s", "right", data)
                if data:
                    self.hash.update(b"m>" + len(data).to_bytes(4, "big") + data)
                    if index + 1 < len(middles):
                        nxt, nxt_name = (
                            middles[index + 1].receive_down,
                            f"middle{index + 1}",
                        )
                    else:
                        nxt, nxt_name = right.receive_bytes, "right"
                    self._record(nxt_name, self._guard(nxt_name, nxt, data))
            data = right.data_to_send()
            if data:
                progressed = True
                data = self._mutate("s2c", "right", data)
            if data:
                self.hash.update(b"s>" + len(data).to_bytes(4, "big") + data)
                target = middles[-1].receive_up if middles else left.receive_bytes
                target_name = f"middle{len(middles) - 1}" if middles else "left"
                self._record(target_name, self._guard(target_name, target, data))
            for index in range(len(middles) - 1, -1, -1):
                data = middles[index].data_to_send_down()
                if data:
                    progressed = True
                    if index == 0:
                        data = self._mutate("s2c", "left", data)
                if data:
                    self.hash.update(b"m<" + len(data).to_bytes(4, "big") + data)
                    if index > 0:
                        nxt, nxt_name = (
                            middles[index - 1].receive_up,
                            f"middle{index - 1}",
                        )
                    else:
                        nxt, nxt_name = left.receive_bytes, "left"
                    self._record(nxt_name, self._guard(nxt_name, nxt, data))
            if not progressed:
                self.quiesced = True
                return

    def send(self, party_name: str, party, data: bytes) -> None:
        if getattr(party, "closed", False):
            return
        self._guard(party_name, party.send_application_data, data)
        self.pump()

    def close(self, party_name: str, party) -> None:
        self._guard(party_name, party.close)
        self.pump()


def _collect(run: _Run, plane) -> _Outcome:
    parties = run.parties
    allowed = set(_C2S_PAYLOADS) | set(_S2C_PAYLOADS)
    delivered = {"left": [], "right": []}
    tampered: list[bytes] = []
    rejected: list[int] = []
    joined: list[int] = []
    aborts: list[tuple[str, str, str]] = []
    for party_name, event in run.events:
        if isinstance(event, ApplicationData) and party_name in delivered:
            delivered[party_name].append(event.data)
            if run.name not in UNAUTHENTICATED_CASES and event.data not in allowed:
                tampered.append(event.data)
        elif isinstance(event, MiddleboxRejected):
            rejected.append(event.subchannel_id)
        elif isinstance(event, MiddleboxJoined):
            joined.append(event.subchannel_id)
        elif isinstance(event, SessionEstablished):
            joined.extend(info.subchannel_id for info in event.middleboxes)
    # The endpoints' own abort ledgers catch detections whose ConnectionClosed
    # events a broken pump never surfaced.
    for party_name, party in (
        ("left", parties.left),
        *((f"middle{i}", m) for i, m in enumerate(parties.middles)),
        ("right", parties.right),
    ):
        abort = getattr(party, "abort", None)
        if abort is not None and getattr(abort, "alert", "") != "close_notify":
            aborts.append(
                (party_name, getattr(abort, "alert", ""), getattr(abort, "origin", ""))
            )
    fallbacks: list[str] = []
    for party in (parties.left, parties.right):
        fallbacks.extend(
            reason for _, reason in getattr(party, "fallback_decisions", ())
        )
    for labels, value in plane.metrics.iter_counters("session.fallback"):
        if value:
            fallbacks.append(labels.get("reason", "unknown"))
    middleboxes = tuple(
        sorted(
            {
                info.name
                for endpoint in (parties.left, parties.right)
                for info in getattr(endpoint, "middleboxes", ())
            }
        )
    )
    run.hash.update(b"|".join(f.encode() for f in run.leaked))
    return _Outcome(
        established=run.established,
        suite=_party_suite(parties.left),
        middleboxes=middleboxes,
        delivered_left=tuple(delivered["left"]),
        delivered_right=tuple(delivered["right"]),
        tampered=tuple(tampered),
        aborts=tuple(sorted(set(aborts))),
        rejected=tuple(sorted(set(rejected))),
        joined=tuple(sorted(set(joined))),
        fallbacks=tuple(sorted(set(fallbacks))),
        leaked=tuple(run.leaked),
        quiesced=run.quiesced,
        digest=run.hash.hexdigest(),
    )


def _execute(name: str, seed: bytes, adversary, placement) -> _Outcome:
    with obs.scoped() as plane:
        parties = build_parties(name, seed)
        run = _Run(name, parties, adversary, placement)
        for party_name, party in (
            ("left", parties.left),
            *((f"middle{i}", m) for i, m in enumerate(parties.middles)),
            ("right", parties.right),
        ):
            run._guard(party_name, party.start)
        run.pump()
        if parties.after_handshake is not None:
            run._guard("harness", parties.after_handshake)
        run.established = _party_established(
            parties.left, parties.needs_handshake
        ) and _party_established(parties.right, parties.needs_handshake)
        if run.established:
            for payload in _C2S_PAYLOADS:
                run.send("left", parties.left, payload)
            for payload in _S2C_PAYLOADS:
                run.send("right", parties.right, payload)
        run.close("left", parties.left)
        run.close("right", parties.right)
        return _collect(run, plane)


# Baselines are deterministic per (impl, seed); cache them so a corpus
# sweep does not re-run ten attack-free sessions per attack kind.
_BASELINE_CACHE: dict[tuple[str, bytes], _Outcome] = {}


def baseline_outcome(name: str, seed: bytes) -> _Outcome:
    key = (name, seed)
    if key not in _BASELINE_CACHE:
        _BASELINE_CACHE[key] = _execute(name, seed, None, None)
    return _BASELINE_CACHE[key]


def _classify(
    name: str, kind: str, outcome: _Outcome, baseline: _Outcome
) -> tuple[str, str, str]:
    """Score one attacked run: ``(verdict, origin, detail)``."""
    if outcome.leaked:
        return "silent-downgrade", "", outcome.leaked[0]
    if outcome.tampered:
        return (
            "silent-downgrade",
            "",
            f"tampered plaintext delivered: {outcome.tampered[0][:32]!r}",
        )
    if not outcome.quiesced:
        return "silent-downgrade", "", "pump did not quiesce"
    if outcome.aborts:
        # Origin-attributed detection. Prefer the self-reported originator
        # (its abort names itself); receivers echo the same origin.
        origins = sorted({origin for _, _, origin in outcome.aborts if origin})
        alerts = sorted({alert for _, alert, _ in outcome.aborts if alert})
        origin = origins[0] if origins else ""
        return (
            "detected",
            origin,
            f"fatal {'/'.join(alerts) or 'alert'} attributed to "
            f"{origin or 'unknown'}",
        )
    unauthorized = set(outcome.joined) - set(baseline.joined)
    if unauthorized:
        return (
            "silent-downgrade",
            "",
            f"unauthorized subchannel(s) {sorted(unauthorized)} joined",
        )
    if outcome.rejected and outcome.middleboxes == baseline.middleboxes:
        return (
            "detected",
            "",
            f"forged subchannel(s) {list(outcome.rejected)} visibly rejected; "
            "party set unchanged",
        )
    if outcome.equivalent(baseline):
        return "harmless", "", "session outcome equivalent to baseline"
    if outcome.fallbacks or outcome.rejected:
        reasons = ", ".join(outcome.fallbacks) or "rejection"
        return "fallback", "", f"degradation accounted ({reasons})"
    delivered = len(outcome.delivered_left) + len(outcome.delivered_right)
    expected = len(baseline.delivered_left) + len(baseline.delivered_right)
    if not outcome.established or delivered < expected:
        return "stalled", "", "denial of service only: no data tampered"
    return (
        "silent-downgrade",
        "",
        f"session weakened without detection (suite={outcome.suite!r}, "
        f"middleboxes={outcome.middleboxes!r})",
    )


def run_case(name: str, case: DowngradeCase) -> CaseVerdict:
    """Run one implementation against one downgrade case and score it."""
    adversary = case.adversary()
    outcome = _execute(
        name, case.seed, adversary, _PLACEMENT[adversary.kind]
    )
    baseline = baseline_outcome(name, case.seed)
    verdict, origin, detail = _classify(name, adversary.kind, outcome, baseline)
    if not adversary.applied and verdict in ("harmless", "stalled"):
        detail = "attack never fired (no-op on this implementation)"
        verdict = "harmless"
    return CaseVerdict(
        impl=name,
        seed=case.seed,
        case_index=case.case_index,
        kind=adversary.kind,
        verdict=verdict,
        origin=origin,
        detail=detail,
        attacks=tuple(adversary.applied),
        digest=outcome.digest,
    )


def _score_properties(
    name: str, verdicts: list[CaseVerdict], baseline_ok: bool
) -> dict[str, str]:
    properties: dict[str, str] = {}
    for prop, kinds in _PROPERTY_KINDS.items():
        if prop == "P7":
            properties[prop] = "pass" if baseline_ok else "FAIL"
            continue
        if prop == "P2" and name in UNAUTHENTICATED_CASES:
            properties[prop] = "n/a"
            continue
        if prop == "P6" and name not in _MBTLS_IMPLS:
            properties[prop] = "n/a"
            continue
        relevant = [v for v in verdicts if v.kind in kinds]
        if prop == "P2":
            failed = [
                v for v in relevant if "tampered plaintext" in v.detail
            ]
        elif prop == "P6":
            # The signal is present on these stacks, so stripping it must
            # be *detected* — a quiet no-op would be the downgrade winning.
            failed = [v for v in relevant if v.verdict != "detected"]
        else:
            failed = [v for v in relevant if not v.ok]
        properties[prop] = "FAIL" if failed else "pass"
    return properties


def run_selftest(
    impls=CASE_NAMES,
    seeds=(b"st-0", b"st-1"),
    kinds=ATTACK_KINDS,
) -> SelftestReport:
    """The full gauntlet: every impl × every attack kind × every seed."""
    scorecards = []
    for name in impls:
        verdicts: list[CaseVerdict] = []
        for seed in seeds:
            for kind in kinds:
                # case_index == position in ATTACK_KINDS, so a bare
                # (seed, case_index) pair reproduces the kind too.
                case_index = ATTACK_KINDS.index(kind)
                verdicts.append(run_case(name, DowngradeCase(seed, case_index)))
        base = baseline_outcome(name, seeds[0])
        baseline_ok = (
            base.established
            and not base.aborts
            and not base.leaked
            and base.quiesced
            and len(base.delivered_right) >= len(_C2S_PAYLOADS)
            and len(base.delivered_left) >= len(_S2C_PAYLOADS)
        )
        scorecards.append(
            ImplScorecard(
                impl=name,
                properties=_score_properties(name, verdicts, baseline_ok),
                verdicts=tuple(verdicts),
            )
        )
    return SelftestReport(scorecards=tuple(scorecards), seeds=tuple(seeds))
