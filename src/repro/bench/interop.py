"""Legacy-interoperability runner: the §5.1 "Alexa top 500" experiment.

A modified-curl-style mbTLS client fetches the root document of each
synthetic popular site through an mbTLS HTTP proxy. Legacy servers are
plain TLS engines with the population's defect mix; the run classifies each
fetch the way the paper reports it.
"""

from __future__ import annotations

from collections import Counter
from enum import Enum

from repro.bench.alexa import ServerDefect, SyntheticServer
from repro.bench.scenarios import Pki
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole, SessionEstablished
from repro.core.drivers import MiddleboxService, open_mbtls
from repro.crypto.drbg import HmacDrbg
from repro.netsim.driver import EngineDriver
from repro.netsim.network import Network
from repro.tls.ciphersuites import TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSServerEngine
from repro.tls.events import ApplicationData
from repro.apps.http import HttpClient, HttpParser, HttpResponse

__all__ = ["FetchOutcome", "fetch_site", "run_alexa"]

# The paper's prototype offered only AES-256-GCM; so does our curl stand-in.
_CLIENT_SUITES = (TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384.code,)


class FetchOutcome(Enum):
    SUCCESS = "success"
    NO_HTTPS = "no_https"
    BAD_CERTIFICATE = "bad_certificate"
    NO_COMMON_CIPHER = "no_common_cipher"
    REDIRECT = "redirect"
    UNKNOWN = "unknown"


def _serve_site(network, site: SyntheticServer, pki: Pki, rng: HmacDrbg) -> None:
    if site.defect == ServerDefect.EXPIRED_CERT:
        # Outside its validity window at the simulation's clock (t=0).
        credential = pki.expired_credential(site.hostname)
    else:
        credential = pki.credential(site.hostname)

    def accept(socket, source):
        if site.defect == ServerDefect.BROKEN:
            socket.send(b"\x00\x00garbage-not-tls\x00")
            return
        engine = TLSServerEngine(
            TLSConfig(
                rng=rng.fork(b"srv"),
                credential=credential,
                cipher_suites=site.cipher_suites,
            )
        )
        driver = EngineDriver(engine, socket)
        parser = HttpParser(parse_requests=True)

        def on_event(event):
            if isinstance(event, ApplicationData):
                for request in parser.feed(event.data):
                    if site.defect == ServerDefect.REDIRECT:
                        response = HttpResponse(
                            status=302,
                            reason="Found",
                            headers=[("Location", f"https://www.{site.hostname}/")],
                        )
                    else:
                        response = HttpResponse(
                            status=200, body=b"<html>%s</html>" % site.hostname.encode()
                        )
                    driver.send_application_data(response.encode())

        driver.on_event = on_event
        driver.start()

    network.host(site.hostname).listen(443, accept)


def fetch_site(site: SyntheticServer, pki: Pki, rng: HmacDrbg) -> FetchOutcome:
    """Fetch one site's root document through the mbTLS proxy."""
    if not site.supports_https:
        return FetchOutcome.NO_HTTPS
    network = Network()
    for name in ("client", "proxy", site.hostname):
        network.add_host(name)
    network.add_link("client", "proxy", 0.001)
    network.add_link("proxy", site.hostname, 0.001)
    _serve_site(network, site, pki, rng)
    MiddleboxService(
        network.host("proxy"),
        lambda: MiddleboxConfig(
            name="proxy",
            tls=TLSConfig(
                rng=rng.fork(b"proxy"),
                credential=pki.credential("proxy"),
                cipher_suites=_CLIENT_SUITES,
            ),
            role=MiddleboxRole.CLIENT_SIDE,
        ),
    )

    http = HttpClient()
    outcome: dict = {}

    def on_event(event):
        if isinstance(event, SessionEstablished):
            driver.send_application_data(HttpClient.get("/", site.hostname))
        elif isinstance(event, ApplicationData):
            for response in http.on_data(event.data):
                outcome["status"] = response.status

    engine, driver = open_mbtls(
        network.host("client"),
        site.hostname,
        MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"cli"),
                trust_store=pki.trust,
                server_name=site.hostname,
                cipher_suites=_CLIENT_SUITES,
            ),
            middlebox_trust_store=pki.trust,
        ),
        on_event=on_event,
        port=443,
    )
    # The server host listens as `server` but sites are named by hostname;
    # route via the literal host name used in the topology.
    network.sim.run(until=30.0)

    status = outcome.get("status")
    if status == 200:
        return FetchOutcome.SUCCESS
    if status is not None and 300 <= status < 400:
        return FetchOutcome.REDIRECT
    alert = engine.primary.alert_received
    error = None
    if engine.primary.alert_sent is not None:
        error = engine.primary.alert_sent.description.name.lower()
    if error in ("certificate_expired", "bad_certificate", "unknown_ca"):
        return FetchOutcome.BAD_CERTIFICATE
    if alert is not None and alert.description.name.lower() == "handshake_failure":
        return FetchOutcome.NO_COMMON_CIPHER
    return FetchOutcome.UNKNOWN


def run_alexa(
    sites: list[SyntheticServer], pki: Pki, rng: HmacDrbg
) -> Counter:
    """Classify every site; returns Counter over FetchOutcome values."""
    counts: Counter = Counter()
    for site in sites:
        counts[fetch_site(site, pki, rng.fork(site.hostname.encode()))] += 1
    return counts
