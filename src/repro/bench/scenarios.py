"""Reusable end-to-end scenario runners.

Each function wires up a network, endpoints, and middleboxes, runs the
simulation, and returns timing/outcome measurements. The benchmarks and the
integration tests share these builders so the numbers in EXPERIMENTS.md are
produced by exactly the code the tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.split_tls import SplitTLSService
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig
from repro.core.drivers import MiddleboxService, open_mbtls, serve_mbtls
from repro.core.config import SessionEstablished
from repro.crypto.drbg import HmacDrbg
from repro.netsim.driver import CpuMeter, EngineDriver
from repro.netsim.network import Network
from repro.pki.authority import CertificateAuthority, Credential
from repro.pki.store import TrustStore
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import ApplicationData, HandshakeComplete

__all__ = ["Pki", "FetchResult", "build_chain_network", "run_fetch"]


@dataclass
class Pki:
    """Shared test/bench PKI: one root CA plus issued credentials.

    Credentials are cached by subject so repeated scenario builds don't pay
    RSA key generation each time.
    """

    rng: HmacDrbg
    ca: CertificateAuthority = None
    key_bits: int = 1024
    _cache: dict[str, Credential] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ca is None:
            self.ca = CertificateAuthority("repro-root", self.rng.fork(b"ca"))
        self.trust = TrustStore([self.ca.certificate])
        self._shared_key = None

    def credential(self, subject: str) -> Credential:
        """A credential for ``subject``, issued over a shared bench key pair.

        Key *generation* is the expensive part of our pure-Python RSA and is
        irrelevant to the protocols under test, so population-scale benches
        reuse one key pair across subjects; certificates stay per-subject.
        """
        if subject not in self._cache:
            if self._shared_key is None:
                from repro.crypto.rsa import generate_rsa_key

                self._shared_key = generate_rsa_key(
                    self.key_bits, self.rng.fork(b"shared")
                )
            leaf = self.ca.issue(subject, self._shared_key.public_key)
            self._cache[subject] = Credential(
                private_key=self._shared_key,
                chain=(leaf, self.ca.certificate),
            )
        return self._cache[subject]

    def expired_credential(self, subject: str) -> Credential:
        """A credential whose certificate is outside its validity window."""
        self.credential(subject)  # ensure the shared key exists
        leaf = self.ca.issue(
            subject, self._shared_key.public_key, not_before=1.0e6, lifetime=500.0
        )
        return Credential(
            private_key=self._shared_key, chain=(leaf, self.ca.certificate)
        )


@dataclass
class FetchResult:
    """Timings from one small-object fetch."""

    handshake_seconds: float
    total_seconds: float
    reply: bytes
    client_middleboxes: tuple = ()
    ok: bool = True


def build_chain_network(
    latencies: list[float], names: list[str] | None = None
) -> Network:
    """A linear topology: client - hop1 - ... - server with given latencies."""
    network = Network()
    count = len(latencies) + 1
    if names is None:
        names = ["client"] + [f"hop{i}" for i in range(1, count - 1)] + ["server"]
    for name in names:
        network.add_host(name)
    for (a, b), latency in zip(zip(names, names[1:]), latencies):
        network.add_link(a, b, latency)
    return network


def run_fetch(
    network: Network,
    pki: Pki,
    rng: HmacDrbg,
    protocol: str = "mbtls",
    middlebox_hosts: list[tuple[str, str]] | None = None,
    request: bytes = b"GET / HTTP/1.1\r\nHost: server\r\n\r\n",
    response_size: int = 1024,
    server_host: str = "server",
    client_host: str = "client",
    server_is_mbtls: bool = True,
    meters: dict[str, CpuMeter] | None = None,
) -> FetchResult:
    """Fetch a small object and measure handshake + total time.

    Args:
        protocol: "tls" (plain TLS; middlebox hosts act as pure path
            relays), "mbtls", or "split" (split TLS interception).
        middlebox_hosts: list of (host_name, role) pairs to deploy
            middleboxes on (role from :class:`MiddleboxRole`).
    """
    middlebox_hosts = middlebox_hosts or []
    meters = meters or {}
    server_cred = pki.credential(server_host)
    result: dict = {}
    response_body = b"X" * response_size

    # --- middleboxes
    if protocol == "mbtls":
        for index, (host_name, role) in enumerate(middlebox_hosts):
            mb_name = f"mb-{host_name}"
            mb_cred = pki.credential(mb_name)

            def make_config(mb_name=mb_name, mb_cred=mb_cred, role=role, index=index):
                return MiddleboxConfig(
                    name=mb_name,
                    tls=TLSConfig(
                        rng=rng.fork(b"mb%d" % index), credential=mb_cred
                    ),
                    role=role,
                )

            MiddleboxService(
                network.host(host_name),
                make_config,
                meter=meters.get(host_name),
            )
    elif protocol == "split":
        interception_ca = CertificateAuthority(
            "intercept-root", rng.fork(b"intercept-ca")
        )
        pki.trust.add_root(interception_ca.certificate)
        for host_name, _role in middlebox_hosts:
            SplitTLSService(
                network.host(host_name),
                interception_ca,
                rng.fork(host_name.encode()),
                upstream_trust=pki.trust,
                meter=meters.get(host_name),
                key_bits=pki.key_bits,  # fair CPU comparison vs mbTLS creds
            )
    # protocol == "tls": middlebox hosts stay pure relays (no interceptor).

    # --- server
    if protocol == "mbtls" and server_is_mbtls:
        def make_server_config():
            return MbTLSEndpointConfig(
                tls=TLSConfig(rng=rng.fork(b"server"), credential=server_cred),
                middlebox_trust_store=pki.trust,
            )

        def on_server_event(engine, driver, event):
            if isinstance(event, ApplicationData):
                driver.send_application_data(response_body)

        serve_mbtls(
            network.host(server_host),
            make_server_config,
            on_event=on_server_event,
            meter=meters.get(server_host),
        )
    else:
        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(rng=rng.fork(b"server"), credential=server_cred)
            )
            driver = EngineDriver(engine, socket, meter=meters.get(server_host))
            driver.on_event = (
                lambda event: driver.send_application_data(response_body)
                if isinstance(event, ApplicationData)
                else None
            )
            driver.start()

        network.host(server_host).listen(443, accept)

    # --- client
    received = bytearray()

    def finish() -> None:
        result["total"] = network.sim.now
        result["reply"] = bytes(received)

    if protocol == "mbtls":
        def on_client_event(event) -> None:
            if isinstance(event, SessionEstablished):
                result["handshake"] = network.sim.now
                result["middleboxes"] = event.middleboxes
                client_driver.send_application_data(request)
            elif isinstance(event, ApplicationData):
                received.extend(event.data)
                if len(received) >= response_size:
                    finish()

        client_config = MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"client"),
                trust_store=pki.trust,
                server_name=server_host,
            ),
            middlebox_trust_store=pki.trust,
        )
        client_engine, client_driver = open_mbtls(
            network.host(client_host),
            server_host,
            client_config,
            on_event=on_client_event,
            meter=meters.get(client_host),
        )
    else:
        client_engine = TLSClientEngine(
            TLSConfig(
                rng=rng.fork(b"client"), trust_store=pki.trust, server_name=server_host
            )
        )
        client_socket = network.host(client_host).connect(server_host, 443)

        def on_client_event(event) -> None:
            if isinstance(event, HandshakeComplete):
                result["handshake"] = network.sim.now
                client_driver.send_application_data(request)
            elif isinstance(event, ApplicationData):
                received.extend(event.data)
                if len(received) >= response_size:
                    finish()

        client_driver = EngineDriver(
            client_engine,
            client_socket,
            on_event=on_client_event,
            meter=meters.get(client_host),
        )
        client_driver.start()

    network.sim.run()
    return FetchResult(
        handshake_seconds=result.get("handshake", float("nan")),
        total_seconds=result.get("total", float("nan")),
        reply=result.get("reply", b""),
        client_middleboxes=result.get("middleboxes", ()),
        ok=len(received) >= response_size,
    )
