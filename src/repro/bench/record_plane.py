"""Record-plane framing microbenchmark (shared by pytest and the CLI).

Measures the coalesced :class:`repro.io.record_plane.RecordPlane` drain
path against the historical per-record path (eager fragmentation slice,
per-record ``Record.encode()``, join on drain) over identical plaintext
workloads, and reports records/sec plus bytes-copied counts.  The
``receive`` section mirrors the comparison on the inbound side: the
historical parse (one ``bytes()`` per record plus the decode slice, then
per-record ``unprotect``) against the zero-copy path (one snapshot per
flight, payloads as memoryview slices, one ``unprotect_many``).  The
report is written to ``BENCH_record_plane.json`` by the benchmark test
and by ``python -m repro bench``.
"""

from __future__ import annotations

import time

from repro import obs
from repro.bench.crypto import SCHEMA_VERSION, git_describe
from repro.io.record_plane import RecordPlane
from repro.wire.records import (
    ContentType,
    MAX_FRAGMENT,
    RECORD_HEADER_LEN,
    Record,
    RecordBuffer,
)

__all__ = ["run", "legacy_drain", "plane_drain", "legacy_receive", "plane_receive"]

PAYLOAD_BYTES = 65536  # one 64 KiB app write -> a 4-record flight
FLIGHTS = 200
RECEIVE_FLIGHTS = 30  # sealed flights on the receive comparison


def legacy_drain(data: bytes) -> tuple[bytes, int]:
    """The pre-refactor path: eager slices, per-record encode, join on drain.

    Returns (wire bytes, payload bytes copied along the way).
    """
    copied = 0
    records: list[bytes] = []
    for offset in range(0, len(data), MAX_FRAGMENT):
        chunk = data[offset : offset + MAX_FRAGMENT]  # eager slice: copy 1
        copied += len(chunk)
        encoded = Record(ContentType.APPLICATION_DATA, chunk).encode()  # copy 2
        copied += len(encoded)
        records.append(encoded)
    wire = b"".join(records)  # copy 3
    copied += len(wire)
    return wire, copied


def plane_drain(plane: RecordPlane, data: bytes) -> tuple[bytes, int]:
    """The coalesced path: memoryview fragmentation, one copy per flight."""
    before = len(data)  # payload lands in the outbox bytearray: copy 1
    plane.queue_application_data(data)
    wire = plane.data_to_send()  # bytes(outbox): copy 2
    return wire, before + len(wire)


def _throughput(drain, payload_bytes: int, flights: int) -> tuple[float, int, int]:
    """Runs ``drain`` per flight; returns (records/sec, records, bytes copied)."""
    records = 0
    copied = 0
    start = time.perf_counter()
    for _ in range(flights):
        wire, flight_copied = drain()
        copied += flight_copied
        records += -(-payload_bytes // MAX_FRAGMENT)
        assert wire  # keep the drain honest
    elapsed = time.perf_counter() - start
    return records / elapsed, records, copied


# ---------------------------------------------------------------- receive


def _sealed_flights(payload: bytes, flights: int):
    """Pre-sealed AES-128-GCM wire flights plus a fresh-read-state factory."""
    from repro.tls.ciphersuites import TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256
    from repro.tls.record_layer import ConnectionState

    suite = TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256
    key = bytes(range(suite.key_length))
    fixed_iv = b"\x0a" * suite.fixed_iv_length
    write = ConnectionState(suite, key, fixed_iv)
    view = memoryview(payload)
    items = [
        (ContentType.APPLICATION_DATA, bytes(view[off : off + MAX_FRAGMENT]))
        for off in range(0, len(payload), MAX_FRAGMENT)
    ]
    wires = [
        b"".join(record.encode() for record in write.protect_many(items))
        for _ in range(flights)
    ]
    return wires, lambda: ConnectionState(suite, key, fixed_iv)


def legacy_receive(state, buffer: RecordBuffer, wire: bytes) -> tuple[int, int]:
    """The historical inbound path: copying parse, per-record unprotect.

    Returns (records opened, payload bytes copied): the feed into the
    reassembly buffer, then per record the ``bytes()`` materialization
    (header + payload) plus the decode slice, plus the plaintext.
    """
    buffer.feed(wire)
    copied = len(wire)
    opened = 0
    for record in buffer.pop_records():
        copied += RECORD_HEADER_LEN + 2 * len(record.payload)
        plaintext = state.unprotect(record)
        copied += len(plaintext)
        opened += 1
    return opened, copied


def plane_receive(plane: RecordPlane, wire: bytes) -> tuple[int, int]:
    """The zero-copy inbound path: one snapshot, batched unprotect.

    Per flight the payload crosses memory twice before decryption (feed
    into the inbound buffer, then the single consumed-region snapshot the
    record views slice) instead of twice *per record* plus slices.
    """
    plane.feed(wire)
    copied = len(wire)
    records = plane.pop_records()
    copied += len(wire)  # the one consumed-region snapshot
    plaintexts = plane.unprotect_many(records)
    copied += sum(len(plaintext) for plaintext in plaintexts)
    return len(records), copied


def _receive_throughput(receive, flights: int) -> tuple[float, int, int]:
    records = 0
    copied = 0
    start = time.perf_counter()
    for index in range(flights):
        opened, flight_copied = receive(index)
        records += opened
        copied += flight_copied
    elapsed = time.perf_counter() - start
    return records / elapsed, records, copied


def bench_receive(payload_bytes: int, flights: int = RECEIVE_FLIGHTS) -> dict:
    """Measure both inbound paths over identical sealed flights."""
    payload = bytes(range(256)) * (payload_bytes // 256)
    wires, read_state = _sealed_flights(payload, flights)

    state = read_state()
    buffer = RecordBuffer()
    legacy_rate, legacy_records, legacy_copied = _receive_throughput(
        lambda index: legacy_receive(state, buffer, wires[index]), flights
    )

    with obs.scoped():
        plane = RecordPlane()
        plane.party = "bench"
        plane.read_state = read_state()
        plane_rate, plane_records, plane_copied = _receive_throughput(
            lambda index: plane_receive(plane, wires[index]), flights
        )
    assert plane_records == legacy_records
    return {
        "payload_bytes": payload_bytes,
        "flights": flights,
        "legacy": {
            "records_per_sec": round(legacy_rate),
            "bytes_copied": legacy_copied,
        },
        "record_plane": {
            "records_per_sec": round(plane_rate),
            "bytes_copied": plane_copied,
        },
        "bytes_copied_ratio": round(plane_copied / legacy_copied, 3),
    }


def run(payload_bytes: int = PAYLOAD_BYTES, flights: int = FLIGHTS) -> dict:
    """Measure both paths and return the ``BENCH_record_plane.json`` report."""
    payload = bytes(range(256)) * (payload_bytes // 256)
    legacy_rate, legacy_records, legacy_copied = _throughput(
        lambda: legacy_drain(payload), payload_bytes, flights
    )
    # Scoped plane: the drain counters below reflect this run alone.
    with obs.scoped() as obs_plane:
        plane = RecordPlane()
        plane.party = "bench"
        plane_rate, plane_records, plane_copied = _throughput(
            lambda: plane_drain(plane, payload), payload_bytes, flights
        )
    drain_metrics = {
        "flights_drained": obs_plane.metrics.counter_value(
            "flights_drained", party="bench"),
        "bytes_drained": obs_plane.metrics.counter_value(
            "bytes_drained", party="bench"),
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "record_plane",
        "git": git_describe(),
        "payload_bytes": payload_bytes,
        "flights": flights,
        "records_per_flight": legacy_records // flights,
        "legacy": {
            "records_per_sec": round(legacy_rate),
            "bytes_copied": legacy_copied,
        },
        "record_plane": {
            "records_per_sec": round(plane_rate),
            "bytes_copied": plane_copied,
            "metrics": drain_metrics,
        },
        "bytes_copied_ratio": round(plane_copied / legacy_copied, 3),
        "receive": bench_receive(payload_bytes),
    }
