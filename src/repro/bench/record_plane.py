"""Record-plane framing microbenchmark (shared by pytest and the CLI).

Measures the coalesced :class:`repro.io.record_plane.RecordPlane` drain
path against the historical per-record path (eager fragmentation slice,
per-record ``Record.encode()``, join on drain) over identical plaintext
workloads, and reports records/sec plus bytes-copied counts. The report is
written to ``BENCH_record_plane.json`` by the benchmark test and by
``python -m repro bench``.
"""

from __future__ import annotations

import time

from repro import obs
from repro.bench.crypto import SCHEMA_VERSION, git_describe
from repro.io.record_plane import RecordPlane
from repro.wire.records import ContentType, MAX_FRAGMENT, Record

__all__ = ["run", "legacy_drain", "plane_drain"]

PAYLOAD_BYTES = 65536  # one 64 KiB app write -> a 4-record flight
FLIGHTS = 200


def legacy_drain(data: bytes) -> tuple[bytes, int]:
    """The pre-refactor path: eager slices, per-record encode, join on drain.

    Returns (wire bytes, payload bytes copied along the way).
    """
    copied = 0
    records: list[bytes] = []
    for offset in range(0, len(data), MAX_FRAGMENT):
        chunk = data[offset : offset + MAX_FRAGMENT]  # eager slice: copy 1
        copied += len(chunk)
        encoded = Record(ContentType.APPLICATION_DATA, chunk).encode()  # copy 2
        copied += len(encoded)
        records.append(encoded)
    wire = b"".join(records)  # copy 3
    copied += len(wire)
    return wire, copied


def plane_drain(plane: RecordPlane, data: bytes) -> tuple[bytes, int]:
    """The coalesced path: memoryview fragmentation, one copy per flight."""
    before = len(data)  # payload lands in the outbox bytearray: copy 1
    plane.queue_application_data(data)
    wire = plane.data_to_send()  # bytes(outbox): copy 2
    return wire, before + len(wire)


def _throughput(drain, payload_bytes: int, flights: int) -> tuple[float, int, int]:
    """Runs ``drain`` per flight; returns (records/sec, records, bytes copied)."""
    records = 0
    copied = 0
    start = time.perf_counter()
    for _ in range(flights):
        wire, flight_copied = drain()
        copied += flight_copied
        records += -(-payload_bytes // MAX_FRAGMENT)
        assert wire  # keep the drain honest
    elapsed = time.perf_counter() - start
    return records / elapsed, records, copied


def run(payload_bytes: int = PAYLOAD_BYTES, flights: int = FLIGHTS) -> dict:
    """Measure both paths and return the ``BENCH_record_plane.json`` report."""
    payload = bytes(range(256)) * (payload_bytes // 256)
    legacy_rate, legacy_records, legacy_copied = _throughput(
        lambda: legacy_drain(payload), payload_bytes, flights
    )
    # Scoped plane: the drain counters below reflect this run alone.
    with obs.scoped() as obs_plane:
        plane = RecordPlane()
        plane.party = "bench"
        plane_rate, plane_records, plane_copied = _throughput(
            lambda: plane_drain(plane, payload), payload_bytes, flights
        )
    drain_metrics = {
        "flights_drained": obs_plane.metrics.counter_value(
            "flights_drained", party="bench"),
        "bytes_drained": obs_plane.metrics.counter_value(
            "bytes_drained", party="bench"),
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "record_plane",
        "git": git_describe(),
        "payload_bytes": payload_bytes,
        "flights": flights,
        "records_per_flight": legacy_records // flights,
        "legacy": {
            "records_per_sec": round(legacy_rate),
            "bytes_copied": legacy_copied,
        },
        "record_plane": {
            "records_per_sec": round(plane_rate),
            "bytes_copied": plane_copied,
            "metrics": drain_metrics,
        },
        "bytes_copied_ratio": round(plane_copied / legacy_copied, 3),
    }
