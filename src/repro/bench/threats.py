"""Table 1 as executable scenarios: concrete attacks against TLS, mbTLS,
and the baselines, each returning whether the attack was *defended*.

Every row of the paper's threat/defense matrix maps to a function here.
The security test-suite asserts each outcome; the Table 1 benchmark prints
the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.baselines.shared_key import KeySharingService
from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRejected,
    MiddleboxRole,
    SessionEstablished,
)
from repro.core.drivers import MiddleboxService, open_mbtls, serve_mbtls
from repro.crypto.drbg import HmacDrbg
from repro.netsim.adversary import GlobalAdversary
from repro.netsim.driver import EngineDriver
from repro.netsim.network import Network
from repro.pki.authority import CertificateAuthority
from repro.pki.store import TrustStore
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveCode, Platform
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import ApplicationData, HandshakeComplete
from repro.wire.records import ContentType, RecordBuffer

__all__ = ["ThreatOutcome", "Scenario", "run_all_threats", "THREATS"]

SECRET_REQUEST = b"GET /secret-token-ABC123 HTTP/1.1\r\n\r\n"
SECRET_RESPONSE = b"the-response-payload-XYZ789"


@dataclass(frozen=True)
class ThreatOutcome:
    threat: str
    protocol: str
    defended: bool
    mechanism: str


class Scenario:
    """A client / middlebox-host / server network with a global adversary."""

    def __init__(self, seed: bytes) -> None:
        self.rng = HmacDrbg(seed)
        self.ca = CertificateAuthority("root", self.rng.fork(b"ca"))
        self.trust = TrustStore([self.ca.certificate])
        self.server_cred = self.ca.issue_credential("server")
        self.mbox_cred = self.ca.issue_credential("mbox-svc")
        self.network = Network()
        for name in ("client", "mbox", "server"):
            self.network.add_host(name)
        self.network.add_link("client", "mbox", 0.001)
        self.network.add_link("mbox", "server", 0.001)
        self.adversary = GlobalAdversary(self.network)
        self.client_received: list[bytes] = []
        self.server_received: list[bytes] = []

    # -- deployments -----------------------------------------------------

    def deploy_mbtls(
        self,
        enclave=None,
        on_secret=None,
        verifier=None,
        require_attestation: bool = False,
        allow_fallback: bool = True,
    ):
        service = MiddleboxService(
            self.network.host("mbox"),
            lambda: MiddleboxConfig(
                name="mbox-svc",
                tls=TLSConfig(
                    rng=self.rng.fork(b"mb"),
                    credential=self.mbox_cred,
                    enclave=enclave,
                    on_secret=on_secret,
                ),
                role=MiddleboxRole.CLIENT_SIDE,
            ),
        )
        self._serve_plain_tls()
        events = []

        def on_event(event):
            events.append(event)
            if isinstance(event, SessionEstablished):
                driver.send_application_data(SECRET_REQUEST)
            elif isinstance(event, ApplicationData):
                self.client_received.append(event.data)

        engine, driver = open_mbtls(
            self.network.host("client"),
            "server",
            MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=self.rng.fork(b"cli"),
                    trust_store=self.trust,
                    server_name="server",
                ),
                middlebox_trust_store=self.trust,
                require_middlebox_attestation=require_attestation,
                middlebox_attestation_verifier=verifier,
                allow_fallback=allow_fallback,
            ),
            on_event=on_event,
        )
        self.client_driver = driver
        self.network.sim.run()
        return engine, service, events

    def _serve_plain_tls(self, credential=None):
        credential = credential or self.server_cred

        def accept(socket, source):
            engine = TLSServerEngine(
                TLSConfig(rng=self.rng.fork(b"srv"), credential=credential)
            )
            engine.origin_label = "server"
            driver = EngineDriver(engine, socket)

            def on_event(event):
                if isinstance(event, ApplicationData):
                    self.server_received.append(event.data)
                    driver.send_application_data(SECRET_RESPONSE)

            driver.on_event = on_event
            driver.start()

        self.network.host("server").listen(443, accept)

    def run_plain_tls_fetch(self):
        self._serve_plain_tls()
        engine = TLSClientEngine(
            TLSConfig(
                rng=self.rng.fork(b"cli"), trust_store=self.trust, server_name="server"
            )
        )
        socket = self.network.host("client").connect("server", 443)

        def on_event(event):
            if isinstance(event, HandshakeComplete):
                driver.send_application_data(SECRET_REQUEST)
            elif isinstance(event, ApplicationData):
                self.client_received.append(event.data)

        driver = EngineDriver(engine, socket, on_event=on_event)
        driver.start()
        self.network.sim.run()
        return engine

    def _serve_mbtls(self, allow_fallback: bool = True):
        """An mbTLS server on ``server``: accepts announcements (§3.4)."""
        self.server_events: list[object] = []

        def on_event(engine, driver, event):
            self.server_events.append(event)
            if isinstance(event, ApplicationData):
                self.server_received.append(event.data)
                driver.send_application_data(SECRET_RESPONSE)

        serve_mbtls(
            self.network.host("server"),
            lambda: MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=self.rng.fork(b"srv"), credential=self.server_cred
                ),
                middlebox_trust_store=self.trust,
                allow_fallback=allow_fallback,
            ),
            on_event=on_event,
        )

    def open_mbtls_client(self, allow_fallback: bool = True):
        """Dial the mbTLS server from ``client`` and run to quiescence."""
        events: list[object] = []

        def on_event(event):
            events.append(event)
            if isinstance(event, SessionEstablished):
                driver.send_application_data(SECRET_REQUEST)
            elif isinstance(event, ApplicationData):
                self.client_received.append(event.data)

        engine, driver = open_mbtls(
            self.network.host("client"),
            "server",
            MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=self.rng.fork(b"cli"),
                    trust_store=self.trust,
                    server_name="server",
                ),
                middlebox_trust_store=self.trust,
                allow_fallback=allow_fallback,
            ),
            on_event=on_event,
        )
        self.client_driver = driver
        self.network.sim.run()
        return engine, events

    def deploy_server_side_middlebox(self) -> MiddleboxService:
        """A SERVER_SIDE middlebox on ``mbox`` fronting ``server`` (§3.4)."""
        return MiddleboxService(
            self.network.host("mbox"),
            lambda: MiddleboxConfig(
                name="mbox-svc",
                tls=TLSConfig(
                    rng=self.rng.fork(b"mb"), credential=self.mbox_cred
                ),
                role=MiddleboxRole.SERVER_SIDE,
                served_servers=frozenset({"server"}),
            ),
        )

    # -- adversary helpers -------------------------------------------------

    def attack_hop(self, a: str, b: str, adversary, sender: str):
        """Install a downgrade adversary on the a-b hop before it exists.

        Registered as a new-stream hook so the tap sees the very first
        bytes (the ClientHello) — a wiretap attached after connect would
        miss the negotiation it wants to attack.
        """
        from repro.netsim.downgrade import DowngradeTap

        tap = DowngradeTap(adversary, sender=sender)

        def hook(stream, x, y):
            if {x, y} == {a, b}:
                stream.add_tap(tap)

        self.network.on_new_stream(hook)
        return tap

    def app_records_between(self, a: str, b: str) -> list[bytes]:
        """Encoded APPLICATION_DATA records observed on the a-b stream."""
        wiretap = self.adversary.wiretap_between(a, b)
        buffer = RecordBuffer()
        buffer.feed(wiretap.recorder.all_bytes())
        return [
            record.encode()
            for record in buffer.pop_records()
            if record.content_type == ContentType.APPLICATION_DATA
        ]


# --------------------------------------------------------------------------
# Threat scenarios (one per Table 1 row, per protocol where meaningful).
# --------------------------------------------------------------------------


def wire_secrecy_tls() -> ThreatOutcome:
    scenario = Scenario(b"t1-tls")
    scenario.run_plain_tls_fetch()
    observed = scenario.adversary.observed_bytes()
    defended = SECRET_REQUEST not in observed and SECRET_RESPONSE not in observed
    assert scenario.client_received, "fetch must succeed for the test to count"
    return ThreatOutcome("wire data read by third party", "TLS", defended, "encryption")


def wire_secrecy_mbtls() -> ThreatOutcome:
    scenario = Scenario(b"t1-mbtls")
    scenario.deploy_mbtls()
    observed = scenario.adversary.observed_bytes()
    defended = SECRET_REQUEST not in observed and SECRET_RESPONSE not in observed
    assert scenario.client_received
    return ThreatOutcome("wire data read by third party", "mbTLS", defended, "encryption")


def mip_memory_read(use_enclave: bool) -> ThreatOutcome:
    """Can a malicious MIP read session keys from middlebox memory?"""
    scenario = Scenario(b"t2-%d" % use_enclave)
    attestation = AttestationService(scenario.rng.fork(b"ias"))
    platform = Platform(attestation, malicious=True)
    enclave = platform.launch_enclave(
        EnclaveCode(name="mbox-svc", version="1", image=b"code")
    )
    arena = platform.arena_for(enclave if use_enclave else None)
    scenario.deploy_mbtls(
        enclave=enclave if use_enclave else None, on_secret=arena.store
    )
    assert scenario.client_received
    visible = platform.dump_visible_secrets()
    defended = len(visible) == 0
    label = "mbTLS+SGX" if use_enclave else "mbTLS w/o enclave"
    return ThreatOutcome(
        "session keys read from middlebox memory by MIP",
        label,
        defended,
        "secure execution environment",
    )


def change_secrecy(protocol: str) -> ThreatOutcome:
    """Does an adversary learn whether the middlebox modified a record?

    The middlebox forwards data *unmodified*; the adversary compares the
    encoded APPLICATION_DATA records on the two hops. Identical bytes on
    both hops reveal "not modified" (the naive shared-key design); with
    per-hop keys the ciphertexts are unlinkable.
    """
    scenario = Scenario(b"t4-" + protocol.encode())
    if protocol == "mbtls":
        scenario.deploy_mbtls()
    else:  # shared-key baseline
        service = KeySharingService(scenario.network.host("mbox"))
        scenario._serve_plain_tls()
        engine = TLSClientEngine(
            TLSConfig(
                rng=scenario.rng.fork(b"cli"),
                trust_store=scenario.trust,
                server_name="server",
            )
        )
        socket = scenario.network.host("client").connect("server", 443)

        def on_event(event):
            if isinstance(event, HandshakeComplete):
                suite, key_block = engine.export_key_block()
                service.share_keys(suite.code, key_block)
                driver.send_application_data(SECRET_REQUEST)
            elif isinstance(event, ApplicationData):
                scenario.client_received.append(event.data)

        driver = EngineDriver(engine, socket, on_event=on_event)
        driver.start()
        scenario.network.sim.run()
    assert scenario.client_received
    hop1 = set(scenario.app_records_between("client", "mbox"))
    hop2 = set(scenario.app_records_between("mbox", "server"))
    defended = not (hop1 & hop2)
    label = "mbTLS" if protocol == "mbtls" else "shared-key baseline"
    return ThreatOutcome(
        "modification detectable by comparing hops", label, defended,
        "unique per-hop keys",
    )


def path_skip(protocol: str) -> ThreatOutcome:
    """Make a record skip the middlebox (P4).

    The adversary suppresses a fresh client record on the client-middlebox
    hop and injects the captured original directly on the middlebox-server
    hop. With a shared session key the server accepts it (the sequence
    numbers line up); with unique per-hop keys the MAC check fails.
    """
    from repro.netsim.adversary import DroppingTap

    scenario = Scenario(b"t5-" + protocol.encode())
    if protocol == "mbtls":
        scenario.deploy_mbtls()
        send_second = scenario.client_driver.send_application_data
    else:
        service = KeySharingService(scenario.network.host("mbox"))
        scenario._serve_plain_tls()
        engine = TLSClientEngine(
            TLSConfig(
                rng=scenario.rng.fork(b"cli"),
                trust_store=scenario.trust,
                server_name="server",
            )
        )
        socket = scenario.network.host("client").connect("server", 443)

        def on_event(event):
            if isinstance(event, HandshakeComplete):
                suite, key_block = engine.export_key_block()
                service.share_keys(suite.code, key_block)
                driver.send_application_data(SECRET_REQUEST)
            elif isinstance(event, ApplicationData):
                scenario.client_received.append(event.data)

        driver = EngineDriver(engine, socket, on_event=on_event)
        driver.start()
        scenario.network.sim.run()
        send_second = driver.send_application_data
    assert scenario.client_received
    server_count_before = len(scenario.server_received)

    # Suppress the next client data record on hop 1 (but the wiretap's
    # recorder, installed first, still captures it).
    hop1 = scenario.adversary.wiretap_between("client", "mbox")
    captured_before = len(hop1.recorder.captures)
    hop1.stream.add_tap(
        DroppingTap(should_drop=lambda data: data[:1] == b"\x17", limit=1)
    )
    send_second(b"SECOND-REQUEST")
    scenario.network.sim.run()
    suppressed = [
        capture.data
        for capture in hop1.recorder.captures[captured_before:]
        if capture.data[:1] == b"\x17"
    ]
    assert suppressed, "the second record must have been captured"
    assert len(scenario.server_received) == server_count_before

    # Inject the captured original straight onto the server hop.
    hop2 = scenario.adversary.wiretap_between("mbox", "server")
    hop2.inject_toward("server", suppressed[0])
    scenario.network.sim.run()
    delivered = len(scenario.server_received) > server_count_before
    defended = not delivered
    label = "mbTLS" if protocol == "mbtls" else "shared-key baseline"
    return ThreatOutcome(
        "record skips the middlebox (path integrity)", label, defended,
        "unique per-hop keys",
    )


def wire_tamper_mbtls() -> ThreatOutcome:
    """Flip ciphertext bits on the wire; the endpoint must never deliver
    corrupted plaintext."""
    scenario = Scenario(b"t6")
    engine, service, _ = scenario.deploy_mbtls()
    # Tamper with a fresh data record on the mbox-server hop (server-bound).
    wiretap = scenario.adversary.wiretap_between("mbox", "server")
    before = len(scenario.server_received)
    records = scenario.app_records_between("client", "mbox")
    tampered = bytearray(records[0])
    tampered[-1] ^= 0xFF
    wiretap.inject_toward("server", bytes(tampered))
    scenario.network.sim.run()
    # Nothing new delivered, and everything delivered so far is untampered.
    defended = len(scenario.server_received) == before and all(
        data == SECRET_REQUEST for data in scenario.server_received
    )
    return ThreatOutcome(
        "records modified/injected on the wire", "mbTLS", defended, "AEAD MACs"
    )


def replay_mbtls() -> ThreatOutcome:
    """Replay a legitimate record on its own hop: sequence binding rejects it."""
    scenario = Scenario(b"t7")
    scenario.deploy_mbtls()
    records = scenario.app_records_between("client", "mbox")
    wiretap = scenario.adversary.wiretap_between("client", "mbox")
    before = len(scenario.server_received)
    wiretap.inject_toward("mbox", records[0])
    scenario.network.sim.run()
    defended = len(scenario.server_received) == before
    return ThreatOutcome(
        "record replayed on its own hop", "mbTLS", defended,
        "sequence-bound AEAD",
    )


def impersonate_server() -> ThreatOutcome:
    """A server with a certificate from an untrusted CA must be rejected."""
    scenario = Scenario(b"t8")
    rogue_ca = CertificateAuthority("rogue", scenario.rng.fork(b"rogue"))
    rogue_cred = rogue_ca.issue_credential("server")
    scenario._serve_plain_tls(credential=rogue_cred)
    engine = TLSClientEngine(
        TLSConfig(
            rng=scenario.rng.fork(b"cli"), trust_store=scenario.trust,
            server_name="server",
        )
    )
    socket = scenario.network.host("client").connect("server", 443)
    driver = EngineDriver(engine, socket)
    driver.start()
    scenario.network.sim.run()
    defended = not engine.handshake_complete
    return ThreatOutcome(
        "key established with impostor server", "TLS/mbTLS", defended, "certificates"
    )


def impersonate_middlebox() -> ThreatOutcome:
    """A middlebox presenting an untrusted certificate must not get keys."""
    scenario = Scenario(b"t9")
    rogue_ca = CertificateAuthority("rogue", scenario.rng.fork(b"rogue"))
    scenario.mbox_cred = rogue_ca.issue_credential("mbox-svc")
    engine, service, events = scenario.deploy_mbtls()
    rejected = any(isinstance(event, MiddleboxRejected) for event in events)
    mbox_engine = service.drivers[0].engine
    defended = rejected and not mbox_engine.joined
    return ThreatOutcome(
        "middlebox operated by wrong MSP", "mbTLS", defended, "certificates"
    )


def wrong_middlebox_code() -> ThreatOutcome:
    """A malicious MIP substitutes the middlebox code image."""
    scenario = Scenario(b"t10")
    attestation = AttestationService(scenario.rng.fork(b"ias"))
    platform = Platform(attestation, malicious=True)
    good_code = EnclaveCode(name="mbox-svc", version="1", image=b"good")
    platform.plant_code_substitution(
        EnclaveCode(name="mbox-svc", version="1", image=b"evil")
    )
    enclave = platform.launch_enclave(good_code)
    verifier = attestation.verifier({good_code.measurement})
    engine, service, events = scenario.deploy_mbtls(
        enclave=enclave, verifier=verifier, require_attestation=True
    )
    rejected = any(isinstance(event, MiddleboxRejected) for event in events)
    defended = rejected and not service.drivers[0].engine.joined
    return ThreatOutcome(
        "wrong middlebox software (code identity)", "mbTLS", defended,
        "remote attestation",
    )


def forward_secrecy() -> ThreatOutcome:
    """Ephemeral key exchange: two sessions share no key material, and the
    server's long-term key never encrypts session data."""
    outcomes = []
    for run in range(2):
        scenario = Scenario(b"t11-%d" % run)
        engine = scenario.run_plain_tls_fetch()
        outcomes.append(engine.master_secret)
    defended = outcomes[0] != outcomes[1] and all(outcomes)
    return ThreatOutcome(
        "old sessions decrypted after key compromise", "TLS/mbTLS", defended,
        "ephemeral key exchange",
    )


def downgrade_strip_support() -> ThreatOutcome:
    """An on-path box strips the MiddleboxSupport extension (MAMI-style
    negotiation stripping). The middlebox quietly demotes to a relay, but
    the endpoints' Finished exchange hashes the *original* hello, so the
    session dies with an origin-attributed alert instead of silently
    proceeding without mbTLS."""
    from repro.netsim.downgrade import DowngradeAdversary

    scenario = Scenario(b"d1")
    scenario.attack_hop(
        "client", "mbox", DowngradeAdversary(b"d1", 0, "strip_support"), "client"
    )
    engine, service, events = scenario.deploy_mbtls()
    abort = engine.abort
    defended = (
        not engine.established
        and abort is not None
        and abort.alert == "decrypt_error"
        and abort.origin == "server"
    )
    return ThreatOutcome(
        "MiddleboxSupport stripped by on-path box", "mbTLS", defended,
        "handshake transcript binding",
    )


def downgrade_forge_announcement() -> ThreatOutcome:
    """An adversary injects a forged MiddleboxAnnouncement toward the
    server. The announcement alone confers nothing: the forger cannot
    complete the secondary handshake, so it is visibly rejected and the
    session establishes without it."""
    from repro.netsim.downgrade import DowngradeAdversary

    scenario = Scenario(b"d2")
    adversary = DowngradeAdversary(b"d2", 4, "forge_announcement")
    scenario.attack_hop("client", "server", adversary, "client")
    scenario._serve_mbtls()
    engine, events = scenario.open_mbtls_client()
    rejected = [e for e in events if isinstance(e, MiddleboxRejected)]
    rejected += [
        e for e in scenario.server_events if isinstance(e, MiddleboxRejected)
    ]
    defended = (
        bool(adversary.applied)
        and engine.established
        and engine.middleboxes == ()
        and bool(rejected)
        and SECRET_REQUEST in scenario.server_received
    )
    return ThreatOutcome(
        "forged middlebox announcement injected", "mbTLS", defended,
        "announcements confer nothing without a secondary handshake",
    )


def downgrade_replay_announcement() -> ThreatOutcome:
    """Replay the byte-identical announcement captured from a prior
    session. Session 1 runs a genuine server-side middlebox and the
    adversary records its announcement off the wire; session 2 replays
    those exact bytes — and the replayed announcer still cannot join."""
    from repro.netsim.downgrade import DowngradeAdversary, forged_announcement_bytes
    from repro.wire.mbtls import EncapsulatedRecord

    # Session 1: a genuine announcement crosses the mbox-server hop.
    capture = Scenario(b"d3-capture")
    capture.deploy_server_side_middlebox()
    capture._serve_mbtls()
    capture.open_mbtls_client()
    announced = []
    buffer = RecordBuffer()
    wiretap = capture.adversary.wiretap_between("mbox", "server")
    buffer.feed(
        b"".join(
            c.data for c in wiretap.recorder.captures if c.sender == "mbox"
        )
    )
    for record in buffer.pop_records():
        if record.content_type == ContentType.MBTLS_ENCAPSULATED:
            encap = EncapsulatedRecord.from_record(record)
            if encap.inner.content_type == ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT:
                announced.append(record.encode())
    # The announcement body is empty, so the capture is byte-identical to
    # what the replay adversary injects — a true prior-session replay.
    replay_is_faithful = bool(announced) and announced[0] == (
        forged_announcement_bytes(1)
    )

    # Session 2: no middlebox anywhere; the adversary replays the capture.
    scenario = Scenario(b"d3")
    adversary = DowngradeAdversary(b"d3", 5, "replay_announcement")
    scenario.attack_hop("client", "server", adversary, "client")
    scenario._serve_mbtls()
    engine, events = scenario.open_mbtls_client()
    rejected = [e for e in events if isinstance(e, MiddleboxRejected)]
    defended = (
        replay_is_faithful
        and bool(adversary.applied)
        and engine.established
        and engine.middleboxes == ()
        and bool(rejected)
    )
    return ThreatOutcome(
        "prior-session announcement replayed", "mbTLS", defended,
        "secondary handshake freshness",
    )


def downgrade_suppress_announcement() -> ThreatOutcome:
    """Delete a genuine middlebox's announcements so it looks unanswered.
    The legacy fallback (§3.4) means the session survives without the
    middlebox — the defense is that the downgrade is *accounted*: the
    middlebox records a ``session.fallback`` decision instead of the
    weaker path passing for the full-strength one."""
    from repro.netsim.downgrade import DowngradeAdversary

    with obs.scoped() as plane:
        scenario = Scenario(b"d4")
        adversary = DowngradeAdversary(b"d4", 6, "suppress_announcement")
        scenario.attack_hop("mbox", "server", adversary, "mbox")
        service = scenario.deploy_server_side_middlebox()
        scenario._serve_mbtls()
        engine, events = scenario.open_mbtls_client()
        mbox_engine = service.drivers[0].engine
        accounted = plane.metrics.counter_value(
            "session.fallback", party="mbox-svc", reason="announcement_unanswered"
        )
    defended = (
        bool(adversary.applied)
        and engine.established
        and engine.middleboxes == ()
        and mbox_engine.gave_up
        and accounted >= 1
        and SECRET_REQUEST in scenario.server_received
    )
    return ThreatOutcome(
        "middlebox announcements suppressed", "mbTLS", defended,
        "fallback accounting (session.fallback counter)",
    )


def downgrade_forced_fallback() -> ThreatOutcome:
    """Corrupt the middlebox's secondary handshake to force the client
    toward a weaker party set. With ``allow_fallback=False`` the endpoint
    refuses to establish on the degraded path: the attacker gets a dead
    session, not a quietly weakened one."""
    from repro.netsim.downgrade import DowngradeAdversary

    scenario = Scenario(b"d5")
    adversary = DowngradeAdversary(b"d5", 7, "corrupt_secondary")
    scenario.attack_hop("client", "mbox", adversary, "mbox")
    engine, service, events = scenario.deploy_mbtls(allow_fallback=False)
    abort = engine.abort
    defended = (
        bool(adversary.applied)
        and not engine.established
        and bool(engine.fallback_decisions)
        and abort is not None
        and abort.alert == "insufficient_security"
        and abort.origin == "client"
    )
    return ThreatOutcome(
        "forced fallback to a weaker party set", "mbTLS", defended,
        "fail-closed fallback policy (insufficient_security)",
    )


# -- mdTLS proxy-signature rows (arXiv 2306.03573) -----------------------


def _mdtls_chain(seed: bytes, now: float = 0.0):
    """A client / one-middlebox / server mdTLS trio with its own PKI.

    Returns ``(deployment, client, mbox, server, creds)`` where ``creds``
    maps subject name to its issued credential (for forging material).
    """
    from repro.baselines.mdtls import MdTLSDeployment

    rng = HmacDrbg(seed)
    ca = CertificateAuthority("root", rng.fork(b"ca"))
    trust = TrustStore([ca.certificate])
    creds = {
        name: ca.issue_credential(name, now=now)
        for name in ("client", "server", "mbox")
    }
    deployment = MdTLSDeployment(
        rng=rng.fork(b"deploy"),
        trust_store=trust,
        client_credential=creds["client"],
        server_credential=creds["server"],
        middleboxes=[("mbox", creds["mbox"])],
        now=now,
    )
    return (
        deployment,
        deployment.build_client(),
        deployment.build_middlebox(0),
        deployment.build_server(),
        creds,
    )


def _pump_mdtls(client, mbox, server, rewrite_c2s=None, rewrite_s2c=None):
    """Drive the trio to quiescence, optionally rewriting each direction."""
    client.start(), mbox.start(), server.start()
    for _ in range(16):
        progressed = False
        for data, deliver, rewrite in (
            (client.data_to_send(), mbox.receive_down, rewrite_c2s),
            (mbox.data_to_send_up(), server.receive_bytes, None),
            (server.data_to_send(), mbox.receive_up, None),
            (mbox.data_to_send_down(), client.receive_bytes, rewrite_s2c),
        ):
            if data:
                progressed = True
                try:
                    deliver(rewrite(data) if rewrite else data)
                except Exception:  # noqa: BLE001 - outcome read off .abort
                    pass
        if not progressed:
            break


def _rewrite_first_hello(data: bytes, rewrite_warrant):
    """Rewrite the delegation warrants riding a flight's ClientHello."""
    from repro.wire.extensions import ExtensionType
    from repro.wire.handshake import ClientHello, Handshake, HandshakeBuffer, HandshakeType
    from repro.wire.mdtls import DelegationCertificateExtension
    from repro.wire.records import Record

    buffer = RecordBuffer()
    buffer.feed(data)
    out = bytearray()
    for record in buffer.pop_records():
        if record.content_type == ContentType.HANDSHAKE:
            handshakes = HandshakeBuffer()
            handshakes.feed(record.payload)
            messages = handshakes.pop_messages()
            if messages and messages[0].msg_type == HandshakeType.CLIENT_HELLO:
                hello = ClientHello.decode_body(messages[0].body)
                extension = hello.find_extension(
                    ExtensionType.DELEGATION_CERTIFICATE
                )
                batch = DelegationCertificateExtension.from_extension(extension)
                forged = DelegationCertificateExtension(
                    tuple(rewrite_warrant(w) for w in batch.warrants)
                ).to_extension()
                hello = ClientHello(
                    random=hello.random,
                    session_id=hello.session_id,
                    cipher_suites=hello.cipher_suites,
                    extensions=tuple(
                        forged
                        if e.extension_type == ExtensionType.DELEGATION_CERTIFICATE
                        else e
                        for e in hello.extensions
                    ),
                    version=hello.version,
                )
                rebuilt = Handshake(
                    msg_type=HandshakeType.CLIENT_HELLO, body=hello.encode_body()
                ).encode() + b"".join(m.encode() for m in messages[1:])
                record = Record(
                    content_type=ContentType.HANDSHAKE,
                    payload=rebuilt,
                    version=record.version,
                )
        out += record.encode()
    return bytes(out)


def _rewrite_proxy_signatures(data: bytes, forge_signature):
    """Replace every s2c ProxySignature's signature bytes in a flight."""
    from repro.wire.handshake import Handshake, HandshakeBuffer, HandshakeType
    from repro.wire.mdtls import ProxySignature
    from repro.wire.records import Record

    buffer = RecordBuffer()
    buffer.feed(data)
    out = bytearray()
    for record in buffer.pop_records():
        if record.content_type == ContentType.HANDSHAKE:
            handshakes = HandshakeBuffer()
            handshakes.feed(record.payload)
            rebuilt = b""
            for message in handshakes.pop_messages():
                if message.msg_type == HandshakeType.MDTLS_PROXY_SIGNATURE:
                    signature = ProxySignature.decode_body(message.body)
                    message = Handshake(
                        msg_type=HandshakeType.MDTLS_PROXY_SIGNATURE,
                        body=ProxySignature(
                            middlebox=signature.middlebox,
                            direction=signature.direction,
                            signature=forge_signature(signature),
                        ).encode_body(),
                    )
                rebuilt += message.encode()
            record = Record(
                content_type=ContentType.HANDSHAKE,
                payload=rebuilt,
                version=record.version,
            )
        out += record.encode()
    return bytes(out)


def mdtls_expired_warrant() -> ThreatOutcome:
    """An honestly-signed but expired delegation warrant rides the hello.

    The forger re-issues the warrant with the client's own (compromised or
    coerced) delegator key, so the signature verifies — only the validity
    window has lapsed. Every warrant-checking party must still refuse it."""
    from dataclasses import replace as _replace

    from repro.wire.mdtls import DelegationCertificate

    deployment, client, mbox, server, creds = _mdtls_chain(b"md-t1", now=5000.0)

    def expire(warrant):
        stale = _replace(warrant, not_before=0.0, not_after=1.0)
        return _replace(
            stale, signature=creds["client"].private_key.sign(stale.tbs_bytes())
        )

    _pump_mdtls(
        client, mbox, server,
        rewrite_c2s=lambda data: _rewrite_first_hello(data, expire),
    )
    aborted = [
        party.abort for party in (mbox, server, client) if party.abort is not None
    ]
    defended = not client.established and any(
        abort.alert == "certificate_expired" for abort in aborted
    )
    return ThreatOutcome(
        "expired delegation warrant presented", "mdTLS", defended,
        "delegation validity window",
    )


def mdtls_unwarranted_proxy_signature() -> ThreatOutcome:
    """A proxy signature produced by a key the warrant does not bind."""
    deployment, client, mbox, server, creds = _mdtls_chain(b"md-t2")
    rng = HmacDrbg(b"md-t2-rogue")
    from repro.crypto.rsa import generate_rsa_key

    rogue = generate_rsa_key(1024, rng)
    _pump_mdtls(
        client, mbox, server,
        rewrite_s2c=lambda data: _rewrite_proxy_signatures(
            data, lambda sig: rogue.sign(b"rogue attestation of " + sig.middlebox.encode())
        ),
    )
    defended = (
        not client.established
        and client.abort is not None
        and client.abort.alert == "decrypt_error"
    )
    return ThreatOutcome(
        "proxy signature by unwarranted key", "mdTLS", defended,
        "warrant key binding",
    )


def mdtls_truncated_transcript_signature() -> ThreatOutcome:
    """The warranted key signs a *truncated* transcript: a middlebox (or an
    adversary holding its key) vouches for less than the full handshake.
    The client recomputes the hash over everything it sent and received, so
    coverage gaps are indistinguishable from forgery."""
    import hashlib

    from repro.wire.mdtls import ProxySignature

    deployment, client, mbox, server, creds = _mdtls_chain(b"md-t3")
    truncated = hashlib.sha256(b"prefix of the real transcript").digest()
    mbox_key = creds["mbox"].private_key
    _pump_mdtls(
        client, mbox, server,
        rewrite_s2c=lambda data: _rewrite_proxy_signatures(
            data,
            lambda sig: mbox_key.sign(
                ProxySignature.signed_payload(sig.direction, truncated)
            ),
        ),
    )
    defended = (
        not client.established
        and client.abort is not None
        and client.abort.alert == "decrypt_error"
    )
    return ThreatOutcome(
        "proxy signature over truncated transcript", "mdTLS", defended,
        "proxy-signature transcript binding",
    )


THREATS = [
    wire_secrecy_tls,
    wire_secrecy_mbtls,
    lambda: mip_memory_read(use_enclave=True),
    lambda: mip_memory_read(use_enclave=False),
    lambda: change_secrecy("mbtls"),
    lambda: change_secrecy("shared"),
    lambda: path_skip("mbtls"),
    lambda: path_skip("shared"),
    wire_tamper_mbtls,
    replay_mbtls,
    impersonate_server,
    impersonate_middlebox,
    wrong_middlebox_code,
    forward_secrecy,
    downgrade_strip_support,
    downgrade_forge_announcement,
    downgrade_replay_announcement,
    downgrade_suppress_announcement,
    downgrade_forced_fallback,
    mdtls_expired_warrant,
    mdtls_unwarranted_proxy_signature,
    mdtls_truncated_transcript_signature,
]


def run_all_threats() -> list[ThreatOutcome]:
    """Execute every Table 1 scenario."""
    return [threat() for threat in THREATS]
