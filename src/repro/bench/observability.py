"""The observed scenario behind ``python -m repro metrics``.

Runs a 2-middlebox mbTLS fetch with the whole observability plane armed —
a fresh :class:`~repro.obs.ObservabilityPlane` bound to the scenario's sim
clock, plus a :class:`~repro.netsim.adversary.GlobalAdversary` recording
every hop — and folds both views into one schema-versioned report.  The
adversary's captures are the *ground truth*: tests assert that the per-hop
sealed/opened record counts reported by the metrics registry equal what an
on-path observer actually saw, which is exactly the paper's §5 "what did
each hop do" accounting.

Everything is keyed off one seed and the sim clock, so two runs with the
same arguments produce byte-identical JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, MiddleboxRole
from repro.core.config import SessionEstablished
from repro.core.drivers import MiddleboxService, open_mbtls, serve_mbtls
from repro.crypto import pool as aead_pool
from repro.crypto.drbg import HmacDrbg
from repro.errors import DecodeError
from repro.netsim.adversary import GlobalAdversary
from repro.netsim.network import Network
from repro.tls.config import TLSConfig
from repro.tls.events import ApplicationData
from repro.wire.records import ContentType, RecordBuffer

__all__ = [
    "ObservedRun",
    "run_observed",
    "wire_record_counts",
    "hop_directions",
    "metrics_report",
]


@dataclass
class ObservedRun:
    """Everything an inspection of one observed scenario needs."""

    plane: obs.ObservabilityPlane
    adversary: GlobalAdversary
    network: Network
    path: list[str]
    established: bool
    degraded: bool
    reply: bytes
    seed: str
    flights: int
    request_size: int
    response_size: int
    middlebox_names: list[str] = field(default_factory=list)
    workers: int | None = None


def run_observed(
    seed: str = "repro-obs",
    middleboxes: int = 2,
    flights: int = 3,
    request_size: int = 512,
    response_size: int = 2048,
    latency: float = 0.005,
    workers: int | None = None,
) -> ObservedRun:
    """Run the instrumented fetch and return the collected evidence.

    With ``workers`` set, the AEAD process pool is installed for the
    duration of the scenario; pool-eligible flights (size the response so
    each one fragments into at least 8 records / 64 KiB) route their
    seal/open batches through the workers, and the ``crypto.pool.*``
    counters land on the scoped plane for the metrics cross-check.
    """
    if workers:
        aead_pool.configure(workers)
    try:
        return _run_observed(
            seed, middleboxes, flights, request_size, response_size,
            latency, workers,
        )
    finally:
        if workers:
            aead_pool.reset()


def _run_observed(
    seed: str,
    middleboxes: int,
    flights: int,
    request_size: int,
    response_size: int,
    latency: float,
    workers: int | None,
) -> ObservedRun:
    with obs.scoped() as plane:
        rng = HmacDrbg(seed.encode())
        from repro.bench.scenarios import Pki, build_chain_network

        pki = Pki(rng=rng.fork(b"pki"))
        mb_names = [f"mb{i}" for i in range(1, middleboxes + 1)]
        path = ["client", *mb_names, "server"]
        # The Network's Simulator binds the freshly-scoped plane's clock.
        network = build_chain_network([latency] * (len(path) - 1), path)
        adversary = GlobalAdversary(network)

        for index, name in enumerate(mb_names):
            cred = pki.credential(name)

            def make_config(name=name, cred=cred, index=index):
                return MiddleboxConfig(
                    name=name,
                    tls=TLSConfig(rng=rng.fork(b"mb%d" % index), credential=cred),
                    role=MiddleboxRole.CLIENT_SIDE,
                )

            MiddleboxService(network.host(name), make_config)

        response = b"R" * response_size
        request = b"Q" * request_size

        def make_server_config():
            return MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=rng.fork(b"server"), credential=pki.credential("server")
                ),
                middlebox_trust_store=pki.trust,
            )

        def on_server_event(engine, driver, event):
            if isinstance(event, ApplicationData):
                driver.send_application_data(response)

        serve_mbtls(network.host("server"), make_server_config,
                    on_event=on_server_event)

        state = {"established": False, "degraded": False, "sent": 0}
        received = bytearray()

        def send_next() -> None:
            state["sent"] += 1
            client_driver.send_application_data(request)

        def on_client_event(event) -> None:
            if isinstance(event, SessionEstablished):
                state["established"] = True
                state["degraded"] = bool(client_engine.bypassed_subchannels)
                send_next()
            elif isinstance(event, ApplicationData):
                received.extend(event.data)
                if len(received) >= state["sent"] * response_size:
                    if state["sent"] < flights:
                        send_next()
                    else:
                        client_driver.close()

        client_config = MbTLSEndpointConfig(
            tls=TLSConfig(
                rng=rng.fork(b"client"), trust_store=pki.trust,
                server_name="server",
            ),
            middlebox_trust_store=pki.trust,
        )
        client_engine, client_driver = open_mbtls(
            network.host("client"), "server", client_config,
            on_event=on_client_event,
        )
        network.sim.run()

        return ObservedRun(
            plane=plane,
            adversary=adversary,
            network=network,
            path=path,
            established=state["established"],
            degraded=state["degraded"],
            reply=bytes(received),
            seed=seed,
            flights=flights,
            request_size=request_size,
            response_size=response_size,
            middlebox_names=mb_names,
            workers=workers,
        )


def wire_record_counts(adversary: GlobalAdversary) -> dict[str, dict[str, int]]:
    """Ground truth: per directed hop, how many records of each content
    type actually crossed the wire (parsed from the adversary's captures)."""
    counts: dict[str, dict[str, int]] = {}
    for wiretap in adversary.wiretaps:
        host_a, host_b = wiretap.endpoints
        buffers: dict[str, RecordBuffer] = {}
        for capture in wiretap.recorder.captures:
            receiver = host_b if capture.sender == host_a else host_a
            buffer = buffers.setdefault(capture.sender, RecordBuffer())
            buffer.feed(capture.data)
            try:
                records = buffer.pop_records()
            except DecodeError:
                continue
            hop = counts.setdefault(f"{capture.sender}->{receiver}", {})
            for record in records:
                try:
                    label = ContentType(record.content_type).name.lower()
                except ValueError:
                    label = str(int(record.content_type))
                hop[label] = hop.get(label, 0) + 1
    return counts


def hop_directions(path: list[str]) -> list[dict[str, str]]:
    """For each directed adjacent hop: which metrics party seals the bytes
    entering the wire and which opens them on the far side.

    Endpoints seal/open on their single plane (party ``client``/``server``);
    a middlebox seals on the plane *facing* the receiver (``mbN:up`` toward
    the server, ``mbN:down`` toward the client) and opens on the plane
    facing the sender.
    """
    def seal_party(index: int, toward_server: bool) -> str:
        name = path[index]
        if index == 0:
            return name
        if index == len(path) - 1:
            return name
        return f"{name}:up" if toward_server else f"{name}:down"

    def open_party(index: int, toward_server: bool) -> str:
        name = path[index]
        if index == 0 or index == len(path) - 1:
            return name
        return f"{name}:down" if toward_server else f"{name}:up"

    directions = []
    for i in range(len(path) - 1):
        directions.append({
            "sender": path[i],
            "receiver": path[i + 1],
            "seal_party": seal_party(i, toward_server=True),
            "open_party": open_party(i + 1, toward_server=True),
        })
        directions.append({
            "sender": path[i + 1],
            "receiver": path[i],
            "seal_party": seal_party(i + 1, toward_server=False),
            "open_party": open_party(i, toward_server=False),
        })
    return directions


def metrics_report(run: ObservedRun, include_trace: bool = True) -> dict:
    """The schema-versioned JSON report for ``python -m repro metrics``.

    Deterministic by construction: every number is a pure function of the
    scenario seed (counters, sim-time spans, wire captures); nothing reads
    the wall clock.
    """
    metrics = run.plane.metrics
    wire = wire_record_counts(run.adversary)
    hops = []
    for direction in hop_directions(run.path):
        key = f"{direction['sender']}->{direction['receiver']}"
        hops.append({
            "hop": key,
            "wire_application_data": wire.get(key, {}).get("application_data", 0),
            "sealed_by": direction["seal_party"],
            "sealed_application_data": metrics.counter_value(
                "records_sealed", party=direction["seal_party"],
                type="application_data"),
            "opened_by": direction["open_party"],
            "opened_application_data": metrics.counter_value(
                "records_opened", party=direction["open_party"],
                type="application_data"),
        })
    report = {
        "schema_version": obs.SCHEMA_VERSION,
        "scenario": {
            "seed": run.seed,
            "path": run.path,
            "middleboxes": len(run.middlebox_names),
            "flights": run.flights,
            "request_size": run.request_size,
            "response_size": run.response_size,
            "established": run.established,
            "degraded": run.degraded,
            "reply_bytes": len(run.reply),
            "sim_seconds": run.network.sim.now,
        },
        "per_hop": hops,
        "wire": {hop: dict(sorted(types.items())) for hop, types in sorted(wire.items())},
        "metrics": metrics.snapshot(),
    }
    if run.workers:
        # Pool accounting for the cross-check: how many records each op
        # routed through the workers, and the per-chunk-slot task counts
        # (slots, not PIDs — slots are deterministic).
        report["pool"] = {
            "workers": run.workers,
            "records": {
                "seal": metrics.counter_value("crypto.pool.records", op="seal"),
                "open": metrics.counter_value("crypto.pool.records", op="open"),
            },
            "tasks": [
                {"chunk": labels["chunk"], "op": labels["op"], "value": value}
                for labels, value in metrics.iter_counters("crypto.pool.tasks")
            ],
        }
    if include_trace:
        report["trace"] = run.plane.tracer.snapshot()
    return report
