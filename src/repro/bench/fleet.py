"""Fleet-scale session churn: the deployment story at population scale.

The paper argues mbTLS for the places middleboxes actually live — CDN
edges and enterprise gateways terminating *populations* of sessions, not
one connection in a unit test.  This bench drives that story end to end:
a :class:`~repro.core.orchestrator.SessionOrchestrator` runs a sharded
fleet of supervised mbTLS sessions on one timer-wheel simulator, with

* **arrivals** drawn from the Table 2 client-site population
  (:mod:`repro.bench.population`) — each site keeps its measured latency
  to the wide-area core and its network type;
* **servers** drawn from the synthetic Alexa population
  (:mod:`repro.bench.alexa`), chosen rank-weighted (popular sites get
  proportionally more traffic) from the healthy subset;
* **resumption**: a warmup wave performs one cold full handshake per
  (shard, server), seeding the shard-wide client/middlebox/server
  resumption stores; the bulk wave then mostly resumes — the steady
  state of a real edge;
* **abandonment**: a per-network-type fraction of sessions closes
  shortly after establishing (flaky access networks give up more);
* **admission control and backpressure**: the orchestrator defers
  admissions while middlebox outboxes sit near their 4 MiB bound or the
  per-shard handshake-concurrency cap is hit, and *sheds* outright under
  combined overload.

With ``chaos`` enabled the same fleet runs under deterministic weather
(:func:`~repro.netsim.faults.chaos_schedule`): middlebox crash/restart
waves fail sessions over to a standby :class:`MiddleboxService` sharing
the primary's credential and session cache, server brownouts trigger
retry storms the per-``(shard, server)`` circuit breakers and retry
budgets must damp, and interrupted sessions redial — each arrival chain
gets a verdict (clean/recovered/degraded/failed/shed) in the
``BENCH_fleet_chaos.json`` report.

Everything virtual is deterministic: two runs with the same seed produce
byte-identical deterministic report cores (see :func:`deterministic_core`),
and any single shard can be replayed from ``(seed, shard_id)`` alone
(``only_shard=``) with a byte-identical shard ledger digest.  Wall-clock
throughput lands in the separate ``"wall"`` section.

``run_fleet()`` returns the report dict written to ``BENCH_fleet.json``
(or ``BENCH_fleet_chaos.json``) by ``python -m repro fleet``.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro import obs
from repro.bench.alexa import ServerDefect, SyntheticServer, generate_alexa_population
from repro.bench.crypto import git_describe
from repro.bench.population import ClientSite, generate_population
from repro.bench.scenarios import Pki
from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
)
from repro.core.drivers import (
    MiddleboxService,
    RetryPolicy,
    SessionSupervisor,
    serve_mbtls,
)
from repro.core.orchestrator import (
    FailoverGroup,
    ResiliencePolicy,
    SessionOrchestrator,
    Shard,
)
from repro.crypto.drbg import HmacDrbg
from repro.netsim.faults import FaultInjector, chaos_schedule
from repro.tls.config import TLSConfig
from repro.tls.events import ApplicationData

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "FLEET_CHAOS_SCHEMA_VERSION",
    "ABANDON_RATES",
    "FleetConfig",
    "quick_config",
    "full_config",
    "chaos_config",
    "run_fleet",
    "deterministic_core",
    "check_fleet_baseline",
]

FLEET_SCHEMA_VERSION = 1
FLEET_CHAOS_SCHEMA_VERSION = 1

# Fraction of established sessions abandoned (closed almost immediately)
# per client network type: flaky access networks give up more often than
# machines in racks.  The exact values are model knobs, not measurements.
ABANDON_RATES: dict[str, float] = {
    "Enterprise": 0.01,
    "University": 0.02,
    "Residential": 0.06,
    "Public": 0.10,
    "Mobile": 0.12,
    "Hosting": 0.01,
    "Colocation Services": 0.01,
    "Data Center": 0.01,
    "Uncategorized": 0.05,
}
_DEFAULT_ABANDON_RATE = 0.05

_REQUEST = b"GET / HTTP/1.1\r\nHost: fleet\r\n\r\n"


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for one fleet run.

    The defaults are the *full* run; :func:`quick_config` is the CI smoke
    configuration (still sized so peak concurrency crosses 10^4 — that is
    the acceptance bar, not a stretch goal).

    Non-abandoned sessions live ``session_lifetime`` virtual seconds after
    establishing.  Keeping ``arrival_ramp < session_lifetime`` means every
    long-lived session overlaps every other one, so peak concurrency
    approaches the number of non-abandoned arrivals by construction.

    With ``chaos`` set, each shard additionally runs the deterministic
    fault schedule from :func:`~repro.netsim.faults.chaos_schedule`
    (replayable from ``(seed, shard_id)``) against a primary/standby
    middlebox pair, and interrupted sessions redial with their remaining
    lifetime — unless the tail is shorter than
    ``chaos_min_redial_lifetime``, in which case the chain settles as
    *degraded* rather than redialing for nothing.
    """

    seed: bytes = b"fleet-bench"
    num_shards: int = 4
    sessions: int = 22_000  # bulk arrivals across the whole fleet
    servers_per_shard: int = 8
    arrival_start: float = 1.0  # bulk arrivals begin (after warmup settles)
    arrival_ramp: float = 10.0  # bulk arrivals spread over this window
    session_lifetime: float = 30.0  # virtual seconds established -> close
    warmup_lifetime: float = 3.0
    abandon_min: float = 0.2  # abandoned sessions close this soon ...
    abandon_max: float = 2.0  # ... to this late after establishing
    middlebox_every: int = 10  # every Nth site routes through the shard mbox
    max_inflight_per_shard: int = 256
    outbox_high_watermark: float = 0.75
    response_bytes: int = 512
    store_capacity: int = 4096
    chaos: bool = False
    chaos_horizon: float = 12.0  # fault windows land in its first 70%
    chaos_crash_waves: int = 2  # middlebox crash/restart waves per shard
    chaos_server_brownouts: int = 1
    chaos_loss_bursts: int = 2
    chaos_corruption_bursts: int = 1
    chaos_stalls: int = 1
    chaos_min_redial_lifetime: float = 0.05


def quick_config(seed: bytes = b"fleet-bench") -> FleetConfig:
    """The CI smoke run: half the arrivals, same 10^4 concurrency bar."""
    return FleetConfig(seed=seed, sessions=11_000)


def full_config(seed: bytes = b"fleet-bench") -> FleetConfig:
    return FleetConfig(seed=seed)


def chaos_config(seed: bytes = b"fleet-bench", quick: bool = False) -> FleetConfig:
    """The chaos-fleet run: fewer arrivals (faults multiply the event
    count per session), full fault schedule."""
    return FleetConfig(seed=seed, sessions=2_400 if quick else 8_000, chaos=True)


@dataclass(frozen=True)
class _Arrival:
    """One planned session: everything drawn before its clock tick fires."""

    time: float
    site: str
    server: str
    network_type: str
    via_middlebox: bool
    abandoned: bool
    lifetime: float
    phase: str  # "warmup" | "bulk" | "redial"


# ------------------------------------------------------------------- planning


def _site_routes_via_middlebox(site_index: int, config: FleetConfig) -> bool:
    return site_index % config.middlebox_every == 0


def _rank_cumulative(servers: list[SyntheticServer]) -> tuple[list[int], int]:
    """Cumulative integer weights for rank-weighted (Zipf-ish) choice."""
    total = 0
    cumulative: list[int] = []
    for server in servers:
        total += 1_000_000 // server.rank
        cumulative.append(total)
    return cumulative, total


def _shard_arrivals(
    shard: Shard,
    config: FleetConfig,
    shard_sites: list[tuple[ClientSite, bool]],
    servers: list[SyntheticServer],
    bulk_count: int,
) -> Iterator[_Arrival]:
    """Yield the shard's arrival schedule lazily, in time order.

    The RNG is the first fork taken from ``shard.rng`` — the build-time
    fork order is part of the per-shard replay contract — but each
    arrival's draws happen only when the pump asks for it, so a 10^5
    session fleet never materializes its whole plan up front.  Draw
    order per arrival is fixed (site, server, abandon, lifetime, jitter),
    and yielded times are nondecreasing by construction, which is what
    lets the pump chain one timer per arrival.
    """
    rng = shard.rng.fork(b"arrivals")
    cumulative, total = _rank_cumulative(servers)
    # Warmup: one cold handshake per server, from a middlebox-routed site
    # so both the TLS stores and the middlebox session store get seeded.
    warm_site, _ = next(
        (entry for entry in shard_sites if entry[1]), shard_sites[0]
    )
    for index, server in enumerate(servers):
        yield _Arrival(
            time=0.001 * index,
            site=warm_site.name,
            server=server.hostname,
            network_type=warm_site.network_type,
            via_middlebox=True,
            abandoned=False,
            lifetime=config.warmup_lifetime,
            phase="warmup",
        )
    spacing = config.arrival_ramp / max(bulk_count, 1)
    for index in range(bulk_count):
        site, via_middlebox = shard_sites[
            rng.randint_range(0, len(shard_sites) - 1)
        ]
        server = servers[bisect_right(cumulative, rng.randint_range(0, total - 1))]
        abandoned = rng.random() < ABANDON_RATES.get(
            site.network_type, _DEFAULT_ABANDON_RATE
        )
        lifetime = (
            config.abandon_min
            + rng.random() * (config.abandon_max - config.abandon_min)
            if abandoned
            else config.session_lifetime
        )
        yield _Arrival(
            time=config.arrival_start + spacing * (index + rng.random()),
            site=site.name,
            server=server.hostname,
            network_type=site.network_type,
            via_middlebox=via_middlebox,
            abandoned=abandoned,
            lifetime=lifetime,
            phase="bulk",
        )


# ------------------------------------------------------------------- building


@dataclass
class _ShardWorld:
    """Hooks the chaos plane needs back out of the topology builder."""

    failover: FailoverGroup | None = None
    #: server hostname -> re-register its listener (crash-restart hook).
    reserve: dict[str, Callable[[], None]] = field(default_factory=dict)


def _build_shard_world(
    shard: Shard,
    config: FleetConfig,
    pki: Pki,
    shard_sites: list[tuple[ClientSite, bool]],
    servers: list[SyntheticServer],
) -> _ShardWorld:
    """Hub topology: sites -> (mbcore ->) core -> servers, one per shard.

    Under chaos the middlebox leg grows a warm spare on the same path —
    ``site -> mbcore -> mbstandby -> core`` — so when ``mbcore`` crashes
    (packet forwarding survives; the processes die) new SYNs split at the
    activated standby instead.  The standby presents the primary's
    credential and shares the shard's middlebox session cache, so
    abbreviated secondary handshakes survive the failover.
    """
    network = shard.network
    network.add_host("core")
    network.add_host("mbcore")
    if config.chaos:
        network.add_host("mbstandby")
        network.add_link("mbcore", "mbstandby", 0.001)
        network.add_link("mbstandby", "core", 0.002)
    else:
        network.add_link("core", "mbcore", 0.002)
    for site, via_middlebox in shard_sites:
        network.add_host(site.name)
        network.add_link(
            site.name,
            "mbcore" if via_middlebox else "core",
            site.latency_to_core,
        )
    for server in servers:
        network.add_host(server.hostname)
        network.add_link("core", server.hostname, 0.010)

    mb_cred = pki.credential("mbcore")

    def make_mb_config() -> MiddleboxConfig:
        return MiddleboxConfig(
            name="mbcore",
            tls=TLSConfig(
                rng=shard.rng.fork(b"mb"),
                credential=mb_cred,
                session_cache=shard.middlebox_cache,
            ),
            role=MiddleboxRole.CLIENT_SIDE,
        )

    world = _ShardWorld()
    primary = MiddleboxService(network.host("mbcore"), make_mb_config)
    if config.chaos:
        standby = MiddleboxService(
            network.host("mbstandby"), make_mb_config, active=False
        )
        world.failover = FailoverGroup(shard.label, primary, standby)
        shard.register_failover(world.failover)
    else:
        shard.watch_service(primary)

    response = b"F" * config.response_bytes
    for server in servers:
        credential = pki.credential(server.hostname)

        def make_server_config(credential=credential) -> MbTLSEndpointConfig:
            return MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=shard.rng.fork(b"server"),
                    credential=credential,
                    session_cache=shard.server_cache,
                ),
                middlebox_trust_store=pki.trust,
            )

        def on_server_event(engine, driver, event) -> None:
            if isinstance(event, ApplicationData):
                driver.send_application_data(response)

        def serve(
            host=network.host(server.hostname),
            make_config=make_server_config,
            handler=on_server_event,
        ) -> None:
            serve_mbtls(host, make_config, on_event=handler)

        serve()
        world.reserve[server.hostname] = serve
    return world


def _session_factory(
    shard: Shard,
    arrival: _Arrival,
    pki: Pki,
    policy: RetryPolicy,
    orchestrator: SessionOrchestrator,
    resubmit: Callable[[_Arrival, float], None] | None = None,
):
    """Build the deferred-supervisor factory the orchestrator admits.

    ``resubmit`` (chaos only) is called with the arrival and remaining
    lifetime when an *established* session closes before its planned
    lifetime — a fault interrupted it; the chain redials.
    """

    def factory(shard_obj: Shard, orchestrator_hook):
        sim = shard.network.sim

        def make_client_config() -> MbTLSEndpointConfig:
            return MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=shard.rng.fork(b"client"),
                    trust_store=pki.trust,
                    server_name=arrival.server,
                    session_store=shard.client_sessions,
                ),
                middlebox_trust_store=pki.trust,
                middlebox_session_store=shard.middlebox_sessions,
            )

        def hook(supervisor: SessionSupervisor, state: str) -> None:
            remaining = None
            if (
                resubmit is not None
                and state == "closed"
                and supervisor.established_at is not None
            ):
                planned = supervisor.established_at + arrival.lifetime
                if sim.now < planned - 1e-6:
                    # A fault cut the session short of its planned life.
                    # Mark the open ledger entry *before* the orchestrator
                    # hook settles it, then redial the tail.
                    remaining = planned - sim.now
                    orchestrator.annotate(supervisor, interrupted=True)
            orchestrator_hook(supervisor, state)
            if state in ("established", "degraded"):
                # One request/response exercises the data plane (and the
                # middlebox outboxes backpressure watches), then the
                # session idles out its planned lifetime.
                supervisor.send_application_data(_REQUEST)
                sim.schedule(arrival.lifetime, supervisor.close)
            elif remaining is not None:
                resubmit(arrival, remaining)

        return SessionSupervisor(
            shard.network.host(arrival.site),
            arrival.server,
            make_client_config,
            start=False,
            on_state=hook,
            policy=policy,
        )

    return factory


# -------------------------------------------------------------------- running


def _launch_shard(
    orchestrator: SessionOrchestrator,
    shard: Shard,
    config: FleetConfig,
    pki: Pki,
    policy: RetryPolicy,
    shard_sites: list[tuple[ClientSite, bool]],
    servers: list[SyntheticServer],
    bulk_count: int,
) -> dict:
    """Arm the shard's lazy arrival pump; returns its live counters.

    One simulator event per arrival: the pump draws the next arrival from
    the generator only when the previous one fires, so the fleet never
    holds a full upfront plan (the old 10^5-entry list was the dominant
    setup cost and resident allocation of a big run).
    """
    counts = {"submitted": 0, "next_sid": 0}
    sim = orchestrator.sim

    def submit(arrival: _Arrival, sid: int | None = None) -> None:
        if sid is None:
            sid = counts["next_sid"]
            counts["next_sid"] += 1
        counts["submitted"] += 1

        def resubmit(prev: _Arrival, remaining: float) -> None:
            if remaining < config.chaos_min_redial_lifetime:
                return  # tail too short to redial; chain settles degraded
            submit(
                _Arrival(
                    time=sim.now,
                    site=prev.site,
                    server=prev.server,
                    network_type=prev.network_type,
                    via_middlebox=prev.via_middlebox,
                    abandoned=prev.abandoned,
                    lifetime=remaining,
                    phase="redial",
                ),
                sid=sid,
            )

        factory = _session_factory(
            shard, arrival, pki, policy, orchestrator,
            resubmit=resubmit if config.chaos else None,
        )
        orchestrator.submit(shard.id, factory, {
            "sid": sid,
            "phase": arrival.phase,
            "site": arrival.site,
            "server": arrival.server,
            "network_type": arrival.network_type,
            "via_middlebox": arrival.via_middlebox,
            "abandoned": arrival.abandoned,
        })

    arrivals = _shard_arrivals(shard, config, shard_sites, servers, bulk_count)

    def fire(arrival: _Arrival) -> None:
        submit(arrival)
        schedule_next()

    def schedule_next() -> None:
        arrival = next(arrivals, None)
        if arrival is None:
            return
        sim.schedule(
            max(arrival.time - sim.now, 0.0), lambda a=arrival: fire(a)
        )

    schedule_next()
    return counts


def _resilience_for(config: FleetConfig) -> ResiliencePolicy:
    """Chaos runs the production-style retry gate (breakers + budgets cut
    retry storms off); the clean bench replays a fixed arrival plan that
    must *all* land, so its congestion-induced redial bursts get the
    permissive gate — see :meth:`ResiliencePolicy.permissive`."""
    return ResiliencePolicy() if config.chaos else ResiliencePolicy.permissive()


def _run(config: FleetConfig, only_shard: int | None) -> tuple[
    SessionOrchestrator, int, dict[int, FaultInjector]
]:
    # Order-independent splits: every stream below derives from the seed
    # by personalization, never by fork order, so a solo-shard replay
    # rebuilds the exact same world without touching the other shards.
    pki = Pki(rng=HmacDrbg(config.seed, personalization=b"fleet/pki"))
    sites = generate_population(
        HmacDrbg(config.seed, personalization=b"fleet/population")
    )
    alexa = generate_alexa_population(
        HmacDrbg(config.seed, personalization=b"fleet/alexa")
    )
    servers = [
        server for server in alexa if server.defect is ServerDefect.NONE
    ][: config.servers_per_shard]

    # Issue every credential in one fixed order up front: certificate
    # bytes must not depend on which shards get built or which shard
    # dials first.
    pki.credential("mbcore")
    for server in servers:
        pki.credential(server.hostname)

    orchestrator = SessionOrchestrator(
        config.seed,
        num_shards=config.num_shards,
        max_inflight_per_shard=config.max_inflight_per_shard,
        outbox_high_watermark=config.outbox_high_watermark,
        store_capacity=config.store_capacity,
        resilience=_resilience_for(config),
    )
    policy = RetryPolicy()

    base = config.sessions // config.num_shards
    extra = config.sessions % config.num_shards
    shard_counts: list[dict] = []
    injectors: dict[int, FaultInjector] = {}
    for shard in orchestrator.shards:
        if only_shard is not None and shard.id != only_shard:
            continue
        shard_sites = [
            (site, _site_routes_via_middlebox(index, config))
            for index, site in enumerate(sites)
            if index % config.num_shards == shard.id
        ]
        world = _build_shard_world(shard, config, pki, shard_sites, servers)
        if config.chaos:
            plan = chaos_schedule(
                config.seed, shard.id,
                horizon=config.chaos_horizon,
                middlebox_hosts=("mbcore",),
                server_hosts=tuple(server.hostname for server in servers),
                crash_waves=config.chaos_crash_waves,
                server_brownouts=config.chaos_server_brownouts,
                loss_bursts=config.chaos_loss_bursts,
                corruption_bursts=config.chaos_corruption_bursts,
                stalls=config.chaos_stalls,
            )
            injector = FaultInjector(shard.network, plan)
            injector.on_crash("mbcore", world.failover.fail_over)
            injector.on_restart("mbcore", world.failover.fail_back)
            for hostname, serve_again in world.reserve.items():
                injector.on_restart(hostname, serve_again)
            injectors[shard.id] = injector
        bulk_count = base + (1 if shard.id < extra else 0)
        shard_counts.append(_launch_shard(
            orchestrator, shard, config, pki, policy,
            shard_sites, servers, bulk_count,
        ))
    # Arrivals are future sim events, so the orchestrator's settled
    # predicate is vacuously true until the clock runs: drive the whole
    # schedule by draining the event queue (every session closes by
    # timer, so the queue empties exactly when the fleet has settled).
    orchestrator.sim.run(max_events=100_000_000)
    orchestrator.drain(timeout=1.0)  # assert-settled backstop
    submitted = sum(counts["submitted"] for counts in shard_counts)
    return orchestrator, submitted, injectors


def _percentile(sorted_values: list[float], pct: float) -> float | None:
    """Exact nearest-rank percentile over the full (sorted) sample."""
    if not sorted_values:
        return None
    index = max(0, math.ceil(pct / 100.0 * len(sorted_values)) - 1)
    return sorted_values[index]


#: Counter families the report reads; the worker path ships exactly these
#: rows back from each shard process.
_FLEET_COUNTER_FAMILIES = (
    "fleet.admission_deferred",
    "fleet.sessions_admitted",
    "fleet.shed",
    "fleet.retry_denied",
    "fleet.breaker_state",
)


def _collect_counters(plane) -> dict[str, list[tuple[dict, int]]]:
    """Snapshot the report's counter families off an observability plane."""
    return {
        name: [
            (dict(labels), value)
            for labels, value in plane.metrics.iter_counters(name)
        ]
        for name in _FLEET_COUNTER_FAMILIES
    }


def _counter_sum(counters: dict, name: str, **labels) -> int:
    total = 0
    for entry_labels, value in counters.get(name, []):
        if all(entry_labels.get(key) == val for key, val in labels.items()):
            total += value
    return total


def _chaos_verdicts(entries: list[dict]) -> dict[str, int]:
    """Classify every arrival *chain* (root submission plus its redials).

    * ``shed`` — the chain's last submission was rejected by admission;
    * ``failed`` — the last attempt failed or aborted;
    * ``degraded`` — the chain ended interrupted (a tail too short to
      redial) or settled on a degraded path;
    * ``recovered`` — interrupted at least once, but a redial carried the
      session through its remaining lifetime;
    * ``clean`` — never touched by the weather.
    """
    chains: dict[tuple[int, int], list[dict]] = {}
    for entry in entries:
        sid = entry.get("sid")
        if sid is None:
            continue
        chains.setdefault((entry["shard"], sid), []).append(entry)
    verdicts = {"clean": 0, "recovered": 0, "degraded": 0, "failed": 0, "shed": 0}
    for chain in chains.values():
        chain.sort(key=lambda entry: entry["submitted_at"])
        final = chain[-1]
        outcome = final.get("outcome")
        if outcome == "shed":
            verdicts["shed"] += 1
        elif outcome in ("failed", "aborted"):
            verdicts["failed"] += 1
        elif final.get("interrupted"):
            verdicts["degraded"] += 1
        elif len(chain) > 1:
            verdicts["recovered"] += 1
        elif outcome == "degraded":
            verdicts["degraded"] += 1
        else:
            verdicts["clean"] += 1
    return verdicts


def _recovery_seconds(
    entries: list[dict], fault_logs: dict[int, list[dict]]
) -> float:
    """Virtual time back to steady state after the last damaging fault.

    Steady state = the last redial re-establishing; the clock starts at
    the latest structural fault (crash/restart) *preceding* it — later
    faults that interrupted nothing don't extend the recovery window.
    Returns 0.0 when the weather never forced a redial.
    """
    steady = None
    for entry in entries:
        if entry.get("phase") != "redial":
            continue
        if entry.get("outcome") not in ("established", "degraded"):
            continue
        latency = entry.get("handshake_seconds")
        if latency is None:
            continue
        at = entry["submitted_at"] + latency
        steady = at if steady is None else max(steady, at)
    if steady is None:
        return 0.0
    disruptions = [
        fault["time"]
        for log in fault_logs.values()
        for fault in log
        if fault["kind"] in ("crash", "restart") and fault["time"] <= steady
    ]
    if not disruptions:
        return 0.0
    return round(steady - max(disruptions), 9)


def _shard_worker(task: tuple[FleetConfig, int]) -> dict:
    """Run one shard in a worker process; returns its serializable slice.

    Shards are independent determinism domains (the per-shard replay
    contract run_fleet's ``only_shard`` mode already pins): a solo run of
    shard *i* produces a ledger byte-identical to shard *i*'s slice of a
    full serial run, so the parent can merge worker results into the
    same report the serial path builds — ledger digests included.
    """
    config, shard_id = task
    with obs.scoped() as plane:
        orchestrator, submitted, injectors = _run(config, only_shard=shard_id)
        shard = orchestrator.shards[shard_id]
        groups = shard.failover_groups
        return {
            "shard_id": shard_id,
            "label": shard.label,
            "ledger": shard.ledger,
            "digest": shard.digest(),
            "peak_live": shard.peak_live,
            "submitted": submitted,
            "virtual_seconds": orchestrator.sim.now,
            "events": orchestrator.sim._events_processed,
            "counters": _collect_counters(plane),
            "fault_log": [
                {"kind": fault.kind, "time": fault.time}
                for injector in injectors.values()
                for fault in injector.log
            ],
            "failover": {
                "activations": sum(group.failovers for group in groups),
                "restores": sum(group.failbacks for group in groups),
                "sessions_drained": sum(
                    group.sessions_drained for group in groups
                ),
            },
            "stuck_sessions": orchestrator.stuck_report()["stuck_sessions"],
        }


def _merge_worker_results(results: list[dict]) -> dict:
    """Fold per-shard worker slices into the serial path's data shape.

    ``peak_concurrent`` is the one quantity a merged run cannot
    reproduce: the serial number is the *instantaneous* cross-shard
    maximum, which no set of independent shard runs can recover, so the
    workers path reports the sum of per-shard peaks (an upper bound)
    and says so via ``concurrency.peak_basis``.
    """
    results = sorted(results, key=lambda r: r["shard_id"])
    per_shard = {result["label"]: result["digest"] for result in results}
    counters: dict[str, list[tuple[dict, int]]] = {}
    for result in results:
        for name, rows in result["counters"].items():
            counters.setdefault(name, []).extend(
                (dict(labels), value) for labels, value in rows
            )
    return {
        "entries": [
            entry for result in results for entry in result["ledger"]
        ],
        "submitted": sum(result["submitted"] for result in results),
        "peak_concurrent": sum(result["peak_live"] for result in results),
        "peak_basis": "per_shard_sum",
        "per_shard_peaks": {
            result["label"]: result["peak_live"] for result in results
        },
        "digests": {
            "shards": per_shard,
            "fleet": hashlib.sha256(
                "".join(per_shard[label] for label in sorted(per_shard)).encode()
            ).hexdigest(),
        },
        "virtual_seconds": max(
            result["virtual_seconds"] for result in results
        ),
        "events": sum(result["events"] for result in results),
        "counters": counters,
        "fault_logs": {
            result["shard_id"]: result["fault_log"] for result in results
        },
        "failover": {
            key: sum(result["failover"][key] for result in results)
            for key in ("activations", "restores", "sessions_drained")
        },
        "stuck_sessions": sum(result["stuck_sessions"] for result in results),
    }


def _run_serial(config: FleetConfig, only_shard: int | None) -> dict:
    """The in-process run; returns the same data shape as the merge."""
    with obs.scoped() as plane:
        orchestrator, submitted, injectors = _run(config, only_shard)
        groups = [
            group
            for shard in orchestrator.shards
            for group in shard.failover_groups
        ]
        return {
            "entries": [
                entry
                for shard in orchestrator.shards
                for entry in shard.ledger
            ],
            "submitted": submitted,
            "peak_concurrent": orchestrator.peak_concurrent,
            "peak_basis": "instantaneous",
            "per_shard_peaks": {
                shard.label: shard.peak_live
                for shard in orchestrator.shards
            },
            "digests": orchestrator.digests(),
            "virtual_seconds": orchestrator.sim.now,
            "events": orchestrator.sim._events_processed,
            "counters": _collect_counters(plane),
            "fault_logs": {
                shard_id: [
                    {"kind": fault.kind, "time": fault.time}
                    for fault in injector.log
                ]
                for shard_id, injector in sorted(injectors.items())
            },
            "failover": {
                "activations": sum(group.failovers for group in groups),
                "restores": sum(group.failbacks for group in groups),
                "sessions_drained": sum(
                    group.sessions_drained for group in groups
                ),
            },
            "stuck_sessions": orchestrator.stuck_report()["stuck_sessions"],
        }


def run_fleet(
    config: FleetConfig | None = None,
    quick: bool = False,
    only_shard: int | None = None,
    workers: int | None = None,
) -> dict:
    """Run the fleet and return the ``BENCH_fleet.json`` report dict.

    Args:
        config: run parameters (default: :func:`full_config`, or
            :func:`quick_config` when ``quick`` is set).  A config with
            ``chaos=True`` produces the ``BENCH_fleet_chaos.json`` shape
            instead (``bench: "fleet_chaos"`` plus a ``chaos`` section).
        quick: use the CI smoke configuration.
        only_shard: replay exactly one shard from ``(seed, shard_id)``;
            the other shards are created (their RNG split costs nothing)
            but get no world, no arrivals, and no weather.  The replayed
            shard's ledger digest matches the full-fleet run.
        workers: with >= 2, run each shard in its own worker process
            (one solo replay per shard, merged by
            :func:`_merge_worker_results`); per-shard ledger digests and
            the combined fleet digest are identical to a serial run.
            Incompatible with ``only_shard``.
    """
    if config is None:
        config = quick_config() if quick else full_config()
    started = time.perf_counter()
    if workers and workers >= 2:
        if only_shard is not None:
            raise ValueError("workers and only_shard are mutually exclusive")
        import multiprocessing

        pool = multiprocessing.get_context("fork").Pool(
            min(workers, config.num_shards)
        )
        try:
            results = pool.map(
                _shard_worker,
                [(config, shard_id) for shard_id in range(config.num_shards)],
            )
        finally:
            pool.terminate()
            pool.join()
        data = _merge_worker_results(results)
    else:
        data = _run_serial(config, only_shard)
    wall_seconds = time.perf_counter() - started

    entries = data["entries"]
    counters = data["counters"]
    established = [
        entry for entry in entries
        if entry.get("outcome") in ("established", "degraded")
    ]
    bulk = [entry for entry in established if entry.get("phase") == "bulk"]
    resumed = sum(1 for entry in bulk if entry.get("resumed"))
    latencies = sorted(
        entry["handshake_seconds"]
        for entry in established
        if entry.get("handshake_seconds") is not None
    )
    failed = [
        entry for entry in entries
        if entry.get("outcome") in ("failed", "aborted")
    ]

    report = {
        "schema_version": (
            FLEET_CHAOS_SCHEMA_VERSION if config.chaos else FLEET_SCHEMA_VERSION
        ),
        "bench": "fleet_chaos" if config.chaos else "fleet",
        "git": git_describe(),
        "quick": quick,
        "config": {
            "seed": config.seed.decode("latin-1"),
            "num_shards": config.num_shards,
            "sessions": config.sessions,
            "servers_per_shard": config.servers_per_shard,
            "arrival_ramp": config.arrival_ramp,
            "session_lifetime": config.session_lifetime,
            "middlebox_every": config.middlebox_every,
            "max_inflight_per_shard": config.max_inflight_per_shard,
            "chaos": config.chaos,
            "only_shard": only_shard,
            "workers": workers or None,
        },
        "sessions": {
            "submitted": data["submitted"],
            "admitted": _counter_sum(counters, "fleet.sessions_admitted"),
            "established": len(established),
            "resumed": resumed,
            "failed": len(failed),
            "abandoned_planned": sum(
                1 for entry in entries
                if entry.get("abandoned") and entry.get("phase") != "redial"
            ),
        },
        "concurrency": {
            "peak_concurrent": data["peak_concurrent"],
            "peak_basis": data["peak_basis"],
            "per_shard_peaks": data["per_shard_peaks"],
        },
        "handshake_seconds": {
            "count": len(latencies),
            "p50": _percentile(latencies, 50),
            "p99": _percentile(latencies, 99),
            "max": latencies[-1] if latencies else None,
        },
        "resumption": {
            "bulk_established": len(bulk),
            "resumed": resumed,
            "hit_rate": round(resumed / len(bulk), 6) if bulk else None,
        },
        "admission": {
            "deferred_capacity": _counter_sum(
                counters, "fleet.admission_deferred", reason="capacity"),
            "deferred_backpressure": _counter_sum(
                counters, "fleet.admission_deferred", reason="backpressure"),
            "shed": {
                reason: _counter_sum(counters, "fleet.shed", reason=reason)
                for reason in ("overload", "breaker_open")
            },
        },
        "digests": data["digests"],
        "sim": {
            "virtual_seconds": round(data["virtual_seconds"], 9),
            "events": data["events"],
        },
        "wall": {
            "seconds": round(wall_seconds, 3),
            "sessions_per_sec": (
                round(len(established) / wall_seconds, 1)
                if wall_seconds > 0 else None
            ),
        },
    }
    if config.chaos:
        per_shard_faults = {
            str(shard_id): _fault_kinds(log)
            for shard_id, log in sorted(data["fault_logs"].items())
        }
        faults_total: dict[str, int] = {}
        for kinds in per_shard_faults.values():
            for kind, count in kinds.items():
                faults_total[kind] = faults_total.get(kind, 0) + count
        report["chaos"] = {
            "horizon": config.chaos_horizon,
            "verdicts": _chaos_verdicts(entries),
            "faults": faults_total,
            "per_shard_faults": per_shard_faults,
            "failover": data["failover"],
            "retry_denied": {
                reason: _counter_sum(
                    counters, "fleet.retry_denied", reason=reason)
                for reason in ("breaker", "budget")
            },
            "breaker_transitions": {
                state: _counter_sum(
                    counters, "fleet.breaker_state", state=state)
                for state in ("open", "half_open", "closed")
            },
            "recovery_virtual_seconds": _recovery_seconds(
                entries, data["fault_logs"]),
            "stuck_sessions": data["stuck_sessions"],
        }
        report["digest"] = hashlib.sha256(
            json.dumps(
                deterministic_core(report), sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()
    return report


def _fault_kinds(log: list[dict]) -> dict[str, int]:
    kinds: dict[str, int] = {}
    for fault in log:
        kinds[fault["kind"]] = kinds.get(fault["kind"], 0) + 1
    return dict(sorted(kinds.items()))


def deterministic_core(report: dict) -> dict:
    """The report minus host-dependent fields (wall clock, git state).

    Two same-seed runs must produce byte-identical JSON for this core —
    the determinism tests serialize it with sorted keys and compare.
    """
    core = dict(report)
    core.pop("wall", None)
    core.pop("git", None)
    core.pop("digest", None)
    return core


def check_fleet_baseline(
    report: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Compare a fresh run against the committed ``BENCH_fleet.json``.

    Only machine-independent dimensions are gated — virtual handshake
    percentiles, the resumption hit-rate, simulator events per
    established session, and the failed count — so the gate behaves
    identically on a laptop and in CI.  Returns a list of problems
    (empty = pass); never rewrites the baseline.
    """
    problems: list[str] = []
    if report.get("schema_version") != baseline.get("schema_version"):
        problems.append(
            f"schema_version {report.get('schema_version')} != baseline "
            f"{baseline.get('schema_version')}"
        )
    for key in ("p50", "p99"):
        base = baseline.get("handshake_seconds", {}).get(key)
        new = report.get("handshake_seconds", {}).get(key)
        if base and new and new > base * (1.0 + tolerance):
            problems.append(
                f"virtual handshake {key} {new:.6f}s exceeds baseline "
                f"{base:.6f}s by more than {tolerance:.0%}"
            )
    base_hit = baseline.get("resumption", {}).get("hit_rate")
    new_hit = report.get("resumption", {}).get("hit_rate")
    if base_hit is not None and new_hit is not None and new_hit < base_hit - 0.05:
        problems.append(
            f"resumption hit-rate {new_hit:.4f} dropped more than 0.05 "
            f"below baseline {base_hit:.4f}"
        )
    base_established = max(baseline.get("sessions", {}).get("established", 0), 1)
    new_established = max(report.get("sessions", {}).get("established", 0), 1)
    base_events = baseline.get("sim", {}).get("events", 0) / base_established
    new_events = report.get("sim", {}).get("events", 0) / new_established
    if base_events and new_events > base_events * 1.3:
        problems.append(
            f"simulator events per established session {new_events:.1f} "
            f"exceeds baseline {base_events:.1f} by more than 30%"
        )
    failed = report.get("sessions", {}).get("failed", 0)
    if failed:
        problems.append(f"{failed} sessions failed (baseline run has none)")
    return problems
