"""Fleet-scale session churn: the deployment story at population scale.

The paper argues mbTLS for the places middleboxes actually live — CDN
edges and enterprise gateways terminating *populations* of sessions, not
one connection in a unit test.  This bench drives that story end to end:
a :class:`~repro.core.orchestrator.SessionOrchestrator` runs a sharded
fleet of supervised mbTLS sessions on one timer-wheel simulator, with

* **arrivals** drawn from the Table 2 client-site population
  (:mod:`repro.bench.population`) — each site keeps its measured latency
  to the wide-area core and its network type;
* **servers** drawn from the synthetic Alexa population
  (:mod:`repro.bench.alexa`), chosen rank-weighted (popular sites get
  proportionally more traffic) from the healthy subset;
* **resumption**: a warmup wave performs one cold full handshake per
  (shard, server), seeding the shard-wide client/middlebox/server
  resumption stores; the bulk wave then mostly resumes — the steady
  state of a real edge;
* **abandonment**: a per-network-type fraction of sessions closes
  shortly after establishing (flaky access networks give up more);
* **admission control and backpressure**: the orchestrator defers
  admissions while middlebox outboxes sit near their 4 MiB bound or the
  per-shard handshake-concurrency cap is hit.

Everything virtual is deterministic: two runs with the same seed produce
byte-identical deterministic report cores (see :func:`deterministic_core`),
and any single shard can be replayed from ``(seed, shard_id)`` alone
(``only_shard=``) with a byte-identical shard ledger digest.  Wall-clock
throughput lands in the separate ``"wall"`` section.

``run_fleet()`` returns the report dict written to ``BENCH_fleet.json``
by ``python -m repro fleet``.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_right
from dataclasses import dataclass

from repro import obs
from repro.bench.alexa import ServerDefect, SyntheticServer, generate_alexa_population
from repro.bench.crypto import git_describe
from repro.bench.population import ClientSite, generate_population
from repro.bench.scenarios import Pki
from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxRole,
)
from repro.core.drivers import (
    MiddleboxService,
    RetryPolicy,
    SessionSupervisor,
    serve_mbtls,
)
from repro.core.orchestrator import SessionOrchestrator, Shard
from repro.crypto.drbg import HmacDrbg
from repro.tls.config import TLSConfig
from repro.tls.events import ApplicationData

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "ABANDON_RATES",
    "FleetConfig",
    "quick_config",
    "full_config",
    "run_fleet",
    "deterministic_core",
]

FLEET_SCHEMA_VERSION = 1

# Fraction of established sessions abandoned (closed almost immediately)
# per client network type: flaky access networks give up more often than
# machines in racks.  The exact values are model knobs, not measurements.
ABANDON_RATES: dict[str, float] = {
    "Enterprise": 0.01,
    "University": 0.02,
    "Residential": 0.06,
    "Public": 0.10,
    "Mobile": 0.12,
    "Hosting": 0.01,
    "Colocation Services": 0.01,
    "Data Center": 0.01,
    "Uncategorized": 0.05,
}
_DEFAULT_ABANDON_RATE = 0.05

_REQUEST = b"GET / HTTP/1.1\r\nHost: fleet\r\n\r\n"


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for one fleet run.

    The defaults are the *full* run; :func:`quick_config` is the CI smoke
    configuration (still sized so peak concurrency crosses 10^4 — that is
    the acceptance bar, not a stretch goal).

    Non-abandoned sessions live ``session_lifetime`` virtual seconds after
    establishing.  Keeping ``arrival_ramp < session_lifetime`` means every
    long-lived session overlaps every other one, so peak concurrency
    approaches the number of non-abandoned arrivals by construction.
    """

    seed: bytes = b"fleet-bench"
    num_shards: int = 4
    sessions: int = 22_000  # bulk arrivals across the whole fleet
    servers_per_shard: int = 8
    arrival_start: float = 1.0  # bulk arrivals begin (after warmup settles)
    arrival_ramp: float = 10.0  # bulk arrivals spread over this window
    session_lifetime: float = 30.0  # virtual seconds established -> close
    warmup_lifetime: float = 3.0
    abandon_min: float = 0.2  # abandoned sessions close this soon ...
    abandon_max: float = 2.0  # ... to this late after establishing
    middlebox_every: int = 10  # every Nth site routes through the shard mbox
    max_inflight_per_shard: int = 256
    outbox_high_watermark: float = 0.75
    response_bytes: int = 512
    store_capacity: int = 4096


def quick_config(seed: bytes = b"fleet-bench") -> FleetConfig:
    """The CI smoke run: half the arrivals, same 10^4 concurrency bar."""
    return FleetConfig(seed=seed, sessions=11_000)


def full_config(seed: bytes = b"fleet-bench") -> FleetConfig:
    return FleetConfig(seed=seed)


@dataclass(frozen=True)
class _Arrival:
    """One planned session: everything drawn before the clock starts."""

    time: float
    site: str
    server: str
    network_type: str
    via_middlebox: bool
    abandoned: bool
    lifetime: float
    phase: str  # "warmup" | "bulk"


# ------------------------------------------------------------------- planning


def _site_routes_via_middlebox(site_index: int, config: FleetConfig) -> bool:
    return site_index % config.middlebox_every == 0


def _rank_cumulative(servers: list[SyntheticServer]) -> tuple[list[int], int]:
    """Cumulative integer weights for rank-weighted (Zipf-ish) choice."""
    total = 0
    cumulative: list[int] = []
    for server in servers:
        total += 1_000_000 // server.rank
        cumulative.append(total)
    return cumulative, total


def _plan_shard(
    shard: Shard,
    config: FleetConfig,
    shard_sites: list[tuple[ClientSite, bool]],
    servers: list[SyntheticServer],
    bulk_count: int,
) -> list[_Arrival]:
    """Draw the shard's whole arrival schedule from its own RNG.

    This is the first fork taken from ``shard.rng`` — the build-time fork
    order is part of the per-shard replay contract.
    """
    rng = shard.rng.fork(b"arrivals")
    cumulative, total = _rank_cumulative(servers)
    arrivals: list[_Arrival] = []
    # Warmup: one cold handshake per server, from a middlebox-routed site
    # so both the TLS stores and the middlebox session store get seeded.
    warm_site, _ = next(
        (entry for entry in shard_sites if entry[1]), shard_sites[0]
    )
    for index, server in enumerate(servers):
        arrivals.append(_Arrival(
            time=0.001 * index,
            site=warm_site.name,
            server=server.hostname,
            network_type=warm_site.network_type,
            via_middlebox=True,
            abandoned=False,
            lifetime=config.warmup_lifetime,
            phase="warmup",
        ))
    spacing = config.arrival_ramp / max(bulk_count, 1)
    for index in range(bulk_count):
        site, via_middlebox = shard_sites[
            rng.randint_range(0, len(shard_sites) - 1)
        ]
        server = servers[bisect_right(cumulative, rng.randint_range(0, total - 1))]
        abandoned = rng.random() < ABANDON_RATES.get(
            site.network_type, _DEFAULT_ABANDON_RATE
        )
        lifetime = (
            config.abandon_min
            + rng.random() * (config.abandon_max - config.abandon_min)
            if abandoned
            else config.session_lifetime
        )
        arrivals.append(_Arrival(
            time=config.arrival_start + spacing * (index + rng.random()),
            site=site.name,
            server=server.hostname,
            network_type=site.network_type,
            via_middlebox=via_middlebox,
            abandoned=abandoned,
            lifetime=lifetime,
            phase="bulk",
        ))
    return arrivals


# ------------------------------------------------------------------- building


def _build_shard_world(
    shard: Shard,
    config: FleetConfig,
    pki: Pki,
    shard_sites: list[tuple[ClientSite, bool]],
    servers: list[SyntheticServer],
) -> None:
    """Hub topology: sites -> (mbcore ->) core -> servers, one per shard."""
    network = shard.network
    network.add_host("core")
    network.add_host("mbcore")
    network.add_link("core", "mbcore", 0.002)
    for site, via_middlebox in shard_sites:
        network.add_host(site.name)
        network.add_link(
            site.name,
            "mbcore" if via_middlebox else "core",
            site.latency_to_core,
        )
    for server in servers:
        network.add_host(server.hostname)
        network.add_link("core", server.hostname, 0.010)

    mb_cred = pki.credential("mbcore")

    def make_mb_config() -> MiddleboxConfig:
        return MiddleboxConfig(
            name="mbcore",
            tls=TLSConfig(
                rng=shard.rng.fork(b"mb"),
                credential=mb_cred,
                session_cache=shard.middlebox_cache,
            ),
            role=MiddleboxRole.CLIENT_SIDE,
        )

    shard.watch_service(
        MiddleboxService(network.host("mbcore"), make_mb_config)
    )

    response = b"F" * config.response_bytes
    for server in servers:
        credential = pki.credential(server.hostname)

        def make_server_config(credential=credential) -> MbTLSEndpointConfig:
            return MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=shard.rng.fork(b"server"),
                    credential=credential,
                    session_cache=shard.server_cache,
                ),
                middlebox_trust_store=pki.trust,
            )

        def on_server_event(engine, driver, event) -> None:
            if isinstance(event, ApplicationData):
                driver.send_application_data(response)

        serve_mbtls(
            network.host(server.hostname),
            make_server_config,
            on_event=on_server_event,
        )


def _session_factory(shard: Shard, arrival: _Arrival, pki: Pki,
                     policy: RetryPolicy):
    """Build the deferred-supervisor factory the orchestrator admits."""

    def factory(shard_obj: Shard, orchestrator_hook):
        sim = shard.network.sim

        def make_client_config() -> MbTLSEndpointConfig:
            return MbTLSEndpointConfig(
                tls=TLSConfig(
                    rng=shard.rng.fork(b"client"),
                    trust_store=pki.trust,
                    server_name=arrival.server,
                    session_store=shard.client_sessions,
                ),
                middlebox_trust_store=pki.trust,
                middlebox_session_store=shard.middlebox_sessions,
            )

        def hook(supervisor: SessionSupervisor, state: str) -> None:
            orchestrator_hook(supervisor, state)
            if state in ("established", "degraded"):
                # One request/response exercises the data plane (and the
                # middlebox outboxes backpressure watches), then the
                # session idles out its planned lifetime.
                supervisor.send_application_data(_REQUEST)
                sim.schedule(arrival.lifetime, supervisor.close)

        return SessionSupervisor(
            shard.network.host(arrival.site),
            arrival.server,
            make_client_config,
            start=False,
            on_state=hook,
            policy=policy,
        )

    return factory


# -------------------------------------------------------------------- running


def _run(config: FleetConfig, only_shard: int | None) -> tuple[
    SessionOrchestrator, int
]:
    # Order-independent splits: every stream below derives from the seed
    # by personalization, never by fork order, so a solo-shard replay
    # rebuilds the exact same world without touching the other shards.
    pki = Pki(rng=HmacDrbg(config.seed, personalization=b"fleet/pki"))
    sites = generate_population(
        HmacDrbg(config.seed, personalization=b"fleet/population")
    )
    alexa = generate_alexa_population(
        HmacDrbg(config.seed, personalization=b"fleet/alexa")
    )
    servers = [
        server for server in alexa if server.defect is ServerDefect.NONE
    ][: config.servers_per_shard]

    # Issue every credential in one fixed order up front: certificate
    # bytes must not depend on which shards get built or which shard
    # dials first.
    pki.credential("mbcore")
    for server in servers:
        pki.credential(server.hostname)

    orchestrator = SessionOrchestrator(
        config.seed,
        num_shards=config.num_shards,
        max_inflight_per_shard=config.max_inflight_per_shard,
        outbox_high_watermark=config.outbox_high_watermark,
        store_capacity=config.store_capacity,
    )
    policy = RetryPolicy()

    base = config.sessions // config.num_shards
    extra = config.sessions % config.num_shards
    submitted = 0
    for shard in orchestrator.shards:
        if only_shard is not None and shard.id != only_shard:
            continue
        shard_sites = [
            (site, _site_routes_via_middlebox(index, config))
            for index, site in enumerate(sites)
            if index % config.num_shards == shard.id
        ]
        _build_shard_world(shard, config, pki, shard_sites, servers)
        bulk_count = base + (1 if shard.id < extra else 0)
        arrivals = _plan_shard(shard, config, shard_sites, servers, bulk_count)
        submitted += len(arrivals)
        for arrival in arrivals:
            factory = _session_factory(shard, arrival, pki, policy)
            info = {
                "phase": arrival.phase,
                "site": arrival.site,
                "server": arrival.server,
                "network_type": arrival.network_type,
                "via_middlebox": arrival.via_middlebox,
                "abandoned": arrival.abandoned,
            }
            orchestrator.sim.schedule(
                arrival.time,
                lambda shard_id=shard.id, factory=factory, info=info:
                    orchestrator.submit(shard_id, factory, info),
            )
    # Arrivals are future sim events, so the orchestrator's settled
    # predicate is vacuously true until the clock runs: drive the whole
    # schedule by draining the event queue (every session closes by
    # timer, so the queue empties exactly when the fleet has settled).
    orchestrator.sim.run(max_events=100_000_000)
    orchestrator.drain(timeout=1.0)  # assert-settled backstop
    return orchestrator, submitted


def _percentile(sorted_values: list[float], pct: float) -> float | None:
    """Exact nearest-rank percentile over the full (sorted) sample."""
    if not sorted_values:
        return None
    index = max(0, math.ceil(pct / 100.0 * len(sorted_values)) - 1)
    return sorted_values[index]


def _counter_sum(plane, name: str, **labels) -> int:
    total = 0
    for entry_labels, value in plane.metrics.iter_counters(name):
        if all(entry_labels.get(key) == val for key, val in labels.items()):
            total += value
    return total


def run_fleet(
    config: FleetConfig | None = None,
    quick: bool = False,
    only_shard: int | None = None,
) -> dict:
    """Run the fleet and return the ``BENCH_fleet.json`` report dict.

    Args:
        config: run parameters (default: :func:`full_config`, or
            :func:`quick_config` when ``quick`` is set).
        quick: use the CI smoke configuration.
        only_shard: replay exactly one shard from ``(seed, shard_id)``;
            the other shards are created (their RNG split costs nothing)
            but get no world and no arrivals.  The replayed shard's
            ledger digest matches the full-fleet run.
    """
    if config is None:
        config = quick_config() if quick else full_config()
    with obs.scoped() as plane:
        started = time.perf_counter()
        orchestrator, submitted = _run(config, only_shard)
        wall_seconds = time.perf_counter() - started

        entries = [
            entry
            for shard in orchestrator.shards
            for entry in shard.ledger
        ]
        established = [
            entry for entry in entries
            if entry.get("outcome") in ("established", "degraded")
        ]
        bulk = [entry for entry in established if entry.get("phase") == "bulk"]
        resumed = sum(1 for entry in bulk if entry.get("resumed"))
        latencies = sorted(
            entry["handshake_seconds"]
            for entry in established
            if entry.get("handshake_seconds") is not None
        )
        failed = [
            entry for entry in entries
            if entry.get("outcome") in ("failed", "aborted")
        ]

        deferred_capacity = _counter_sum(
            plane, "fleet.admission_deferred", reason="capacity")
        deferred_backpressure = _counter_sum(
            plane, "fleet.admission_deferred", reason="backpressure")
        admitted = _counter_sum(plane, "fleet.sessions_admitted")

    report = {
        "schema_version": FLEET_SCHEMA_VERSION,
        "bench": "fleet",
        "git": git_describe(),
        "quick": quick,
        "config": {
            "seed": config.seed.decode("latin-1"),
            "num_shards": config.num_shards,
            "sessions": config.sessions,
            "servers_per_shard": config.servers_per_shard,
            "arrival_ramp": config.arrival_ramp,
            "session_lifetime": config.session_lifetime,
            "middlebox_every": config.middlebox_every,
            "max_inflight_per_shard": config.max_inflight_per_shard,
            "only_shard": only_shard,
        },
        "sessions": {
            "submitted": submitted,
            "admitted": admitted,
            "established": len(established),
            "resumed": resumed,
            "failed": len(failed),
            "abandoned_planned": sum(
                1 for entry in entries if entry.get("abandoned")
            ),
        },
        "concurrency": {
            "peak_concurrent": orchestrator.peak_concurrent,
            "per_shard_peaks": {
                shard.label: shard.peak_live
                for shard in orchestrator.shards
            },
        },
        "handshake_seconds": {
            "count": len(latencies),
            "p50": _percentile(latencies, 50),
            "p99": _percentile(latencies, 99),
            "max": latencies[-1] if latencies else None,
        },
        "resumption": {
            "bulk_established": len(bulk),
            "resumed": resumed,
            "hit_rate": round(resumed / len(bulk), 6) if bulk else None,
        },
        "admission": {
            "deferred_capacity": deferred_capacity,
            "deferred_backpressure": deferred_backpressure,
        },
        "digests": orchestrator.digests(),
        "sim": {
            "virtual_seconds": round(orchestrator.sim.now, 9),
            "events": orchestrator.sim._events_processed,
        },
        "wall": {
            "seconds": round(wall_seconds, 3),
            "sessions_per_sec": (
                round(len(established) / wall_seconds, 1)
                if wall_seconds > 0 else None
            ),
        },
    }
    return report


def deterministic_core(report: dict) -> dict:
    """The report minus host-dependent fields (wall clock, git state).

    Two same-seed runs must produce byte-identical JSON for this core —
    the determinism tests serialize it with sorted keys and compare.
    """
    core = dict(report)
    core.pop("wall", None)
    core.pop("git", None)
    return core
