"""Bulk-crypto microbenchmarks: primitive throughput and the record pipeline.

Two measurements back the fast-path work in ``repro.crypto``:

* **Primitives** — seal/open throughput of each AEAD suite at a full-size
  TLS record (16 KiB), against a faithful re-implementation of the
  pre-fast-path scalar code (per-block ``encrypt_block`` CTR, per-block
  Shoup GHASH) so the speedup is measured, not remembered.
* **Chain** — end-to-end records/sec streaming application data through a
  client - middlebox - middlebox - server world on the deterministic
  network simulator, with every hop paying real AEAD costs. Run twice:
  once on the fast path and once with the bitsliced/aggregated thresholds
  forced off, which is the pre-fast-path data plane.

``run()`` returns the report dict written to ``BENCH_crypto.json``;
``check_regression()`` is the CI perf-smoke gate (machine-independent
ratios compared against the checked-in baseline).
"""

from __future__ import annotations

import subprocess
import time

from repro.crypto.aes import AES
from repro.crypto.chacha import ChaCha20Poly1305
from repro.crypto.gcm import AESGCM, _GHash

__all__ = [
    "SCHEMA_VERSION",
    "git_describe",
    "bench_primitives",
    "bench_chain",
    "run",
    "check_regression",
]

SCHEMA_VERSION = 2

RECORD_BYTES = 16384  # one max-size TLS record


def git_describe() -> str:
    """The repo's ``git describe`` (falls back to the short hash)."""
    for args in (
        ["git", "describe", "--tags", "--always", "--dirty"],
        ["git", "rev-parse", "--short", "HEAD"],
    ):
        try:
            out = subprocess.run(
                args, capture_output=True, text=True, timeout=10
            )
        except OSError:
            return "unknown"
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    return "unknown"


# --------------------------------------------------------------- legacy path


def _legacy_keystream_xor(
    aes: AES, nonce: bytes, data: bytes, initial_counter: int
) -> bytes:
    """The pre-fast-path CTR loop: one encrypt_block per 16-byte chunk."""
    encrypt = aes.encrypt_block
    out = bytearray(len(data))
    counter = initial_counter
    for offset in range(0, len(data), 16):
        block = encrypt(nonce + counter.to_bytes(4, "big"))
        chunk = data[offset : offset + 16]
        out[offset : offset + len(chunk)] = bytes(
            a ^ b for a, b in zip(chunk, block)
        )
        counter = (counter + 1) & 0xFFFFFFFF
    return bytes(out)


def _legacy_ghash(ghash: _GHash, aad: bytes, ciphertext: bytes) -> int:
    """The pre-fast-path GHASH: per-block Shoup multiply, no aggregation."""
    y = 0
    for chunk in (aad, ciphertext):
        for offset in range(0, len(chunk), 16):
            block = chunk[offset : offset + 16]
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            y = ghash._mul_h(y ^ int.from_bytes(block, "big"))
    lengths = (len(aad) * 8) << 64 | (len(ciphertext) * 8)
    return ghash._mul_h(y ^ lengths)


def _legacy_gcm_seal(gcm: AESGCM, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
    ciphertext = _legacy_keystream_xor(gcm._aes, nonce, plaintext, 2)
    s = _legacy_ghash(gcm._ghash, aad, ciphertext)
    j0 = gcm._aes.encrypt_block(nonce + (1).to_bytes(4, "big"))
    return ciphertext + (s ^ int.from_bytes(j0, "big")).to_bytes(16, "big")


# ---------------------------------------------------------------- primitives


class _scalar_chacha:
    """Force the pre-fast-path ChaCha code: per-block rounds, per-block Poly."""

    def __enter__(self):
        from repro.crypto import chacha

        self._saved = (chacha._VECTOR_THRESHOLD, chacha._POLY_CHUNK_BYTES)
        chacha._VECTOR_THRESHOLD = 1 << 60
        chacha._POLY_CHUNK_BYTES = 1 << 60
        return self

    def __exit__(self, *exc):
        from repro.crypto import chacha

        chacha._VECTOR_THRESHOLD, chacha._POLY_CHUNK_BYTES = self._saved
        return False


def _time_per_call(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


_SUITES = (
    ("aes-128-gcm", lambda: AESGCM(bytes(range(16)))),
    ("aes-256-gcm", lambda: AESGCM(bytes(range(32)))),
    ("chacha20-poly1305", lambda: ChaCha20Poly1305(bytes(range(32)))),
)


def bench_primitives(
    record_bytes: int = RECORD_BYTES, repeats: int = 10, legacy_repeats: int = 3
) -> list[dict]:
    """Seal/open throughput per suite, plus the scalar-path AES comparison."""
    nonce = b"\x00" * 11 + b"\x01"
    aad = b"\x00" * 13
    plaintext = bytes(range(256)) * (record_bytes // 256)
    results = []
    for name, factory in _SUITES:
        aead = factory()
        if isinstance(aead, AESGCM):
            # Steady-state throughput is the quantity under test: build the
            # aggregated GHASH tables up front instead of waiting for the
            # amortization gate to see _BULK_BUILD_BYTES of traffic.
            aead._ghash._byte_tables()
        sealed = aead.encrypt(nonce, plaintext, aad)
        seal_s = _time_per_call(lambda: aead.encrypt(nonce, plaintext, aad), repeats)
        open_s = _time_per_call(lambda: aead.decrypt(nonce, sealed, aad), repeats)
        entry = {
            "suite": name,
            "seal_ms_per_record": round(seal_s * 1000, 3),
            "open_ms_per_record": round(open_s * 1000, 3),
            "seal_mb_per_s": round(record_bytes / seal_s / 1e6, 2),
            "open_mb_per_s": round(record_bytes / open_s / 1e6, 2),
        }
        if isinstance(aead, AESGCM):
            legacy = _legacy_gcm_seal(aead, nonce, plaintext, aad)
            assert legacy == sealed, "legacy reimplementation diverged"
            legacy_s = _time_per_call(
                lambda: _legacy_gcm_seal(aead, nonce, plaintext, aad), legacy_repeats
            )
            entry["legacy_seal_ms_per_record"] = round(legacy_s * 1000, 3)
            entry["seal_speedup"] = round(legacy_s / seal_s, 2)
        elif isinstance(aead, ChaCha20Poly1305):
            # The scalar tier *is* the legacy code (the vectorized path
            # was bolted on beside it), so forcing the cutovers off
            # measures exactly the pre-fast-path implementation.
            with _scalar_chacha():
                legacy = aead.encrypt(nonce, plaintext, aad)
                assert legacy == sealed, "scalar ChaCha path diverged"
                legacy_s = _time_per_call(
                    lambda: aead.encrypt(nonce, plaintext, aad), legacy_repeats
                )
            entry["legacy_seal_ms_per_record"] = round(legacy_s * 1000, 3)
            entry["seal_speedup"] = round(legacy_s / seal_s, 2)
        results.append(entry)
    return results


# --------------------------------------------------------------------- chain


class _scalar_crypto:
    """Force the pre-fast-path code: scalar CTR, per-block GHASH, no batch."""

    def __enter__(self):
        from repro.tls.record_layer import ConnectionState

        self._saved = (
            AES._BITSLICE_THRESHOLD,
            _GHash._BULK_THRESHOLD,
            ConnectionState.protect_many,
            ConnectionState.unprotect_many,
        )
        AES._BITSLICE_THRESHOLD = 1 << 60
        _GHash._BULK_THRESHOLD = 1 << 60
        # None makes every batch-capable caller fall back to its
        # sequential per-record loop (they all test `is not None`).
        ConnectionState.protect_many = None
        ConnectionState.unprotect_many = None
        self._chacha = _scalar_chacha().__enter__()
        return self

    def __exit__(self, *exc):
        from repro.tls.record_layer import ConnectionState

        self._chacha.__exit__(*exc)
        (
            AES._BITSLICE_THRESHOLD,
            _GHash._BULK_THRESHOLD,
            ConnectionState.protect_many,
            ConnectionState.unprotect_many,
        ) = self._saved
        return False


def _run_chain_once(
    middlebox_count: int, flights: int, flight_bytes: int, seed: bytes
) -> float:
    """Streams ``flights`` flights client->server; returns data-phase seconds."""
    from repro.bench.scenarios import Pki, build_chain_network
    from repro.core.config import (
        MbTLSEndpointConfig,
        MiddleboxConfig,
        MiddleboxRole,
        SessionEstablished,
    )
    from repro.core.drivers import MiddleboxService, open_mbtls, serve_mbtls
    from repro.crypto.drbg import HmacDrbg
    from repro.tls.config import TLSConfig
    from repro.tls.events import ApplicationData

    rng = HmacDrbg(seed)
    pki = Pki(rng=rng.fork(b"pki"))
    hop_names = [f"hop{i}" for i in range(1, middlebox_count + 1)]
    network = build_chain_network([0.0] * (middlebox_count + 1))

    for index, host in enumerate(hop_names):
        mb_cred = pki.credential(f"mb-{host}")

        def make_config(host=host, mb_cred=mb_cred, index=index):
            return MiddleboxConfig(
                name=f"mb-{host}",
                tls=TLSConfig(rng=rng.fork(b"mb%d" % index), credential=mb_cred),
                role=MiddleboxRole.CLIENT_SIDE,
            )

        MiddleboxService(network.host(host), make_config)

    received = [0]

    def make_server_config():
        return MbTLSEndpointConfig(
            tls=TLSConfig(rng=rng.fork(b"server"), credential=pki.credential("server")),
            middlebox_trust_store=pki.trust,
        )

    def on_server_event(engine, driver, event):
        if isinstance(event, ApplicationData):
            received[0] += len(event.data)

    serve_mbtls(network.host("server"), make_server_config, on_event=on_server_event)

    established = [False]

    def on_client_event(event):
        if isinstance(event, SessionEstablished):
            established[0] = True

    config = MbTLSEndpointConfig(
        tls=TLSConfig(
            rng=rng.fork(b"client"), trust_store=pki.trust, server_name="server"
        ),
        middlebox_trust_store=pki.trust,
    )
    _engine, driver = open_mbtls(
        network.host("client"), "server", config, on_event=on_client_event
    )
    network.sim.run()
    if not established[0]:
        raise RuntimeError("chain bench: session did not establish")

    payload = bytes(range(256)) * (flight_bytes // 256)
    start = time.perf_counter()
    for _ in range(flights):
        driver.send_application_data(payload)
        network.sim.run()
    elapsed = time.perf_counter() - start
    if received[0] != flights * flight_bytes:
        raise RuntimeError("chain bench: server missed data")
    return elapsed


def _party_record_counts(plane) -> dict:
    """Per-party sealed/opened record totals from an observability plane."""
    parties: dict[str, dict[str, int]] = {}
    for family in ("sealed", "opened"):
        for labels, value in plane.metrics.iter_counters(f"records_{family}"):
            party = labels.get("party", "")
            entry = parties.setdefault(party, {"sealed": 0, "opened": 0})
            entry[family] += value
    return dict(sorted(parties.items()))


def bench_chain(
    middlebox_count: int = 2,
    flights: int = 8,
    flight_bytes: int = 64 * RECORD_BYTES,
    record_bytes: int = RECORD_BYTES,
    workers: int | None = None,
) -> dict:
    """End-to-end records/sec through the middlebox chain, fast vs scalar.

    With ``workers`` set, a third leg re-runs the fast path with the AEAD
    process pool installed (the CI ``perf-multicore`` job pins
    ``--workers 4``); pooled wire bytes are bit-identical to serial by
    construction, which the pool equality tests pin separately.
    """
    from repro import obs

    records = flights * (flight_bytes // record_bytes)
    # A fresh scoped plane makes the per-party record accounting below a
    # pure function of this bench run, not whatever ran before it.
    with obs.scoped() as plane:
        fast_s = _run_chain_once(middlebox_count, flights, flight_bytes, b"chain-fast")
    with _scalar_crypto():
        # A fraction of the fast run keeps the scalar leg under control;
        # rates are per-second so the comparison is unaffected.
        scalar_flights = max(1, flights // 4)
        with obs.scoped():
            scalar_s = _run_chain_once(
                middlebox_count, scalar_flights, flight_bytes, b"chain-scalar"
            )
    fast_rate = records / fast_s
    scalar_rate = (scalar_flights * (flight_bytes // record_bytes)) / scalar_s
    result = {
        "middleboxes": middlebox_count,
        "records": records,
        "record_bytes": record_bytes,
        "records_per_sec": round(fast_rate, 1),
        "scalar_records_per_sec": round(scalar_rate, 1),
        "speedup": round(fast_rate / scalar_rate, 2),
        "party_records": _party_record_counts(plane),
    }
    if workers and workers >= 2:
        from repro.crypto import pool as aead_pool

        aead_pool.configure(workers)
        try:
            with obs.scoped() as pool_plane:
                pool_s = _run_chain_once(
                    middlebox_count, flights, flight_bytes, b"chain-pool"
                )
        finally:
            aead_pool.reset()
        pool_rate = records / pool_s
        pooled_records = sum(
            value
            for _labels, value in pool_plane.metrics.iter_counters(
                "crypto.pool.records"
            )
        )
        result["pool"] = {
            "workers": workers,
            "records_per_sec": round(pool_rate, 1),
            "speedup_vs_serial": round(pool_rate / fast_rate, 2),
            "pooled_records": pooled_records,
        }
    return result


# -------------------------------------------------------------------- report


def run(quick: bool = False, workers: int | None = None) -> dict:
    """The full crypto bench report (written to ``BENCH_crypto.json``)."""
    if quick:
        primitives = bench_primitives(repeats=3, legacy_repeats=1)
        chain = bench_chain(flights=4, workers=workers)
    else:
        primitives = bench_primitives()
        chain = bench_chain(workers=workers)
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "crypto",
        "git": git_describe(),
        "quick": quick,
        "record_bytes": RECORD_BYTES,
        "primitives": primitives,
        "chain": chain,
    }


def check_regression(
    fresh: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Compare a fresh report against the checked-in baseline.

    Absolute MB/s numbers vary with the host, so the gate compares the
    machine-independent *ratios* — each suite's seal speedup over its
    scalar path and the chain speedup — and additionally enforces the
    hard floors from the fast-path acceptance criteria (3x AES seal, 4x
    ChaCha seal, 2x chain, and — when the fresh report carries a pooled
    chain leg with >= 4 workers — 2x pooled records/sec vs serial).
    Returns a list of failure descriptions; empty means pass.
    """
    problems = []
    base_by_suite = {p["suite"]: p for p in baseline.get("primitives", [])}
    for entry in fresh["primitives"]:
        speedup = entry.get("seal_speedup")
        if speedup is None:
            continue
        floor = 4.0 if entry["suite"] == "chacha20-poly1305" else 3.0
        if speedup < floor:
            problems.append(
                f"{entry['suite']}: seal speedup {speedup}x below the "
                f"{floor:g}x floor"
            )
        base = base_by_suite.get(entry["suite"], {}).get("seal_speedup")
        if base and speedup < base * (1 - tolerance):
            problems.append(
                f"{entry['suite']}: seal speedup {speedup}x regressed >"
                f"{tolerance:.0%} from baseline {base}x"
            )
    chain = fresh["chain"]
    if chain["speedup"] < 2.0:
        problems.append(
            f"chain: speedup {chain['speedup']}x below the 2x floor"
        )
    base_chain = baseline.get("chain", {}).get("speedup")
    if base_chain and chain["speedup"] < base_chain * (1 - tolerance):
        problems.append(
            f"chain: speedup {chain['speedup']}x regressed >"
            f"{tolerance:.0%} from baseline {base_chain}x"
        )
    # The pooled floor keys off the *fresh* report: the single-core
    # perf-smoke job runs without --workers and produces no pool leg,
    # while the perf-multicore job pins --workers 4 on a multi-core
    # runner and must clear 2x vs its own serial leg.
    pool = chain.get("pool")
    if pool and pool.get("workers", 0) >= 4:
        if pool["speedup_vs_serial"] < 2.0:
            problems.append(
                f"chain pool: {pool['workers']}-worker speedup "
                f"{pool['speedup_vs_serial']}x below the 2x floor"
            )
        if pool.get("pooled_records", 1) <= 0:
            problems.append("chain pool: no records went through the pool")
    return problems
