"""Benchmark harness: populations, topologies, scenario runners, renderers."""

from repro.bench.alexa import (
    PAPER_COUNTS,
    ServerDefect,
    SyntheticServer,
    generate_alexa_population,
)
from repro.bench.cpu import CONFIGURATIONS, HandshakeCpu, measure_all, measure_configuration
from repro.bench.population import NETWORK_TYPE_COUNTS, ClientSite, generate_population
from repro.bench.scenarios import FetchResult, Pki, build_chain_network, run_fetch
from repro.bench.tables import render_series, render_table
from repro.bench.threats import THREATS, Scenario, ThreatOutcome, run_all_threats
from repro.bench.topologies import ONE_WAY_LATENCY, REGIONS, build_wan, path_permutations

__all__ = [
    "PAPER_COUNTS",
    "ServerDefect",
    "SyntheticServer",
    "generate_alexa_population",
    "CONFIGURATIONS",
    "HandshakeCpu",
    "measure_all",
    "measure_configuration",
    "NETWORK_TYPE_COUNTS",
    "ClientSite",
    "generate_population",
    "FetchResult",
    "Pki",
    "build_chain_network",
    "run_fetch",
    "render_series",
    "render_table",
    "THREATS",
    "Scenario",
    "ThreatOutcome",
    "run_all_threats",
    "ONE_WAY_LATENCY",
    "REGIONS",
    "build_wan",
    "path_permutations",
]
