"""Rendering helpers: print benchmark output shaped like the paper's
tables and figures (rows/series, not graphics)."""

from __future__ import annotations

__all__ = ["render_table", "render_series"]


def render_table(title: str, headers: list[str], rows: list[list[object]]) -> str:
    """Monospace table with a title rule."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(title: str, series: dict[str, list[tuple[object, float]]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """One line per (series, x) point — the data behind a figure."""
    lines = [title, "=" * len(title), f"{x_label} -> {y_label}"]
    for name, points in series.items():
        for x, y in points:
            lines.append(f"  {name:40s} {str(x):>10s}  {y:12.4f}")
    return "\n".join(lines)
