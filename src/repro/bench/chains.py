"""Chain comparison harness for the sans-IO implementation matrix.

The Figure 5/6 harnesses drive the engine-based protocols (TLS, mbTLS,
split TLS) over the simulated network.  The sans-IO baselines — and the
mdTLS proxy-signature party in particular — live on the
:class:`~repro.io.connection.Connection` plane instead, so this module
measures the three quantities the paper's comparison figures need
directly on that plane:

* **handshake CPU** — process time from ``start()`` to both endpoints
  established, adversary-free;
* **flight count** — how many endpoint-originated batches of bytes cross
  the chain before establishment (mdTLS's claim: proxy signatures ride
  the existing four flights, unlike mbTLS's secondary handshakes which
  add encapsulated traffic inside the same flights);
* **chain throughput** — application bytes delivered end-to-end per CPU
  second through the established chain, including every per-hop
  re-encryption a middlebox performs.

Implementations are addressed by the same case names the fuzz corpus and
the connection contract pin, so ``measure_matrix`` stays in lockstep with
the implementations under test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.fuzzing import build_parties
from repro.tls.events import ApplicationData

__all__ = ["COMPARE_CASES", "ChainMeasurement", "measure_case", "measure_matrix"]

#: mdTLS against mbTLS and the five comparison baselines, middlebox-free
#: and one-middlebox chains alike.
COMPARE_CASES = (
    "tls",
    "mbtls",
    "mbtls_middlebox",
    "mctls",
    "split_tls",
    "splice_relay",
    "shared_key",
    "mdtls",
    "mdtls_middlebox",
)

_MAX_ROUNDS = 60


@dataclass(frozen=True)
class ChainMeasurement:
    """One implementation's handshake and data-plane costs."""

    case: str
    handshake_cpu_seconds: float
    flights: int
    throughput_bytes_per_second: float


def _pump_round(parties, sink: list) -> tuple[bool, int]:
    """One full c2s + s2c pass; returns (progressed, endpoint_flights).

    Only endpoint-originated drains count as flights — middlebox
    forwarding continues the same flight rather than starting one.
    """
    left, middles, right = parties.left, parties.middles, parties.right
    progressed = False
    flights = 0
    data = left.data_to_send()
    if data:
        progressed, flights = True, flights + 1
        if middles:
            middles[0].receive_down(data)
        else:
            sink.extend(right.receive_bytes(data))
    for index, middle in enumerate(middles):
        data = middle.data_to_send_up()
        if data:
            progressed = True
            if index + 1 < len(middles):
                middles[index + 1].receive_down(data)
            else:
                sink.extend(right.receive_bytes(data))
    data = right.data_to_send()
    if data:
        progressed, flights = True, flights + 1
        if middles:
            middles[-1].receive_up(data)
        else:
            left.receive_bytes(data)
    for index in range(len(middles) - 1, -1, -1):
        data = middles[index].data_to_send_down()
        if data:
            progressed = True
            if index > 0:
                middles[index - 1].receive_up(data)
            else:
                left.receive_bytes(data)
    return progressed, flights


def _established(parties) -> bool:
    if not parties.needs_handshake:
        return True
    return all(
        getattr(party, "established", False)
        or getattr(party, "handshake_complete", False)
        for party in (parties.left, parties.right)
    )


def measure_case(
    name: str,
    seed: bytes = b"chain-compare",
    payload_bytes: int = 16384,
    batches: int = 8,
) -> ChainMeasurement:
    """Handshake CPU, flight count, and c2s throughput for one case."""
    parties = build_parties(name, seed)
    sink: list = []
    flights = 0
    handshake_start = time.process_time()
    parties.left.start()
    for middle in parties.middles:
        middle.start()
    parties.right.start()
    for _ in range(_MAX_ROUNDS):
        progressed, new_flights = _pump_round(parties, sink)
        flights += new_flights
        if not progressed:
            break
        if _established(parties):
            break
    handshake_cpu = time.process_time() - handshake_start
    if not _established(parties):
        raise RuntimeError(f"{name} failed to establish adversary-free")
    if parties.after_handshake is not None:
        parties.after_handshake()

    sink.clear()
    payload = b"\xa5" * payload_bytes
    data_start = time.process_time()
    for _ in range(batches):
        parties.left.send_application_data(payload)
        for _ in range(_MAX_ROUNDS):
            progressed, _ = _pump_round(parties, sink)
            if not progressed:
                break
    data_cpu = time.process_time() - data_start
    delivered = sum(
        len(event.data) for event in sink if isinstance(event, ApplicationData)
    )
    if delivered != batches * payload_bytes:
        raise RuntimeError(
            f"{name} delivered {delivered} of {batches * payload_bytes} bytes"
        )
    return ChainMeasurement(
        case=name,
        handshake_cpu_seconds=handshake_cpu,
        flights=flights,
        throughput_bytes_per_second=delivered / data_cpu if data_cpu else 0.0,
    )


def measure_matrix(
    cases=COMPARE_CASES, seed: bytes = b"chain-compare"
) -> list[ChainMeasurement]:
    """Measure every comparison case with a shared seed."""
    return [measure_case(name, seed) for name in cases]
