"""Synthetic "Alexa top 500" server population for the legacy-
interoperability experiment (§5.1).

The paper fetched the root document of the top-500 sites through an mbTLS
proxy with a modified curl and reported:

    500 sites -> 385 support HTTPS -> 308 succeeded; failures:
    19 invalid/expired certificates, 40 without AES256-GCM,
    13 SOCKS-redirect handling bugs, 5 unknown.

We regenerate the same breakdown over a synthetic population whose defect
mix matches those counts. Defects are modelled where they actually bite:
expired certs fail validation, missing cipher suites fail negotiation (the
prototype, like ours by default, offers only AES-256-GCM), redirects point
the client at hosts the proxy harness does not follow, and a handful of
servers are simply broken.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.crypto.drbg import HmacDrbg
from repro.tls.ciphersuites import (
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
    TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
)

__all__ = ["ServerDefect", "SyntheticServer", "generate_alexa_population", "PAPER_COUNTS"]

PAPER_COUNTS = {
    "total": 500,
    "https": 385,
    "success": 308,
    "bad_certificate": 19,
    "no_common_cipher": 40,
    "redirect": 13,
    "unknown": 5,
}


class ServerDefect(Enum):
    NONE = "none"
    NO_HTTPS = "no_https"
    EXPIRED_CERT = "expired_cert"
    NO_AES256 = "no_aes256"
    REDIRECT = "redirect"
    BROKEN = "broken"


@dataclass(frozen=True)
class SyntheticServer:
    """One synthetic popular site."""

    rank: int
    hostname: str
    defect: ServerDefect

    @property
    def cipher_suites(self) -> tuple[int, ...]:
        if self.defect == ServerDefect.NO_AES256:
            # Modern enough for the web, but not for an AES-256-GCM-only client.
            return (TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256.code,)
        return (
            TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384.code,
            TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256.code,
        )

    @property
    def cert_expired(self) -> bool:
        return self.defect == ServerDefect.EXPIRED_CERT

    @property
    def supports_https(self) -> bool:
        return self.defect != ServerDefect.NO_HTTPS


def generate_alexa_population(rng: HmacDrbg) -> list[SyntheticServer]:
    """500 servers with the paper's exact defect counts, shuffled by rank."""
    defects: list[ServerDefect] = (
        [ServerDefect.NO_HTTPS] * (PAPER_COUNTS["total"] - PAPER_COUNTS["https"])
        + [ServerDefect.EXPIRED_CERT] * PAPER_COUNTS["bad_certificate"]
        + [ServerDefect.NO_AES256] * PAPER_COUNTS["no_common_cipher"]
        + [ServerDefect.REDIRECT] * PAPER_COUNTS["redirect"]
        + [ServerDefect.BROKEN] * PAPER_COUNTS["unknown"]
        + [ServerDefect.NONE] * PAPER_COUNTS["success"]
    )
    # Fisher-Yates with the deterministic DRBG.
    for index in range(len(defects) - 1, 0, -1):
        other = rng.randint_range(0, index)
        defects[index], defects[other] = defects[other], defects[index]
    return [
        SyntheticServer(rank=rank + 1, hostname=f"site{rank + 1:03d}.example",
                        defect=defect)
        for rank, defect in enumerate(defects)
    ]
