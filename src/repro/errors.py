"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single except clause. Protocol-level
failures (the ones a TLS peer would surface as an alert) derive from
:class:`ProtocolError` and carry an alert description.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key size, invalid point, ...)."""


class IntegrityError(CryptoError):
    """An authentication tag or MAC check failed."""


class ProtocolError(ReproError):
    """A protocol violation that maps onto a TLS alert.

    Attributes:
        alert: the TLS alert description name (e.g. ``"decode_error"``).
    """

    def __init__(self, message: str, alert: str = "internal_error") -> None:
        super().__init__(message)
        self.alert = alert


class DecodeError(ProtocolError):
    """A wire message could not be parsed."""

    def __init__(self, message: str) -> None:
        super().__init__(message, alert="decode_error")


class HandshakeError(ProtocolError):
    """The handshake failed (negotiation mismatch, bad Finished, ...)."""

    def __init__(self, message: str, alert: str = "handshake_failure") -> None:
        super().__init__(message, alert=alert)


class CertificateError(HandshakeError):
    """Certificate validation failed."""

    def __init__(self, message: str, alert: str = "bad_certificate") -> None:
        super().__init__(message, alert=alert)


class AttestationError(HandshakeError):
    """An SGX attestation quote failed verification."""

    def __init__(self, message: str) -> None:
        super().__init__(message, alert="bad_certificate")


class SessionAborted(ReproError):
    """A multi-hop session was torn down by a fatal alert.

    Attributes:
        origin: name of the hop that originated the alert (``""`` if the
            originator did not attribute itself).
        alert: the TLS alert description name (e.g. ``"bad_record_mac"``).
    """

    def __init__(self, message: str, *, origin: str = "", alert: str = "") -> None:
        super().__init__(message)
        self.origin = origin
        self.alert = alert


class PolicyError(ReproError):
    """An endpoint policy rejected a middlebox or configuration."""


class NetworkError(ReproError):
    """A simulated-network failure (connection refused, reset, ...)."""


class TimeoutError(ReproError):
    """A protocol timer (handshake, idle, retry horizon) expired.

    Shadows the builtin deliberately, like ``asyncio.TimeoutError``; callers
    catching :class:`ReproError` see both worlds uniformly.
    """


class DegradedPathError(ReproError):
    """A session could not be completed at full strength and the endpoint
    policy forbids degraded operation (e.g. bypassing a dead middlebox)."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class EnclaveError(ReproError):
    """Illegal access to, or misuse of, a simulated SGX enclave."""
