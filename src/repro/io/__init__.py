"""Sans-IO kernel shared by every protocol party.

``repro.io`` sits between the wire formats (``repro.wire``) and the
protocol engines (``repro.tls``, ``repro.core``, ``repro.baselines``):

* :class:`Connection` / :class:`DuplexConnection` — the contract every
  party implements (see ``tests/test_connection_contract.py``);
* :class:`RecordPlane` — framing, AEAD protection, sequence state, and
  coalesced outbox buffering, owned once instead of per-engine;
* :func:`pump` / :func:`pump_chain` / :class:`DuplexPump` — the only
  quiescence-loop implementations in the tree.
"""

from repro.io.connection import (
    DEFAULT_PUMP_ROUNDS,
    Connection,
    DuplexConnection,
    DuplexPump,
    flush_connection,
    pump,
    pump_chain,
)
from repro.io.framing import (
    FRAME_ALERT,
    FRAME_CLOSE,
    FRAME_DATA,
    alert_frame,
    close_frame,
    frame,
    pop_frames,
)
from repro.io.record_plane import MAX_BUFFERED_BYTES, RecordPlane

__all__ = [
    "DEFAULT_PUMP_ROUNDS",
    "FRAME_ALERT",
    "FRAME_CLOSE",
    "FRAME_DATA",
    "MAX_BUFFERED_BYTES",
    "Connection",
    "DuplexConnection",
    "DuplexPump",
    "RecordPlane",
    "alert_frame",
    "close_frame",
    "flush_connection",
    "frame",
    "pop_frames",
    "pump",
    "pump_chain",
]
