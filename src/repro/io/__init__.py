"""Sans-IO kernel shared by every protocol party.

``repro.io`` sits between the wire formats (``repro.wire``) and the
protocol engines (``repro.tls``, ``repro.core``, ``repro.baselines``):

* :class:`Connection` / :class:`DuplexConnection` — the contract every
  party implements (see ``tests/test_connection_contract.py``);
* :class:`RecordPlane` — framing, AEAD protection, sequence state, and
  coalesced outbox buffering, owned once instead of per-engine;
* :func:`pump` / :func:`pump_chain` / :class:`DuplexPump` — the only
  quiescence-loop implementations in the tree.
"""

from repro.io.connection import (
    DEFAULT_PUMP_ROUNDS,
    Connection,
    DuplexConnection,
    DuplexPump,
    flush_connection,
    pump,
    pump_chain,
)
from repro.io.record_plane import RecordPlane

__all__ = [
    "DEFAULT_PUMP_ROUNDS",
    "Connection",
    "DuplexConnection",
    "DuplexPump",
    "RecordPlane",
    "flush_connection",
    "pump",
    "pump_chain",
]
