"""Shared length-prefixed framing for the non-TLS baselines.

The mcTLS and BlindBox connections both speak a simple stream framing:
a 4-byte big-endian length followed by the payload, with a zero length
marking an orderly close. This module owns that format once, adds an
**alert frame** (length sentinel ``0xFFFFFFFF`` + u16 length + encoded
:class:`~repro.wire.alerts.Alert`) so those baselines can participate in
the alert plane, and bounds the advertised length so a tampered length
field produces a :class:`~repro.errors.DecodeError` instead of an
indefinitely-starved parser.
"""

from __future__ import annotations

from repro.errors import DecodeError

__all__ = [
    "FRAME_DATA",
    "FRAME_CLOSE",
    "FRAME_ALERT",
    "MAX_FRAME_PAYLOAD",
    "frame",
    "close_frame",
    "alert_frame",
    "pop_frames",
]

FRAME_DATA = "data"
FRAME_CLOSE = "close"
FRAME_ALERT = "alert"

_HEADER = 4
_ALERT_SENTINEL = 0xFFFFFFFF
_ALERT_HEADER = 2

# Any frame longer than this is treated as a framing attack, not data. The
# largest legitimate payload in the corpus is tens of kilobytes.
MAX_FRAME_PAYLOAD = 1 << 24


def frame(payload: bytes) -> bytes:
    """Encode one data frame."""
    if not payload:
        raise DecodeError("data frames must be non-empty (0 marks close)")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise DecodeError(f"frame payload of {len(payload)} bytes exceeds bound")
    return len(payload).to_bytes(_HEADER, "big") + payload


def close_frame() -> bytes:
    """Encode the orderly-close marker."""
    return (0).to_bytes(_HEADER, "big")


def alert_frame(alert_payload: bytes) -> bytes:
    """Encode an alert frame carrying an encoded :class:`Alert`."""
    return (
        _ALERT_SENTINEL.to_bytes(_HEADER, "big")
        + len(alert_payload).to_bytes(_ALERT_HEADER, "big")
        + alert_payload
    )


def pop_frames(buffer: bytearray) -> list[tuple[str, bytes]]:
    """Pop complete frames off ``buffer`` in place.

    Returns ``(kind, payload)`` pairs where ``kind`` is one of
    :data:`FRAME_DATA`, :data:`FRAME_CLOSE` (empty payload), or
    :data:`FRAME_ALERT` (payload is the encoded alert). Raises
    :class:`DecodeError` on an implausible length field.
    """
    frames: list[tuple[str, bytes]] = []
    while len(buffer) >= _HEADER:
        length = int.from_bytes(buffer[:_HEADER], "big")
        if length == 0:
            del buffer[:_HEADER]
            frames.append((FRAME_CLOSE, b""))
            continue
        if length == _ALERT_SENTINEL:
            if len(buffer) < _HEADER + _ALERT_HEADER:
                break
            alert_len = int.from_bytes(
                buffer[_HEADER : _HEADER + _ALERT_HEADER], "big"
            )
            total = _HEADER + _ALERT_HEADER + alert_len
            if len(buffer) < total:
                break
            payload = bytes(buffer[_HEADER + _ALERT_HEADER : total])
            del buffer[:total]
            frames.append((FRAME_ALERT, payload))
            continue
        if length > MAX_FRAME_PAYLOAD:
            raise DecodeError(f"frame length {length} exceeds bound")
        if len(buffer) < _HEADER + length:
            break
        payload = bytes(buffer[_HEADER : _HEADER + length])
        del buffer[: _HEADER + length]
        frames.append((FRAME_DATA, payload))
    return frames
