"""The shared connection contract every protocol party implements.

Every party in the tree — the plain TLS engines, the three mbTLS engines,
and all five baselines — is a *sans-IO* state machine behind one of two
surfaces:

* :class:`Connection` — an endpoint: one byte stream in, one byte stream
  out (``start / receive_bytes -> events / data_to_send / close /
  peer_closed / closed``).
* :class:`DuplexConnection` — an in-path element between two TCP segments
  (*down* faces the client, *up* faces the server), with the same surface
  per side.

The contract (enforced by ``tests/test_connection_contract.py``):

* ``start()`` may be called exactly once; a second call raises
  :class:`~repro.errors.ProtocolError` and must not emit bytes or events.
* ``data_to_send()`` drains: an immediate second call returns ``b""``.
* ``receive_bytes()`` after ``closed`` returns ``[]`` — never raises.
* ``close()`` and ``peer_closed()`` are idempotent; events after close
  are empty.
* sending application data after close raises
  :class:`~repro.errors.ProtocolError` instead of silently queueing.
* the same DRBG seed yields a byte-identical wire transcript.

This module also owns the *only* pump implementations in the tree:
:func:`pump` (two directly connected endpoints), :func:`pump_chain`
(endpoint - duplex elements - endpoint, all in memory), and
:class:`DuplexPump` (drain a duplex element's outboxes into two
transports). Drivers and tests must use these instead of hand-rolling
quiescence loops.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

__all__ = [
    "Connection",
    "DuplexConnection",
    "DuplexPump",
    "flush_connection",
    "pump",
    "pump_chain",
]

#: Safety bound on pump rounds; any healthy handshake quiesces well before.
DEFAULT_PUMP_ROUNDS = 30


@runtime_checkable
class Connection(Protocol):
    """A sans-IO endpoint: one inbound byte stream, one outbound."""

    @property
    def closed(self) -> bool: ...

    def start(self) -> None:
        """Kick the state machine off (e.g. send a ClientHello)."""
        ...

    def receive_bytes(self, data: bytes) -> list:
        """Feed transport bytes; returns the protocol events they caused."""
        ...

    def data_to_send(self) -> bytes:
        """Drain bytes destined for the transport."""
        ...

    def send_application_data(self, data: bytes) -> None:
        """Queue application data (raises once closed)."""
        ...

    def close(self) -> None:
        """Shut down cleanly (say goodbye on the wire if possible)."""
        ...

    def peer_closed(self) -> list:
        """The transport died under us; returns the resulting events."""
        ...


@runtime_checkable
class DuplexConnection(Protocol):
    """A sans-IO in-path element between two TCP segments."""

    @property
    def closed(self) -> bool: ...

    def start(self) -> None: ...

    def receive_down(self, data: bytes) -> list:
        """Feed bytes arriving on the client-facing segment."""
        ...

    def receive_up(self, data: bytes) -> list:
        """Feed bytes arriving on the server-facing segment."""
        ...

    def data_to_send_down(self) -> bytes: ...

    def data_to_send_up(self) -> bytes: ...

    def peer_closed_down(self) -> list:
        """The client-facing segment closed under us."""
        ...

    def peer_closed_up(self) -> list:
        """The server-facing segment closed under us."""
        ...


def pump(
    a: Connection, b: Connection, rounds: int = DEFAULT_PUMP_ROUNDS
) -> tuple[list, list]:
    """Drive two directly connected connections to quiescence.

    Alternates ``a -> b`` then ``b -> a`` until neither side produced
    output. Returns ``(a_events, b_events)``.
    """
    a_events: list = []
    b_events: list = []
    for _ in range(rounds):
        progressed = False
        data = a.data_to_send()
        if data:
            b_events += b.receive_bytes(data)
            progressed = True
        data = b.data_to_send()
        if data:
            a_events += a.receive_bytes(data)
            progressed = True
        if not progressed:
            break
    return a_events, b_events


def pump_chain(
    left: Connection,
    middles: DuplexConnection | list,
    right: Connection,
    rounds: int = DEFAULT_PUMP_ROUNDS,
) -> tuple[list, list, list]:
    """Drive ``left - [duplex elements] - right`` to quiescence in memory.

    ``middles`` is one duplex element or a list ordered client-to-server.
    Returns ``(left_events, middle_events, right_events)`` with the middle
    events flattened across elements.
    """
    if not isinstance(middles, (list, tuple)):
        middles = [middles]
    left_events: list = []
    middle_events: list = []
    right_events: list = []
    for _ in range(rounds):
        progressed = False
        # Client-to-server sweep.
        data = left.data_to_send()
        for middle in middles:
            if data:
                middle_events += middle.receive_down(data)
                progressed = True
            data = middle.data_to_send_up()
        if data:
            right_events += right.receive_bytes(data)
            progressed = True
        # Server-to-client sweep.
        data = right.data_to_send()
        for middle in reversed(middles):
            if data:
                middle_events += middle.receive_up(data)
                progressed = True
            data = middle.data_to_send_down()
        if data:
            left_events += left.receive_bytes(data)
            progressed = True
        if not progressed:
            break
    return left_events, middle_events, right_events


def flush_connection(connection: Connection, send: Callable[[bytes], None]) -> bool:
    """Drain a connection's outbox into ``send``; True if bytes moved."""
    data = connection.data_to_send()
    if data:
        send(data)
        return True
    return False


class DuplexPump:
    """Drains a duplex element's outboxes into its two transports.

    The transports only need ``send(data)`` and a ``closed`` attribute —
    the simulated :class:`~repro.netsim.network.Socket` qualifies, as does
    any test double. The up transport may be bound late (optimistic split
    TCP dials the onward segment after the first client flight).
    """

    def __init__(self, connection: DuplexConnection, down, up=None) -> None:
        self.connection = connection
        self.down = down
        self.up = up

    def bind_up(self, up) -> None:
        self.up = up

    def flush(self) -> None:
        """Move pending output toward whichever segments are still open."""
        if self.up is not None and not self.up.closed:
            data = self.connection.data_to_send_up()
            if data:
                self.up.send(data)
        if self.down is not None and not self.down.closed:
            data = self.connection.data_to_send_down()
            if data:
                self.down.send(data)
