"""The shared record plane: framing, AEAD protection, and outbox buffering.

Every engine used to hand-roll the same three pieces: a
:class:`~repro.wire.records.RecordBuffer` for inbound reassembly, a
``bytearray`` outbox, and a pair of AEAD
:class:`~repro.tls.record_layer.ConnectionState` objects (plus the pending
states staged by ChangeCipherSpec). :class:`RecordPlane` owns all of it
once.

The outbound path is coalesced: records are encoded *directly into* the
outbox (no intermediate ``Record.encode()`` bytes object per record), large
application writes are fragmented through a ``memoryview`` (no eager
per-fragment slice copies), and a whole multi-record flight drains as one
``bytes`` for one transport write. ``benchmarks/test_record_plane_throughput.py``
tracks the copy count and throughput against the historical per-record path.
"""

from __future__ import annotations

from time import perf_counter

from repro import obs
from repro.errors import ProtocolError
from repro.wire.records import (
    ContentType,
    MAX_FRAGMENT,
    Record,
    RecordBuffer,
    TLS12_VERSION,
)

__all__ = ["RecordPlane", "MAX_BUFFERED_BYTES"]

_VERSION_BYTES = TLS12_VERSION.to_bytes(2, "big")

# Upper bound on either buffer (inbox or outbox). A mutated length field can
# at most make the peer wait for one oversized record (RecordBuffer already
# bounds a single record at MAX_CIPHERTEXT); this guard bounds the *total*
# bytes a connection will hold, so no sequence of tampered frames can cause
# unbounded buffering. 4 MiB is ~100x the largest legitimate flight in the
# test corpus.
MAX_BUFFERED_BYTES = 4 * 1024 * 1024


class RecordPlane:
    """Framing + AEAD + outbox for one direction pair of one connection.

    The read/write states are duck-typed (anything with
    ``protect``/``unprotect``/``sequence``); ``None`` means plaintext.
    ``pending_read``/``pending_write`` stage the states a ChangeCipherSpec
    will activate.
    """

    __slots__ = (
        "_inbound",
        "_outbox",
        "_pending_seal",
        "_pending_seal_bytes",
        "read_state",
        "write_state",
        "pending_read",
        "pending_write",
        "records_queued",
        "flights_drained",
        "bytes_drained",
        "party",
        "_obs_plane",
        "_obs_cache",
    )

    # Worst-case per-record expansion when sealed: 5-byte header plus
    # 8-byte explicit nonce plus 16-byte tag (both AEAD suites).
    _SEAL_OVERHEAD = 29

    def __init__(self) -> None:
        self._inbound = RecordBuffer()
        self._outbox = bytearray()
        # Plaintext fragments queued under the current write state but
        # not yet sealed; they are encrypted as one protect_many() batch
        # at the next flush point (drain, state swap, or verbatim queue).
        self._pending_seal = []
        self._pending_seal_bytes = 0
        self.read_state = None
        self.write_state = None
        self.pending_read = None
        self.pending_write = None
        # Telemetry for the perf trajectory (see the record-plane bench).
        self.records_queued = 0
        self.flights_drained = 0
        self.bytes_drained = 0
        # Observability: the owning engine stamps ``party`` before traffic
        # flows; counters are cached per (family, content type) and the
        # cache is dropped whenever the process-local plane is swapped.
        self.party = ""
        self._obs_plane = None
        self._obs_cache = {}

    # ---------------------------------------------------------------- metrics

    def _obs_counters(self, family: str, content_type: int):
        """Cached ``(records, bytes)`` counters for one content type."""
        current = obs.plane()
        if current is not self._obs_plane:
            self._obs_plane = current
            self._obs_cache = {}
        key = (family, content_type)
        cached = self._obs_cache.get(key)
        if cached is None:
            try:
                label = ContentType(content_type).name.lower()
            except ValueError:
                label = str(content_type)
            cached = (
                current.metrics.counter(
                    f"records_{family}", party=self.party, type=label),
                current.metrics.counter(
                    f"bytes_{family}", party=self.party, type=label),
            )
            self._obs_cache[key] = cached
        return cached

    # ---------------------------------------------------------------- inbound

    def feed(self, data: bytes) -> None:
        if self._inbound.pending_bytes + len(data) > MAX_BUFFERED_BYTES:
            raise ProtocolError(
                f"inbound buffer would exceed {MAX_BUFFERED_BYTES} bytes",
                alert="record_overflow",
            )
        self._inbound.feed(data)

    def pop_records(self) -> list[Record]:
        """Complete inbound records, payloads as zero-copy views.

        Payloads are memoryview slices of one per-flight snapshot (see
        :meth:`RecordBuffer.pop_record_views`): a batched open slices the
        ciphertext straight out of the inbound buffer without per-record
        ``bytes()`` materialization.  :meth:`unprotect` /
        :meth:`unprotect_many` still hand plaintext out as ``bytes``.
        """
        return self._inbound.pop_record_views()

    def unprotect(self, record: Record) -> bytes:
        """Decrypt under the read state; plaintext passthrough before keys."""
        if self.read_state is not None:
            plaintext = self.read_state.unprotect(record)
            records, size = self._obs_counters("opened", int(record.content_type))
            records.inc()
            size.inc(len(plaintext))
            return plaintext
        payload = record.payload
        return payload if isinstance(payload, bytes) else bytes(payload)

    def unprotect_many(self, records: list[Record]) -> list[bytes]:
        """Decrypt a run of records in one batched call.

        All-or-nothing when the read state supports ``unprotect_many``:
        on failure no sequence number is consumed, so callers can fall
        back to per-record processing for exact sequential semantics.
        """
        state = self.read_state
        if state is None:
            return [
                payload if isinstance(payload, bytes) else bytes(payload)
                for payload in (record.payload for record in records)
            ]
        unprotect_many = getattr(state, "unprotect_many", None)
        if unprotect_many is not None and len(records) > 1:
            plaintexts = unprotect_many(records)
        else:
            plaintexts = [state.unprotect(record) for record in records]
        for record, plaintext in zip(records, plaintexts):
            counted, size = self._obs_counters("opened", int(record.content_type))
            counted.inc()
            size.inc(len(plaintext))
        return plaintexts

    def activate_pending_read(self) -> None:
        """ChangeCipherSpec arrived: flip to the staged read state."""
        if self.pending_read is None:
            raise ProtocolError("no pending read state to activate")
        self.read_state = self.pending_read
        self.pending_read = None

    @property
    def pending_inbound_bytes(self) -> int:
        return self._inbound.pending_bytes

    @property
    def pending_outbound_bytes(self) -> int:
        """Sealed plus queued-for-sealing bytes awaiting a drain.

        This is the quantity :meth:`_check_outbox_room` compares against
        :data:`MAX_BUFFERED_BYTES`; orchestrators read it as the
        backpressure signal (defer admissions while outboxes are near the
        bound) instead of waiting for the hard ``record_overflow``.
        """
        return len(self._outbox) + self._pending_seal_bytes

    def drain_inbound_raw(self) -> bytes:
        """Take the raw unparsed inbound buffer (relay demotion)."""
        return self._inbound.drain_raw()

    # --------------------------------------------------------------- outbound

    def queue_record(self, content_type: ContentType, payload) -> None:
        """Queue one record; sealing is deferred until the flight drains.

        Encrypted records accumulate as plaintext fragments and are
        sealed in a single ``protect_many`` batch at the next flush
        point, so a multi-record flight costs one Python-level AEAD
        call. Output bytes are identical to eager per-record sealing.
        """
        if self.write_state is not None:
            self._check_outbox_room(len(payload) + self._SEAL_OVERHEAD)
            self._pending_seal.append((content_type, payload))
            self._pending_seal_bytes += len(payload) + self._SEAL_OVERHEAD
            return
        self._append(int(content_type), payload)

    def queue_application_data(self, data) -> None:
        """Fragment and queue application data without eager slice copies."""
        view = memoryview(data)
        for offset in range(0, len(view), MAX_FRAGMENT):
            self.queue_record(
                ContentType.APPLICATION_DATA, view[offset : offset + MAX_FRAGMENT]
            )

    def queue_encoded(self, record: Record) -> None:
        """Queue an already-built record verbatim (forwarding paths)."""
        self._flush_pending_seal()
        self._append(int(record.content_type), record.payload, record.version)

    def queue_raw(self, data: bytes) -> None:
        """Queue pre-encoded wire bytes verbatim (relay paths)."""
        self._flush_pending_seal()
        self._check_outbox_room(len(data))
        self._outbox += data

    def _flush_pending_seal(self) -> None:
        """Seal every deferred fragment under the current write state."""
        pending = self._pending_seal
        if not pending:
            return
        self._pending_seal = []
        self._pending_seal_bytes = 0
        state = self.write_state
        protect_many = getattr(state, "protect_many", None)
        current = obs.plane()
        started = perf_counter() if current.wall_time else 0.0
        if protect_many is not None and len(pending) > 1:
            records = protect_many(pending)
        else:
            records = [state.protect(ct, payload) for ct, payload in pending]
        if current.wall_time:
            suite = getattr(state, "suite", None)
            current.metrics.histogram(
                "aead_seal_seconds", party=self.party,
                suite=getattr(suite, "name", "unknown"),
            ).observe(perf_counter() - started)
        for content_type, payload in pending:
            counted, size = self._obs_counters("sealed", int(content_type))
            counted.inc()
            size.inc(len(payload))
        current.metrics.counter("seal_flushes", party=self.party).inc()
        current.metrics.histogram(
            "seal_batch_records", obs.COUNT_BUCKETS, party=self.party
        ).observe(len(pending))
        for record in records:
            self._append(int(record.content_type), record.payload)

    def _check_outbox_room(self, extra: int) -> None:
        if len(self._outbox) + self._pending_seal_bytes + extra > MAX_BUFFERED_BYTES:
            raise ProtocolError(
                f"outbound buffer would exceed {MAX_BUFFERED_BYTES} bytes",
                alert="record_overflow",
            )

    def _append(self, content_type: int, payload, version: int | None = None) -> None:
        self._check_outbox_room(len(payload) + 5)
        out = self._outbox
        out.append(content_type)
        if version is None or version == TLS12_VERSION:
            out += _VERSION_BYTES
        else:
            out += version.to_bytes(2, "big")
        out += len(payload).to_bytes(2, "big")
        out += payload
        self.records_queued += 1

    def activate_pending_write(self) -> None:
        """Our ChangeCipherSpec went out: flip to the staged write state."""
        self._flush_pending_seal()  # records before CCS use the old keys
        self.write_state = self.pending_write
        self.pending_write = None

    @property
    def has_output(self) -> bool:
        return bool(self._outbox or self._pending_seal)

    def data_to_send(self) -> bytes:
        """Drain the whole flight as one buffer — one copy, one write."""
        self._flush_pending_seal()
        if not self._outbox:
            return b""
        data = bytes(self._outbox)
        self._outbox.clear()
        self.flights_drained += 1
        self.bytes_drained += len(data)
        metrics = obs.plane().metrics
        metrics.counter("flights_drained", party=self.party).inc()
        metrics.counter("bytes_drained", party=self.party).inc(len(data))
        return data

    # --------------------------------------------------------------- sequence

    def sequences(self) -> tuple[int, int]:
        """(write_seq, read_seq) of the active protection states."""
        self._flush_pending_seal()  # queued records advance the write seq
        write_seq = self.write_state.sequence if self.write_state else 0
        read_seq = self.read_state.sequence if self.read_state else 0
        return write_seq, read_seq

    def replace_states(self, read_state, write_state) -> None:
        """Swap protection states (mbTLS per-hop key installation)."""
        if self._pending_seal and write_state is not None:
            self._flush_pending_seal()  # seal under the outgoing state
        if read_state is not None:
            self.read_state = read_state
        if write_state is not None:
            self.write_state = write_state
