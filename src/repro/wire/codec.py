"""Bounds-checked binary reader/writer for TLS wire formats.

TLS uses big-endian integers and length-prefixed vectors throughout; these
two helpers keep every message codec short and make truncated or trailing
input a :class:`~repro.errors.DecodeError` instead of a silent bug.
"""

from __future__ import annotations

from repro.errors import DecodeError

__all__ = ["Reader", "Writer"]


class Reader:
    """Sequential reader over immutable bytes with TLS-style accessors."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def read_bytes(self, length: int) -> bytes:
        if length < 0 or self.remaining < length:
            raise DecodeError(
                f"truncated input: wanted {length} bytes, have {self.remaining}"
            )
        chunk = self._data[self._offset : self._offset + length]
        self._offset += length
        return chunk

    def read_uint(self, size: int) -> int:
        return int.from_bytes(self.read_bytes(size), "big")

    def read_u8(self) -> int:
        return self.read_uint(1)

    def read_u16(self) -> int:
        return self.read_uint(2)

    def read_u24(self) -> int:
        return self.read_uint(3)

    def read_u32(self) -> int:
        return self.read_uint(4)

    def read_u64(self) -> int:
        return self.read_uint(8)

    def read_vector(self, length_size: int) -> bytes:
        """Read a TLS vector: a length of ``length_size`` bytes, then data."""
        return self.read_bytes(self.read_uint(length_size))

    def expect_end(self) -> None:
        """Raise if any input remains (catches trailing garbage)."""
        if self.remaining:
            raise DecodeError(f"{self.remaining} unexpected trailing bytes")

    def rest(self) -> bytes:
        """Consume and return all remaining bytes."""
        return self.read_bytes(self.remaining)


class Writer:
    """Sequential writer producing TLS wire format."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def write_bytes(self, data: bytes) -> "Writer":
        self._parts.append(bytes(data))
        return self

    def write_uint(self, value: int, size: int) -> "Writer":
        if value < 0 or value >= 1 << (8 * size):
            raise DecodeError(f"{value} does not fit in {size} bytes")
        self._parts.append(value.to_bytes(size, "big"))
        return self

    def write_u8(self, value: int) -> "Writer":
        return self.write_uint(value, 1)

    def write_u16(self, value: int) -> "Writer":
        return self.write_uint(value, 2)

    def write_u24(self, value: int) -> "Writer":
        return self.write_uint(value, 3)

    def write_u32(self, value: int) -> "Writer":
        return self.write_uint(value, 4)

    def write_u64(self, value: int) -> "Writer":
        return self.write_uint(value, 8)

    def write_vector(self, data: bytes, length_size: int) -> "Writer":
        """Write a TLS vector: length prefix of ``length_size`` bytes + data."""
        self.write_uint(len(data), length_size)
        return self.write_bytes(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)
