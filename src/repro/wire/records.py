"""TLS record framing, including the three mbTLS record types (Appendix A).

A record is ``type(1) || version(2) || length(2) || payload``. mbTLS adds
ContentTypes 30 (Encapsulated), 31 (KeyMaterial), and 32
(MiddleboxAnnouncement) alongside the standard four.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer

__all__ = ["ContentType", "Record", "RecordBuffer", "TLS12_VERSION", "MAX_FRAGMENT"]

TLS12_VERSION = 0x0303
MAX_FRAGMENT = 2**14
# AEAD adds an 8-byte explicit nonce and a 16-byte tag; allow that expansion.
MAX_CIPHERTEXT = MAX_FRAGMENT + 1024
RECORD_HEADER_LEN = 5


class ContentType(IntEnum):
    """TLS record content types, extended per mbTLS Appendix A.1."""

    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23
    MBTLS_ENCAPSULATED = 30
    MBTLS_KEY_MATERIAL = 31
    MBTLS_MIDDLEBOX_ANNOUNCEMENT = 32


@dataclass(frozen=True)
class Record:
    """A single TLS record (possibly carrying protected payload)."""

    content_type: ContentType
    payload: bytes
    version: int = TLS12_VERSION

    def encode(self) -> bytes:
        writer = Writer()
        writer.write_u8(int(self.content_type))
        writer.write_u16(self.version)
        writer.write_vector(self.payload, 2)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Record":
        """Decode exactly one record; trailing bytes are an error."""
        record, consumed = cls.decode_prefix(data)
        if consumed != len(data):
            raise DecodeError("trailing bytes after record")
        return record

    @classmethod
    def decode_prefix(cls, data: bytes) -> tuple["Record", int]:
        """Decode one record from the front of ``data``; returns (record, consumed)."""
        reader = Reader(data)
        raw_type = reader.read_u8()
        try:
            content_type = ContentType(raw_type)
        except ValueError as exc:
            raise DecodeError(f"unknown record content type {raw_type}") from exc
        version = reader.read_u16()
        payload = reader.read_vector(2)
        if len(payload) > MAX_CIPHERTEXT:
            raise DecodeError("record payload exceeds maximum size")
        return cls(content_type=content_type, payload=payload, version=version), (
            RECORD_HEADER_LEN + len(payload)
        )


class RecordBuffer:
    """Incremental parser turning a byte stream into complete records.

    Feed arbitrary chunks with :meth:`feed`; iterate complete records with
    :meth:`pop_records`. Partial records are retained across feeds, exactly
    how a TCP receiver must reassemble TLS records.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer += data

    def pop_records(self) -> list[Record]:
        """All complete records, with payloads materialized as ``bytes``.

        Shares :meth:`pop_record_views`' single-snapshot scan: the consumed
        region is copied once and each payload is one slice of that
        snapshot, instead of re-materializing the buffer prefix and
        shifting the remainder once per record (quadratic in flight size).
        """
        return [
            Record(
                content_type=view.content_type,
                payload=bytes(view.payload),
                version=view.version,
            )
            for view in self.pop_record_views()
        ]

    def pop_record_views(self) -> list[Record]:
        """Like :meth:`pop_records`, but payloads are memoryview slices.

        All complete records are located first, then the consumed region
        is snapshotted **once** and each payload is a zero-copy slice of
        that snapshot — so a flight of N records costs one copy instead
        of 2N (the per-record ``bytes(...)`` plus the decode slice).
        Callers that keep plaintext payloads past the flight must
        materialize them; the batched-open path consumes the ciphertext
        views immediately.

        Raises the same :class:`DecodeError`s in the same order as
        :meth:`pop_records` (oversize length even on an incomplete
        record, unknown content type only on a complete one).
        """
        buffer = self._buffer
        available = len(buffer)
        spans: list[tuple[int, ContentType, int, int]] = []
        offset = 0
        while available - offset >= RECORD_HEADER_LEN:
            length = int.from_bytes(buffer[offset + 3 : offset + 5], "big")
            if length > MAX_CIPHERTEXT:
                raise DecodeError("record payload exceeds maximum size")
            if available - offset < RECORD_HEADER_LEN + length:
                break
            raw_type = buffer[offset]
            try:
                content_type = ContentType(raw_type)
            except ValueError as exc:
                raise DecodeError(f"unknown record content type {raw_type}") from exc
            version = int.from_bytes(buffer[offset + 1 : offset + 3], "big")
            spans.append((offset + RECORD_HEADER_LEN, content_type, version, length))
            offset += RECORD_HEADER_LEN + length
        if not spans:
            return []
        snapshot = memoryview(bytes(buffer[:offset]))
        del buffer[:offset]
        return [
            Record(content_type=ct, payload=snapshot[start : start + length],
                   version=version)
            for start, ct, version, length in spans
        ]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete record."""
        return len(self._buffer)

    def drain_raw(self) -> bytes:
        """Take the raw unparsed buffer (used when demoting to a relay)."""
        data = bytes(self._buffer)
        self._buffer.clear()
        return data
