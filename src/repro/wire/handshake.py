"""TLS 1.2 handshake message codecs, plus the SGXAttestation message.

Each message class carries ``encode_body``/``decode_body``; the
:class:`Handshake` wrapper adds the 4-byte type+length header, and
:class:`HandshakeBuffer` reassembles messages that span or share records.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer
from repro.wire.extensions import Extension, decode_extensions, encode_extensions
from repro.wire.records import TLS12_VERSION

__all__ = [
    "HandshakeType",
    "Handshake",
    "HandshakeBuffer",
    "ClientHello",
    "ServerHello",
    "Certificate",
    "ServerKeyExchange",
    "ServerHelloDone",
    "ClientKeyExchange",
    "Finished",
    "SGXAttestation",
    "NewSessionTicket",
    "KexAlgorithm",
]


class HandshakeType(IntEnum):
    HELLO_REQUEST = 0
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    NEW_SESSION_TICKET = 4
    CERTIFICATE = 11
    SERVER_KEY_EXCHANGE = 12
    CERTIFICATE_REQUEST = 13
    SERVER_HELLO_DONE = 14
    CERTIFICATE_VERIFY = 15
    CLIENT_KEY_EXCHANGE = 16
    SGX_ATTESTATION = 17  # mbTLS Appendix A.2
    FINISHED = 20
    # mdTLS (arXiv 2306.03573) proxy-signature handshake plane. Private-use
    # codes; bodies live in repro.wire.mdtls.
    MDTLS_PROXY_SIGNATURE = 24
    MDTLS_KEY_DELIVERY = 25


class KexAlgorithm(IntEnum):
    """Key-exchange algorithms carried in ServerKeyExchange."""

    ECDHE_X25519 = 1
    DHE = 2


@dataclass(frozen=True)
class Handshake:
    """A framed handshake message: type, 24-bit length, body."""

    msg_type: HandshakeType
    body: bytes

    def encode(self) -> bytes:
        return (
            Writer()
            .write_u8(int(self.msg_type))
            .write_vector(self.body, 3)
            .getvalue()
        )


class HandshakeBuffer:
    """Reassembles handshake messages from record payloads.

    Handshake messages may be coalesced into one record or fragmented
    across several; this buffer handles both.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, payload: bytes) -> None:
        self._buffer += payload

    def pop_messages(self) -> list[Handshake]:
        messages = []
        while len(self._buffer) >= 4:
            length = int.from_bytes(self._buffer[1:4], "big")
            total = 4 + length
            if len(self._buffer) < total:
                break
            raw_type = self._buffer[0]
            try:
                msg_type = HandshakeType(raw_type)
            except ValueError as exc:
                raise DecodeError(f"unknown handshake type {raw_type}") from exc
            body = bytes(self._buffer[4:total])
            del self._buffer[:total]
            messages.append(Handshake(msg_type=msg_type, body=body))
        return messages

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


@dataclass(frozen=True)
class ClientHello:
    """TLS 1.2 ClientHello."""

    random: bytes
    session_id: bytes = b""
    cipher_suites: tuple[int, ...] = ()
    extensions: tuple[Extension, ...] = ()
    version: int = TLS12_VERSION

    msg_type = HandshakeType.CLIENT_HELLO

    def encode_body(self) -> bytes:
        writer = Writer()
        writer.write_u16(self.version)
        writer.write_bytes(self.random)
        writer.write_vector(self.session_id, 1)
        suites = Writer()
        for suite in self.cipher_suites:
            suites.write_u16(suite)
        writer.write_vector(suites.getvalue(), 2)
        writer.write_vector(b"\x00", 1)  # null compression only
        writer.write_bytes(encode_extensions(list(self.extensions)))
        return writer.getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "ClientHello":
        reader = Reader(body)
        version = reader.read_u16()
        random = reader.read_bytes(32)
        session_id = reader.read_vector(1)
        suite_bytes = Reader(reader.read_vector(2))
        suites = []
        while suite_bytes.remaining:
            suites.append(suite_bytes.read_u16())
        compression = reader.read_vector(1)
        if b"\x00" not in compression:
            raise DecodeError("peer does not offer null compression")
        extensions = tuple(decode_extensions(reader))
        reader.expect_end()
        return cls(
            random=random,
            session_id=session_id,
            cipher_suites=tuple(suites),
            extensions=extensions,
            version=version,
        )

    def find_extension(self, extension_type: int) -> Extension | None:
        for extension in self.extensions:
            if extension.extension_type == extension_type:
                return extension
        return None


@dataclass(frozen=True)
class ServerHello:
    """TLS 1.2 ServerHello."""

    random: bytes
    cipher_suite: int
    session_id: bytes = b""
    extensions: tuple[Extension, ...] = ()
    version: int = TLS12_VERSION

    msg_type = HandshakeType.SERVER_HELLO

    def encode_body(self) -> bytes:
        writer = Writer()
        writer.write_u16(self.version)
        writer.write_bytes(self.random)
        writer.write_vector(self.session_id, 1)
        writer.write_u16(self.cipher_suite)
        writer.write_u8(0)  # null compression
        writer.write_bytes(encode_extensions(list(self.extensions)))
        return writer.getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "ServerHello":
        reader = Reader(body)
        version = reader.read_u16()
        random = reader.read_bytes(32)
        session_id = reader.read_vector(1)
        cipher_suite = reader.read_u16()
        if reader.read_u8() != 0:
            raise DecodeError("server selected non-null compression")
        extensions = tuple(decode_extensions(reader))
        reader.expect_end()
        return cls(
            random=random,
            cipher_suite=cipher_suite,
            session_id=session_id,
            extensions=extensions,
            version=version,
        )

    def find_extension(self, extension_type: int) -> Extension | None:
        for extension in self.extensions:
            if extension.extension_type == extension_type:
                return extension
        return None


@dataclass(frozen=True)
class Certificate:
    """A certificate chain: leaf first, opaque per-certificate encodings."""

    chain: tuple[bytes, ...]

    msg_type = HandshakeType.CERTIFICATE

    def encode_body(self) -> bytes:
        entries = Writer()
        for cert in self.chain:
            entries.write_vector(cert, 3)
        return Writer().write_vector(entries.getvalue(), 3).getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "Certificate":
        reader = Reader(body)
        entries = Reader(reader.read_vector(3))
        reader.expect_end()
        chain = []
        while entries.remaining:
            chain.append(entries.read_vector(3))
        return cls(chain=tuple(chain))


@dataclass(frozen=True)
class ServerKeyExchange:
    """Ephemeral key-exchange parameters, signed by the server's key.

    ``params`` is the encoded kex parameters (see :meth:`encode_params`);
    the signature covers client_random || server_random || params.
    """

    algorithm: KexAlgorithm
    params: bytes
    signature: bytes

    msg_type = HandshakeType.SERVER_KEY_EXCHANGE

    @staticmethod
    def encode_ecdhe_params(public: bytes) -> bytes:
        return (
            Writer()
            .write_u8(int(KexAlgorithm.ECDHE_X25519))
            .write_vector(public, 1)
            .getvalue()
        )

    @staticmethod
    def encode_dhe_params(p: int, g: int, public: int) -> bytes:
        p_bytes = p.to_bytes((p.bit_length() + 7) // 8, "big")
        g_bytes = g.to_bytes((g.bit_length() + 7) // 8, "big")
        y_bytes = public.to_bytes((public.bit_length() + 7) // 8, "big")
        return (
            Writer()
            .write_u8(int(KexAlgorithm.DHE))
            .write_vector(p_bytes, 2)
            .write_vector(g_bytes, 2)
            .write_vector(y_bytes, 2)
            .getvalue()
        )

    def encode_body(self) -> bytes:
        return Writer().write_bytes(self.params).write_vector(self.signature, 2).getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "ServerKeyExchange":
        reader = Reader(body)
        algorithm_byte = reader.read_u8()
        try:
            algorithm = KexAlgorithm(algorithm_byte)
        except ValueError as exc:
            raise DecodeError(f"unknown key exchange {algorithm_byte}") from exc
        if algorithm == KexAlgorithm.ECDHE_X25519:
            public = reader.read_vector(1)
            params = ServerKeyExchange.encode_ecdhe_params(public)
        else:
            p = int.from_bytes(reader.read_vector(2), "big")
            g = int.from_bytes(reader.read_vector(2), "big")
            y = int.from_bytes(reader.read_vector(2), "big")
            params = ServerKeyExchange.encode_dhe_params(p, g, y)
        signature = reader.read_vector(2)
        reader.expect_end()
        return cls(algorithm=algorithm, params=params, signature=signature)

    def parse_ecdhe_public(self) -> bytes:
        reader = Reader(self.params)
        if reader.read_u8() != int(KexAlgorithm.ECDHE_X25519):
            raise DecodeError("not ECDHE params")
        public = reader.read_vector(1)
        reader.expect_end()
        return public

    def parse_dhe_params(self) -> tuple[int, int, int]:
        reader = Reader(self.params)
        if reader.read_u8() != int(KexAlgorithm.DHE):
            raise DecodeError("not DHE params")
        p = int.from_bytes(reader.read_vector(2), "big")
        g = int.from_bytes(reader.read_vector(2), "big")
        y = int.from_bytes(reader.read_vector(2), "big")
        reader.expect_end()
        return p, g, y


@dataclass(frozen=True)
class ServerHelloDone:
    """Empty ServerHelloDone marker."""

    msg_type = HandshakeType.SERVER_HELLO_DONE

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, body: bytes) -> "ServerHelloDone":
        if body:
            raise DecodeError("ServerHelloDone must be empty")
        return cls()


@dataclass(frozen=True)
class ClientKeyExchange:
    """Client's ephemeral public value (or RSA-encrypted premaster)."""

    exchange_data: bytes

    msg_type = HandshakeType.CLIENT_KEY_EXCHANGE

    def encode_body(self) -> bytes:
        return Writer().write_vector(self.exchange_data, 2).getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "ClientKeyExchange":
        reader = Reader(body)
        data = reader.read_vector(2)
        reader.expect_end()
        return cls(exchange_data=data)


@dataclass(frozen=True)
class Finished:
    """Finished message: 12 bytes of PRF output over the transcript."""

    verify_data: bytes

    msg_type = HandshakeType.FINISHED

    def encode_body(self) -> bytes:
        return self.verify_data

    @classmethod
    def decode_body(cls, body: bytes) -> "Finished":
        if len(body) != 12:
            raise DecodeError("Finished verify_data must be 12 bytes")
        return cls(verify_data=body)


@dataclass(frozen=True)
class SGXAttestation:
    """SGX attestation quote carried in the handshake (Appendix A.2)."""

    quote: bytes

    msg_type = HandshakeType.SGX_ATTESTATION

    def encode_body(self) -> bytes:
        return Writer().write_vector(self.quote, 2).getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "SGXAttestation":
        reader = Reader(body)
        quote = reader.read_vector(2)
        reader.expect_end()
        return cls(quote=quote)


@dataclass(frozen=True)
class NewSessionTicket:
    """RFC 5077 NewSessionTicket."""

    lifetime_seconds: int
    ticket: bytes

    msg_type = HandshakeType.NEW_SESSION_TICKET

    def encode_body(self) -> bytes:
        return (
            Writer()
            .write_u32(self.lifetime_seconds)
            .write_vector(self.ticket, 2)
            .getvalue()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "NewSessionTicket":
        reader = Reader(body)
        lifetime = reader.read_u32()
        ticket = reader.read_vector(2)
        reader.expect_end()
        return cls(lifetime_seconds=lifetime, ticket=ticket)
