"""TLS alert protocol: two-byte (level, description) payloads."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer

__all__ = ["AlertLevel", "AlertDescription", "Alert"]


class AlertLevel(IntEnum):
    WARNING = 1
    FATAL = 2


class AlertDescription(IntEnum):
    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    RECORD_OVERFLOW = 22
    HANDSHAKE_FAILURE = 40
    BAD_CERTIFICATE = 42
    UNSUPPORTED_CERTIFICATE = 43
    CERTIFICATE_REVOKED = 44
    CERTIFICATE_EXPIRED = 45
    CERTIFICATE_UNKNOWN = 46
    ILLEGAL_PARAMETER = 47
    UNKNOWN_CA = 48
    ACCESS_DENIED = 49
    DECODE_ERROR = 50
    DECRYPT_ERROR = 51
    PROTOCOL_VERSION = 70
    INSUFFICIENT_SECURITY = 71
    INTERNAL_ERROR = 80
    USER_CANCELED = 90
    NO_RENEGOTIATION = 100
    UNSUPPORTED_EXTENSION = 110

    @classmethod
    def from_name(cls, name: str) -> "AlertDescription":
        """Map an alert name like ``"decode_error"`` to its code."""
        try:
            return cls[name.upper()]
        except KeyError:
            return cls.INTERNAL_ERROR


@dataclass(frozen=True)
class Alert:
    """A TLS alert message."""

    level: AlertLevel
    description: AlertDescription

    @property
    def is_fatal(self) -> bool:
        return self.level == AlertLevel.FATAL

    @property
    def is_close(self) -> bool:
        return self.description == AlertDescription.CLOSE_NOTIFY

    def encode(self) -> bytes:
        return Writer().write_u8(int(self.level)).write_u8(int(self.description)).getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Alert":
        reader = Reader(data)
        try:
            level = AlertLevel(reader.read_u8())
            description = AlertDescription(reader.read_u8())
        except ValueError as exc:
            raise DecodeError(f"malformed alert: {exc}") from exc
        reader.expect_end()
        return cls(level=level, description=description)

    @classmethod
    def fatal(cls, description: AlertDescription) -> "Alert":
        return cls(level=AlertLevel.FATAL, description=description)

    @classmethod
    def close_notify(cls) -> "Alert":
        return cls(level=AlertLevel.WARNING, description=AlertDescription.CLOSE_NOTIFY)
