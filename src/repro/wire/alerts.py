"""TLS alert protocol: two-byte (level, description) payloads."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer

__all__ = ["AlertLevel", "AlertDescription", "Alert"]


class AlertLevel(IntEnum):
    WARNING = 1
    FATAL = 2


class AlertDescription(IntEnum):
    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    RECORD_OVERFLOW = 22
    HANDSHAKE_FAILURE = 40
    BAD_CERTIFICATE = 42
    UNSUPPORTED_CERTIFICATE = 43
    CERTIFICATE_REVOKED = 44
    CERTIFICATE_EXPIRED = 45
    CERTIFICATE_UNKNOWN = 46
    ILLEGAL_PARAMETER = 47
    UNKNOWN_CA = 48
    ACCESS_DENIED = 49
    DECODE_ERROR = 50
    DECRYPT_ERROR = 51
    PROTOCOL_VERSION = 70
    INSUFFICIENT_SECURITY = 71
    INTERNAL_ERROR = 80
    USER_CANCELED = 90
    NO_RENEGOTIATION = 100
    UNSUPPORTED_EXTENSION = 110

    @classmethod
    def from_name(cls, name: str) -> "AlertDescription":
        """Map an alert name like ``"decode_error"`` to its code."""
        try:
            return cls[name.upper()]
        except KeyError:
            return cls.INTERNAL_ERROR


@dataclass(frozen=True)
class Alert:
    """A TLS alert message.

    ``origin`` is a repro extension used by the multi-hop alert plane: the
    name of the party that originated a fatal alert, so endpoints several
    hops away can attribute the abort. An alert with an empty origin encodes
    to the classic two-byte TLS form; a non-empty origin appends a
    length-prefixed UTF-8 label. Both forms decode.
    """

    level: AlertLevel
    description: AlertDescription
    origin: str = ""

    @property
    def is_fatal(self) -> bool:
        return self.level == AlertLevel.FATAL

    @property
    def is_close(self) -> bool:
        return self.description == AlertDescription.CLOSE_NOTIFY

    def encode(self) -> bytes:
        writer = Writer().write_u8(int(self.level)).write_u8(int(self.description))
        if self.origin:
            writer.write_vector(self.origin.encode("utf-8"), 1)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Alert":
        reader = Reader(data)
        try:
            level = AlertLevel(reader.read_u8())
            description = AlertDescription(reader.read_u8())
        except ValueError as exc:
            raise DecodeError(f"malformed alert: {exc}") from exc
        origin = ""
        if reader.remaining:
            try:
                origin = reader.read_vector(1).decode("utf-8")
            except (ValueError, UnicodeDecodeError) as exc:
                raise DecodeError(f"malformed alert origin: {exc}") from exc
        reader.expect_end()
        return cls(level=level, description=description, origin=origin)

    @classmethod
    def fatal(cls, description: AlertDescription, origin: str = "") -> "Alert":
        return cls(level=AlertLevel.FATAL, description=description, origin=origin)

    @classmethod
    def close_notify(cls) -> "Alert":
        return cls(level=AlertLevel.WARNING, description=AlertDescription.CLOSE_NOTIFY)
