"""TLS hello extensions, including mbTLS's MiddleboxSupport (Appendix A.2).

Extensions are (type, opaque data) pairs; known types get typed wrappers.
Unknown extension types are preserved opaquely, which is what lets a legacy
TLS implementation in this library ignore the mbTLS extension — the behaviour
the paper's legacy-interoperability property depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer

__all__ = [
    "ExtensionType",
    "Extension",
    "ServerNameExtension",
    "SessionTicketExtension",
    "AttestationRequestExtension",
    "MiddleboxSupportExtension",
    "encode_extensions",
    "decode_extensions",
]


class ExtensionType(IntEnum):
    SERVER_NAME = 0
    SESSION_TICKET = 35
    # Private-use code points for the mbTLS extensions.
    MIDDLEBOX_SUPPORT = 0xFF01
    ATTESTATION_REQUEST = 0xFF02
    # mdTLS (arXiv 2306.03573): endpoint-issued delegation certificates.
    DELEGATION_CERTIFICATE = 0xFF03


@dataclass(frozen=True)
class Extension:
    """An opaque extension: type code plus raw data."""

    extension_type: int
    data: bytes

    def encode(self) -> bytes:
        return (
            Writer()
            .write_u16(self.extension_type)
            .write_vector(self.data, 2)
            .getvalue()
        )


@dataclass(frozen=True)
class ServerNameExtension:
    """Simplified SNI: a single hostname."""

    host_name: str

    extension_type = ExtensionType.SERVER_NAME

    def to_extension(self) -> Extension:
        name = self.host_name.encode()
        data = Writer().write_vector(name, 2).getvalue()
        return Extension(int(self.extension_type), data)

    @classmethod
    def from_extension(cls, extension: Extension) -> "ServerNameExtension":
        reader = Reader(extension.data)
        name = reader.read_vector(2)
        reader.expect_end()
        return cls(host_name=name.decode())


@dataclass(frozen=True)
class SessionTicketExtension:
    """RFC 5077-style session ticket (empty = "please issue one")."""

    ticket: bytes = b""

    extension_type = ExtensionType.SESSION_TICKET

    def to_extension(self) -> Extension:
        return Extension(int(self.extension_type), self.ticket)

    @classmethod
    def from_extension(cls, extension: Extension) -> "SessionTicketExtension":
        return cls(ticket=extension.data)


@dataclass(frozen=True)
class AttestationRequestExtension:
    """Client asks the peer to include an SGXAttestation handshake message."""

    extension_type = ExtensionType.ATTESTATION_REQUEST

    def to_extension(self) -> Extension:
        return Extension(int(self.extension_type), b"")

    @classmethod
    def from_extension(cls, extension: Extension) -> "AttestationRequestExtension":
        if extension.data:
            raise DecodeError("attestation_request extension must be empty")
        return cls()


@dataclass(frozen=True)
class MiddleboxSupportExtension:
    """mbTLS MiddleboxSupport extension (Appendix A.2).

    Carries zero or more "optimistic" ClientHellos that discovered
    middleboxes may answer, plus the addresses of middleboxes the client
    knows a priori. Its presence in a ClientHello is the in-band signal
    that the client speaks mbTLS.
    """

    client_hellos: tuple[bytes, ...] = ()
    middleboxes: tuple[str, ...] = field(default_factory=tuple)

    extension_type = ExtensionType.MIDDLEBOX_SUPPORT

    def to_extension(self) -> Extension:
        writer = Writer()
        writer.write_u8(len(self.client_hellos))
        for hello in self.client_hellos:
            writer.write_u16(len(hello))
        for hello in self.client_hellos:
            writer.write_bytes(hello)
        writer.write_u8(len(self.middleboxes))
        for address in self.middleboxes:
            writer.write_vector(address.encode(), 2)
        return Extension(int(self.extension_type), writer.getvalue())

    @classmethod
    def from_extension(cls, extension: Extension) -> "MiddleboxSupportExtension":
        reader = Reader(extension.data)
        num_hellos = reader.read_u8()
        lengths = [reader.read_u16() for _ in range(num_hellos)]
        hellos = tuple(reader.read_bytes(length) for length in lengths)
        num_mboxes = reader.read_u8()
        middleboxes = tuple(
            reader.read_vector(2).decode() for _ in range(num_mboxes)
        )
        reader.expect_end()
        return cls(client_hellos=hellos, middleboxes=middleboxes)


def encode_extensions(extensions: list[Extension]) -> bytes:
    """Encode an extensions block (u16 total length prefix)."""
    body = b"".join(extension.encode() for extension in extensions)
    return Writer().write_vector(body, 2).getvalue()


def decode_extensions(reader: Reader) -> list[Extension]:
    """Decode an extensions block; absent block (no bytes left) is valid.

    A hello carrying the MiddleboxSupport extension twice is rejected
    outright: a stripped-and-re-added or smuggled duplicate is exactly what
    a downgrade box would produce, and "first one wins" parsing would let
    the two endpoints disagree about which copy is authoritative. Unknown
    extension types stay opaque (and round-trip byte-identically) — the
    legacy-interoperability behaviour P5 depends on.
    """
    if reader.remaining == 0:
        return []
    block = Reader(reader.read_vector(2))
    extensions = []
    support_seen = False
    while block.remaining:
        extension_type = block.read_u16()
        data = block.read_vector(2)
        if extension_type == int(ExtensionType.MIDDLEBOX_SUPPORT):
            if support_seen:
                raise DecodeError("duplicate MiddleboxSupport extension")
            support_seen = True
        extensions.append(Extension(extension_type, data))
    return extensions
