"""mdTLS wire structures (arXiv 2306.03573).

mdTLS replaces mbTLS's per-hop secondary handshakes with *delegation*:
each endpoint issues a signed warrant (a :class:`DelegationCertificate`)
binding a middlebox's identity, public key, and permissions to the
endpoint's own certificate chain, and every middlebox *proxy-signs* the
primary handshake transcript instead of negotiating its own session.  The
endpoints then verify the aggregate signature chain before installing hop
keys.

Three wire structures carry that design:

* :class:`DelegationCertificate` — the warrant itself, signed by the
  delegating endpoint over its TBS bytes and carried (batched) in the
  :class:`DelegationCertificateExtension` on ClientHello / ServerHello.
* :class:`ProxySignature` — a middlebox's signature over the handshake
  transcript hash, appended to the Finished flight in each direction.
* :class:`HopKeyDelivery` — the client's per-middlebox hop-secret
  delivery, RSA-encrypted under the warranted middlebox key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.errors import CertificateError, DecodeError
from repro.wire.codec import Reader, Writer
from repro.wire.extensions import Extension, ExtensionType
from repro.wire.handshake import HandshakeType

if TYPE_CHECKING:  # imported lazily at runtime: pki depends on wire.codec
    from repro.pki.certificate import Certificate
    from repro.pki.store import TrustStore

__all__ = [
    "DelegationCertificate",
    "DelegationCertificateExtension",
    "ProxySignature",
    "HopKeyDelivery",
    "PROXY_SIGNATURE_CONTEXT",
]

# Domain-separation prefix for proxy signatures: a middlebox signs this
# context, the direction byte, and the transcript hash — never raw
# transcript bytes — so a proxy signature can't be replayed as anything
# else (and vice versa).
PROXY_SIGNATURE_CONTEXT = b"mdtls proxy signature\x00"


@dataclass(frozen=True)
class DelegationCertificate:
    """An endpoint-issued warrant for one middlebox.

    Attributes:
        delegator: subject name of the issuing endpoint (its certificate
            chain leaf).
        middlebox: the warranted middlebox's name.
        permissions: the rights granted (``"read"`` / ``"read-write"``).
        not_before / not_after: validity window in simulated epoch seconds.
        middlebox_key: the middlebox public key the warrant binds.
        delegator_chain: the delegator's encoded certificate chain, leaf
            first, so a verifier can anchor the warrant in its trust store.
        signature: the delegator's signature over :meth:`tbs_bytes`.
    """

    delegator: str
    middlebox: str
    permissions: str
    not_before: float
    not_after: float
    middlebox_key: RSAPublicKey
    delegator_chain: tuple[bytes, ...]
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The byte string the delegating endpoint signs."""
        writer = Writer()
        writer.write_vector(self.delegator.encode(), 2)
        writer.write_vector(self.middlebox.encode(), 2)
        writer.write_vector(self.permissions.encode(), 2)
        writer.write_u64(int(self.not_before * 1000))
        writer.write_u64(int(self.not_after * 1000))
        writer.write_vector(self.middlebox_key.to_bytes(), 2)
        return writer.getvalue()

    def encode(self) -> bytes:
        writer = Writer()
        writer.write_vector(self.tbs_bytes(), 2)
        writer.write_u8(len(self.delegator_chain))
        for cert in self.delegator_chain:
            writer.write_vector(cert, 3)
        writer.write_vector(self.signature, 2)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "DelegationCertificate":
        outer = Reader(data)
        tbs = outer.read_vector(2)
        chain = tuple(outer.read_vector(3) for _ in range(outer.read_u8()))
        signature = outer.read_vector(2)
        outer.expect_end()
        reader = Reader(tbs)
        delegator = reader.read_vector(2).decode()
        middlebox = reader.read_vector(2).decode()
        permissions = reader.read_vector(2).decode()
        not_before = reader.read_u64() / 1000
        not_after = reader.read_u64() / 1000
        middlebox_key = RSAPublicKey.from_bytes(reader.read_vector(2))
        reader.expect_end()
        if not_after < not_before:
            raise DecodeError("delegation validity window is inverted")
        return cls(
            delegator=delegator,
            middlebox=middlebox,
            permissions=permissions,
            not_before=not_before,
            not_after=not_after,
            middlebox_key=middlebox_key,
            delegator_chain=chain,
            signature=signature,
        )

    @classmethod
    def issue(
        cls,
        *,
        delegator: str,
        delegator_key: RSAPrivateKey,
        delegator_chain: tuple[bytes, ...],
        middlebox: str,
        middlebox_key: RSAPublicKey,
        permissions: str = "read-write",
        not_before: float = 0.0,
        not_after: float = 10**9,
    ) -> "DelegationCertificate":
        """Build and sign a warrant with the delegator's private key."""
        unsigned = cls(
            delegator=delegator,
            middlebox=middlebox,
            permissions=permissions,
            not_before=not_before,
            not_after=not_after,
            middlebox_key=middlebox_key,
            delegator_chain=delegator_chain,
            signature=b"",
        )
        signature = delegator_key.sign(unsigned.tbs_bytes())
        return cls(
            delegator=delegator,
            middlebox=middlebox,
            permissions=permissions,
            not_before=not_before,
            not_after=not_after,
            middlebox_key=middlebox_key,
            delegator_chain=delegator_chain,
            signature=signature,
        )

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    def verify(
        self,
        trust_store: "TrustStore",
        *,
        now: float = 0.0,
        middlebox: str | None = None,
        middlebox_key: RSAPublicKey | None = None,
    ) -> "Certificate":
        """Verify the warrant; returns the delegator's verified leaf cert.

        Checks, in order: the delegator chain anchors in ``trust_store``,
        the chain leaf actually names :attr:`delegator`, the warrant
        signature verifies under the leaf key, the validity window covers
        ``now``, and (when given) the warranted middlebox name / key match
        the caller's expectation.

        Raises:
            CertificateError: on any failure, with the TLS alert name a
                real stack would send.
        """
        from repro.pki.certificate import Certificate

        try:
            chain = tuple(Certificate.decode(cert) for cert in self.delegator_chain)
        except DecodeError as exc:
            raise CertificateError(
                f"undecodable delegator chain in warrant for {self.middlebox!r}"
            ) from exc
        leaf = trust_store.validate_chain(chain, None, now)
        if leaf.subject != self.delegator:
            raise CertificateError(
                f"warrant delegator {self.delegator!r} does not match chain "
                f"leaf {leaf.subject!r}"
            )
        if not leaf.public_key.verify(self.tbs_bytes(), self.signature):
            raise CertificateError(
                f"bad delegation signature on warrant for {self.middlebox!r}"
            )
        if not self.valid_at(now):
            raise CertificateError(
                f"warrant for {self.middlebox!r} outside validity window",
                alert="certificate_expired",
            )
        if middlebox is not None and self.middlebox != middlebox:
            raise CertificateError(
                f"warrant names middlebox {self.middlebox!r}, expected "
                f"{middlebox!r}"
            )
        if middlebox_key is not None and self.middlebox_key != middlebox_key:
            raise CertificateError(
                f"warrant for {self.middlebox!r} binds a different "
                f"middlebox key"
            )
        return leaf


@dataclass(frozen=True)
class DelegationCertificateExtension:
    """The ``delegation_certificate`` hello extension: a warrant batch.

    The client's ClientHello carries its warrants for every on-path
    middlebox; the server's ServerHello answers with its own.  Its presence
    in a ClientHello is the in-band signal that the client speaks mdTLS —
    which is exactly what a downgrade box would strip.
    """

    warrants: tuple[DelegationCertificate, ...] = ()

    extension_type = ExtensionType.DELEGATION_CERTIFICATE

    def to_extension(self) -> Extension:
        writer = Writer()
        writer.write_u8(len(self.warrants))
        for warrant in self.warrants:
            writer.write_vector(warrant.encode(), 2)
        return Extension(int(self.extension_type), writer.getvalue())

    @classmethod
    def from_extension(cls, extension: Extension) -> "DelegationCertificateExtension":
        reader = Reader(extension.data)
        warrants = tuple(
            DelegationCertificate.decode(reader.read_vector(2))
            for _ in range(reader.read_u8())
        )
        reader.expect_end()
        return cls(warrants=warrants)


@dataclass(frozen=True)
class ProxySignature:
    """A middlebox's signature over the handshake transcript hash.

    One per middlebox per direction: after forwarding the client's
    Finished a middlebox appends its client-to-server proxy signature;
    after the server's Finished, its server-to-client one.  Endpoints
    verify the aggregate chain against the warranted keys before
    installing hop keys.
    """

    middlebox: str
    direction: int  # 0 = client-to-server, 1 = server-to-client
    signature: bytes

    msg_type = HandshakeType.MDTLS_PROXY_SIGNATURE

    @staticmethod
    def signed_payload(direction: int, transcript_hash: bytes) -> bytes:
        return PROXY_SIGNATURE_CONTEXT + bytes([direction]) + transcript_hash

    def encode_body(self) -> bytes:
        return (
            Writer()
            .write_vector(self.middlebox.encode(), 2)
            .write_u8(self.direction)
            .write_vector(self.signature, 2)
            .getvalue()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "ProxySignature":
        reader = Reader(body)
        middlebox = reader.read_vector(2).decode()
        direction = reader.read_u8()
        if direction not in (0, 1):
            raise DecodeError(f"unknown proxy-signature direction {direction}")
        signature = reader.read_vector(2)
        reader.expect_end()
        return cls(middlebox=middlebox, direction=direction, signature=signature)


@dataclass(frozen=True)
class HopKeyDelivery:
    """Per-middlebox hop-secret delivery, sealed to the warranted key.

    ``encrypted_secrets`` is the RSA-PKCS#1 encryption (under the warrant's
    middlebox key) of the two 32-byte hop secrets flanking that middlebox:
    the client-side hop followed by the server-side hop.
    """

    middlebox: str
    encrypted_secrets: bytes

    msg_type = HandshakeType.MDTLS_KEY_DELIVERY

    def encode_body(self) -> bytes:
        return (
            Writer()
            .write_vector(self.middlebox.encode(), 2)
            .write_vector(self.encrypted_secrets, 2)
            .getvalue()
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "HopKeyDelivery":
        reader = Reader(body)
        middlebox = reader.read_vector(2).decode()
        encrypted = reader.read_vector(2)
        reader.expect_end()
        return cls(middlebox=middlebox, encrypted_secrets=encrypted)
