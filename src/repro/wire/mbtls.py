"""mbTLS wire formats from Appendix A: Encapsulated records, key material,
and middlebox announcements.

* ``EncapsulatedRecord`` (ContentType 30): 1-byte subchannel ID followed by a
  complete inner TLS record. Secondary-session traffic between an endpoint
  and its middleboxes is multiplexed this way over the primary TCP stream.
* ``KeyMaterial`` (ContentType 31 inner record): the per-hop symmetric keys
  an endpoint hands each of its middleboxes after the secondary handshake.
* ``MiddleboxAnnouncement`` (ContentType 32 inner record): the empty message
  a server-side middlebox uses to optimistically announce itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer
from repro.wire.records import ContentType, Record, TLS12_VERSION

__all__ = ["EncapsulatedRecord", "KeyMaterial", "HopKeys", "MiddleboxAnnouncement"]


@dataclass(frozen=True)
class EncapsulatedRecord:
    """An mbTLS Encapsulated record: subchannel ID + inner record."""

    subchannel_id: int
    inner: Record

    def to_record(self) -> Record:
        if not 0 <= self.subchannel_id <= 0xFF:
            raise DecodeError("subchannel ID must fit in one byte")
        payload = bytes([self.subchannel_id]) + self.inner.encode()
        return Record(content_type=ContentType.MBTLS_ENCAPSULATED, payload=payload)

    @classmethod
    def from_record(cls, record: Record) -> "EncapsulatedRecord":
        if record.content_type != ContentType.MBTLS_ENCAPSULATED:
            raise DecodeError("not an Encapsulated record")
        if not record.payload:
            raise DecodeError("empty Encapsulated record")
        subchannel_id = record.payload[0]
        inner = Record.decode(record.payload[1:])
        return cls(subchannel_id=subchannel_id, inner=inner)


@dataclass(frozen=True)
class HopKeys:
    """Symmetric state for one hop: two directional keys, IVs, sequences.

    ``client_write`` protects data flowing in the client-to-server direction
    on this hop; ``server_write`` the reverse. Sequence numbers let a
    middlebox splice into the primary session mid-stream (e.g. on resumption
    or when it receives keys after data started flowing).
    """

    cipher_suite: int
    client_write_key: bytes
    client_write_iv: bytes
    server_write_key: bytes
    server_write_iv: bytes
    client_to_server_seq: int = 0
    server_to_client_seq: int = 0

    def encode(self) -> bytes:
        writer = Writer()
        writer.write_u16(TLS12_VERSION)
        writer.write_u64(self.client_to_server_seq)
        writer.write_u64(self.server_to_client_seq)
        writer.write_u16(self.cipher_suite)
        writer.write_u32(len(self.client_write_key))
        writer.write_u32(len(self.client_write_iv))
        writer.write_bytes(self.client_write_key)
        writer.write_bytes(self.client_write_iv)
        writer.write_bytes(self.server_write_key)
        writer.write_bytes(self.server_write_iv)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: Reader) -> "HopKeys":
        version = reader.read_u16()
        if version != TLS12_VERSION:
            raise DecodeError(f"unsupported version in key material: {version:#06x}")
        c2s_seq = reader.read_u64()
        s2c_seq = reader.read_u64()
        cipher_suite = reader.read_u16()
        key_len = reader.read_u32()
        iv_len = reader.read_u32()
        if key_len > 64 or iv_len > 64:
            raise DecodeError("implausible key/IV length in key material")
        client_write_key = reader.read_bytes(key_len)
        client_write_iv = reader.read_bytes(iv_len)
        server_write_key = reader.read_bytes(key_len)
        server_write_iv = reader.read_bytes(iv_len)
        return cls(
            cipher_suite=cipher_suite,
            client_write_key=client_write_key,
            client_write_iv=client_write_iv,
            server_write_key=server_write_key,
            server_write_iv=server_write_iv,
            client_to_server_seq=c2s_seq,
            server_to_client_seq=s2c_seq,
        )


@dataclass(frozen=True)
class KeyMaterial:
    """MBTLSKeyMaterial: the keys for a middlebox's two adjacent hops.

    ``toward_client`` protects the hop on the middlebox's client side;
    ``toward_server`` the hop on its server side. For the middlebox adjacent
    to the "bridge", one of these is the primary session's key block.
    """

    toward_client: HopKeys
    toward_server: HopKeys

    def encode_payload(self) -> bytes:
        first = self.toward_client.encode()
        return (
            Writer()
            .write_vector(first, 3)
            .write_vector(self.toward_server.encode(), 3)
            .getvalue()
        )

    def to_record(self) -> Record:
        return Record(
            content_type=ContentType.MBTLS_KEY_MATERIAL,
            payload=self.encode_payload(),
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "KeyMaterial":
        reader = Reader(payload)
        toward_client = HopKeys.decode(Reader(reader.read_vector(3)))
        toward_server = HopKeys.decode(Reader(reader.read_vector(3)))
        reader.expect_end()
        return cls(toward_client=toward_client, toward_server=toward_server)


@dataclass(frozen=True)
class MiddleboxAnnouncement:
    """MBTLSMiddleboxAnnouncement: empty; presence is the signal.

    We additionally carry the middlebox's claimed subchannel ID and display
    name in the enclosing EncapsulatedRecord, matching how our announcements
    ride subchannels (the paper's announcement body itself is empty).
    """

    def to_record(self) -> Record:
        return Record(
            content_type=ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT, payload=b""
        )

    @classmethod
    def from_record(cls, record: Record) -> "MiddleboxAnnouncement":
        if record.content_type != ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT:
            raise DecodeError("not a MiddleboxAnnouncement record")
        if record.payload:
            raise DecodeError("MiddleboxAnnouncement must be empty")
        return cls()
