"""Drivers binding sans-IO protocol engines to simulated sockets.

The engine never sees the socket and the socket never sees the engine;
the driver pumps bytes between them and hands protocol events to the
application. It also meters real CPU time spent inside the engine,
attributed per party — the measurement behind Figure 5.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.netsim.network import Socket

__all__ = ["CpuMeter", "EngineDriver"]


class CpuMeter:
    """Accumulates real (wall-measured) CPU time for one party."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.seconds = 0.0

    def measure(self):
        return _MeterContext(self)

    def reset(self) -> None:
        self.seconds = 0.0


class _MeterContext:
    def __init__(self, meter: CpuMeter) -> None:
        self._meter = meter
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._meter.seconds += time.perf_counter() - self._start
        return False


class EngineDriver:
    """Pumps one engine over one socket.

    Args:
        engine: any object with ``receive_bytes``, ``data_to_send`` and
            (optionally) ``start``.
        socket: the simulated socket to pump.
        on_event: callback invoked for each engine event.
        meter: optional CPU meter charged for engine processing time.
    """

    def __init__(
        self,
        engine,
        socket: Socket,
        on_event: Callable[[object], None] | None = None,
        meter: CpuMeter | None = None,
    ) -> None:
        self.engine = engine
        self.socket = socket
        self.on_event = on_event
        self.meter = meter if meter is not None else CpuMeter()
        socket.on_data(self._on_data)
        socket.on_connected(self._flush)

    def start(self) -> None:
        """Start the engine (e.g. send the ClientHello) and flush."""
        with self.meter.measure():
            self.engine.start()
        self._flush()

    def _on_data(self, data: bytes) -> None:
        with self.meter.measure():
            events = self.engine.receive_bytes(data)
        self._flush()
        if self.on_event is not None:
            for event in events:
                self.on_event(event)
        # Event handlers may have queued more data (e.g. an HTTP response).
        self._flush()

    def _flush(self) -> None:
        if not self.socket.connected or self.socket.closed:
            return
        data = self.engine.data_to_send()
        if data:
            self.socket.send(data)

    def send_application_data(self, data: bytes) -> None:
        with self.meter.measure():
            self.engine.send_application_data(data)
        self._flush()

    def close(self) -> None:
        with self.meter.measure():
            self.engine.close()
        self._flush()
        self.socket.close()
