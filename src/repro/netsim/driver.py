"""Drivers binding sans-IO protocol engines to simulated sockets.

The engine never sees the socket and the socket never sees the engine;
the driver pumps bytes between them and hands protocol events to the
application. It also meters real CPU time spent inside the engine,
attributed per party — the measurement behind Figure 5.

Drivers additionally own the session's *timers* (the engines are sans-IO
and clockless): an optional handshake timeout and an optional idle
timeout, both on the simulator's virtual clock. When the handshake timer
fires the driver first asks the engine to degrade gracefully (bypass
middleboxes whose secondary handshakes stalled — the paper's optimistic
fallback), and only tears the session down if that cannot produce a
working session. No session may hang past its timer horizon.
"""

from __future__ import annotations

import time
from typing import Callable

from repro import obs
from repro.io import DuplexPump, flush_connection
from repro.netsim.network import Socket
from repro.netsim.sim import Timer

__all__ = ["CpuMeter", "DuplexDriver", "EngineDriver"]


class CpuMeter:
    """Accumulates real (wall-measured) CPU time for one party."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.seconds = 0.0

    def measure(self):
        return _MeterContext(self)

    def reset(self) -> None:
        self.seconds = 0.0


class _MeterContext:
    def __init__(self, meter: CpuMeter) -> None:
        self._meter = meter
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._meter.seconds += time.perf_counter() - self._start
        return False


class EngineDriver:
    """Pumps one engine over one socket.

    Args:
        engine: any object with ``receive_bytes``, ``data_to_send`` and
            (optionally) ``start``.
        socket: the simulated socket to pump.
        on_event: callback invoked for each engine event.
        meter: optional CPU meter charged for engine processing time.
        handshake_timeout: seconds (virtual) the session may take to
            establish before the driver degrades or fails it. ``None``
            disables the timer (the historical behaviour).
        idle_timeout: seconds of data-phase silence before the driver
            closes the session cleanly. ``None`` disables it.
        on_timeout: callback ``on_timeout(kind)`` — ``"handshake"`` or
            ``"idle"`` — invoked when a timer ends the session; retry
            supervisors hook this to schedule a redial.
    """

    def __init__(
        self,
        engine,
        socket: Socket,
        on_event: Callable[[object], None] | None = None,
        meter: CpuMeter | None = None,
        handshake_timeout: float | None = None,
        idle_timeout: float | None = None,
        on_timeout: Callable[[str], None] | None = None,
    ) -> None:
        self.engine = engine
        self.socket = socket
        self.on_event = on_event
        self.meter = meter if meter is not None else CpuMeter()
        self.on_timeout = on_timeout
        self.timed_out: str | None = None
        self.transport_closed = False
        self._handshake_timer: Timer | None = None
        self._idle_timer: Timer | None = None
        sim = socket.host.network.sim
        if handshake_timeout is not None:
            self._handshake_timer = Timer(
                sim, handshake_timeout, self._on_handshake_deadline
            )
        if idle_timeout is not None:
            self._idle_timer = Timer(sim, idle_timeout, self._on_idle_deadline)
        socket.on_data(self._on_data)
        socket.on_connected(self._flush)
        socket.on_close(self._on_transport_close)

    def start(self) -> None:
        """Start the engine (e.g. send the ClientHello) and flush."""
        with self.meter.measure():
            self.engine.start()
        self._flush()

    # ------------------------------------------------------------------ pump

    def _on_data(self, data: bytes) -> None:
        with self.meter.measure():
            events = self.engine.receive_bytes(data)
        self._flush()
        self._dispatch(events)
        # Event handlers may have queued more data (e.g. an HTTP response).
        self._flush()
        if getattr(self.engine, "closed", False) and not self.socket.closed:
            # The engine ended the session (close_notify or fatal alert):
            # its goodbye has been flushed, so drop the transport too rather
            # than leaving the TCP stream half-open.
            self.socket.close()
        self._service_timers()

    def _dispatch(self, events) -> None:
        if self.on_event is not None:
            for event in events:
                self.on_event(event)

    def _flush(self) -> None:
        if not self.socket.connected or self.socket.closed:
            return
        flush_connection(self.engine, self.socket.send)

    def send_application_data(self, data: bytes) -> None:
        with self.meter.measure():
            self.engine.send_application_data(data)
        self._flush()
        if self._idle_timer is not None:
            self._idle_timer.touch()

    def close(self) -> None:
        with self.meter.measure():
            self.engine.close()
        self._flush()
        self.socket.close()
        self._cancel_timers()

    # ---------------------------------------------------------------- timers

    @property
    def session_ready(self) -> bool:
        """Whether the engine considers the session fully established."""
        return bool(
            getattr(self.engine, "established", False)
            or getattr(self.engine, "handshake_complete", False)
        )

    @property
    def session_over(self) -> bool:
        return bool(getattr(self.engine, "closed", False)) or self.socket.closed

    @property
    def pending_timer_count(self) -> int:
        """How many of this driver's deadline timers are still armed.

        Diagnostic surface for stuck-session reports: a live session with
        zero armed timers can never make timer-driven progress again.
        """
        return sum(
            1
            for timer in (self._handshake_timer, self._idle_timer)
            if timer is not None and not timer.fired
        )

    def _service_timers(self) -> None:
        if self.session_over:
            self._cancel_timers()
            return
        if self.session_ready and self._handshake_timer is not None:
            self._handshake_timer.cancel()
            self._handshake_timer = None
        if self._idle_timer is not None:
            self._idle_timer.touch()

    def _cancel_timers(self) -> None:
        if self._handshake_timer is not None:
            self._handshake_timer.cancel()
            self._handshake_timer = None
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None

    def _on_handshake_deadline(self) -> None:
        self._handshake_timer = None
        if self.session_ready or self.session_over:
            return
        # Graceful degradation first: if the primary session is up but
        # secondary (middlebox) handshakes stalled, bypass them (§3.4's
        # optimistic fallback) instead of killing a salvageable session.
        bypass = getattr(self.engine, "bypass_pending_middleboxes", None)
        if bypass is not None:
            events = bypass("secondary handshake timed out")
            self._flush()
            self._dispatch(events)
            if self.session_ready:
                self._service_timers()
                return
        self._fail("handshake")

    def _on_idle_deadline(self) -> None:
        self._idle_timer = None
        if self.session_over:
            return
        self._fail("idle")

    def _fail(self, kind: str) -> None:
        """Tear the session down with a clean close, never a hang."""
        from repro.tls.events import ConnectionClosed

        self.timed_out = kind
        obs.counter("driver_timeouts", kind=kind).inc()
        obs.tracer().mark("driver.timeout", kind=kind)
        self._cancel_timers()
        try:
            with self.meter.measure():
                self.engine.close()
            self._flush()
        finally:
            self.socket.close()
        self._dispatch([ConnectionClosed(error=f"{kind} timeout")])
        if self.on_timeout is not None:
            self.on_timeout(kind)

    # ------------------------------------------------------------- transport

    def _on_transport_close(self) -> None:
        """The peer (or the network) closed the TCP stream under us."""
        self.transport_closed = True
        self._cancel_timers()
        handle = getattr(self.engine, "peer_closed", None)
        if handle is None:
            handle = getattr(self.engine, "handle_transport_close", None)
        if handle is not None:
            self._dispatch(handle())


class DuplexDriver:
    """Pumps one :class:`~repro.io.DuplexConnection` between two sockets.

    The down socket is bound at construction; the up socket may be bound
    late via :meth:`bind_up` (optimistic split TCP dials the onward segment
    after the first client flight). Close handling is symmetric: when one
    segment dies, the engine gets to say goodbye toward the survivor
    (``peer_closed_down``/``peer_closed_up``) before that segment is shut
    down — no half-open forwarding state is left behind.
    """

    def __init__(
        self,
        engine,
        down_socket: Socket,
        meter: CpuMeter | None = None,
        on_event: Callable[[object], None] | None = None,
    ) -> None:
        self.engine = engine
        self.down = down_socket
        self.up: Socket | None = None
        self.meter = meter if meter is not None else CpuMeter()
        self.on_event = on_event
        self._pump = DuplexPump(engine, down_socket)
        down_socket.on_data(self._on_down_data)
        down_socket.on_close(self._on_down_close)

    def bind_up(self, socket: Socket) -> None:
        """Attach the server-facing segment and flush anything pending."""
        self.up = socket
        self._pump.bind_up(socket)
        socket.on_data(self._on_up_data)
        socket.on_close(self._on_up_close)
        self._flush()

    # ------------------------------------------------------------------ pump

    def _on_down_data(self, data: bytes) -> None:
        with self.meter.measure():
            events = self.engine.receive_down(data)
        self._dispatch(events)
        self._after_down_data()
        self._flush()
        self._close_if_engine_done()

    def _on_up_data(self, data: bytes) -> None:
        with self.meter.measure():
            events = self.engine.receive_up(data)
        self._dispatch(events)
        self._flush()
        self._close_if_engine_done()

    def _close_if_engine_done(self) -> None:
        """A fatal alert closed the engine mid-receive: drop both segments
        (alerts were flushed first) so no party is left half-open."""
        if not getattr(self.engine, "closed", False):
            return
        if self.up is not None and not self.up.closed:
            self.up.close()
        if not self.down.closed:
            self.down.close()

    def _after_down_data(self) -> None:
        """Hook between receive and flush (subclasses dial onward here)."""

    def _dispatch(self, events) -> None:
        if self.on_event is not None:
            for event in events:
                self.on_event(event)

    def _flush(self) -> None:
        self._pump.flush()

    # ------------------------------------------------------------- transport

    def _on_down_close(self) -> None:
        with self.meter.measure():
            events = self.engine.peer_closed_down()
        self._dispatch(events)
        if self.up is not None and not self.up.closed:
            self._flush()
            self.up.close()

    def _on_up_close(self) -> None:
        with self.meter.measure():
            events = self.engine.peer_closed_up()
        self._dispatch(events)
        if not self.down.closed:
            self._flush()
            self.down.close()
