"""Discrete-event network simulator: the 'Internet' the protocols run over."""

from repro.netsim.adversary import (
    DroppingTap,
    GlobalAdversary,
    MutatingTap,
    RecordingTap,
    Wiretap,
)
from repro.netsim.driver import CpuMeter, DuplexDriver, EngineDriver
from repro.netsim.faults import (
    AppliedFault,
    ChaosTap,
    CorruptionBurst,
    FaultInjector,
    FaultPlan,
    HostCrash,
    LinkPartition,
    LossBurst,
    StreamStall,
    chaos_schedule,
)
from repro.netsim.filters import FilterPolicy, TLSFilter
from repro.netsim.fuzz import (
    MUTATION_KINDS,
    AppliedMutation,
    ChunkMutator,
    FuzzCase,
    FuzzTap,
)
from repro.netsim.network import Host, InterceptedFlow, Network, Socket, Stream, Tap
from repro.netsim.sim import Simulator, Timer
from repro.netsim.trace import TraceEvent, render_trace, trace_session

__all__ = [
    "DroppingTap",
    "GlobalAdversary",
    "MutatingTap",
    "RecordingTap",
    "Wiretap",
    "CpuMeter",
    "DuplexDriver",
    "EngineDriver",
    "AppliedFault",
    "ChaosTap",
    "CorruptionBurst",
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "LinkPartition",
    "LossBurst",
    "StreamStall",
    "chaos_schedule",
    "FilterPolicy",
    "TLSFilter",
    "MUTATION_KINDS",
    "AppliedMutation",
    "ChunkMutator",
    "FuzzCase",
    "FuzzTap",
    "Host",
    "InterceptedFlow",
    "Network",
    "Socket",
    "Stream",
    "Tap",
    "Simulator",
    "Timer",
    "TraceEvent",
    "render_trace",
    "trace_session",
]
