"""Firewalls and traffic normalizers — the deployability hazard of Table 2.

The question §5.1 answers empirically is: do middleboxes in real networks
(firewalls, IDSes, normalizers) drop TLS streams that carry mbTLS's new
record types and extensions? These taps model the observed spectrum of
filter behaviour so the Table 2 benchmark can run the same experiment over
a synthetic population of client networks.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import DecodeError
from repro.netsim.network import Host, Stream, Tap
from repro.wire.records import ContentType, RecordBuffer

__all__ = ["FilterPolicy", "TLSFilter"]

_STANDARD_TYPES = {
    ContentType.CHANGE_CIPHER_SPEC,
    ContentType.ALERT,
    ContentType.HANDSHAKE,
    ContentType.APPLICATION_DATA,
}


class FilterPolicy(Enum):
    """How a network's middlebox treats TLS streams it does not terminate.

    PASSTHROUGH: forwards TCP payloads untouched (what §5.1 found everywhere:
        filters in the wild do not meddle with payload bytes of flows they
        don't terminate).
    GRAMMAR_CHECK: parses record framing; forwards anything that frames as
        TLS records (unknown content types included), kills streams that do
        not parse at all.
    DROP_UNKNOWN_TYPES: silently drops records whose ContentType it does not
        recognize (a hypothetical strict normalizer; would break mbTLS
        discovery but not legacy TLS).
    RESET_ON_UNKNOWN: kills the whole connection on the first unknown
        ContentType (a hypothetical paranoid firewall).
    """

    PASSTHROUGH = "passthrough"
    GRAMMAR_CHECK = "grammar_check"
    DROP_UNKNOWN_TYPES = "drop_unknown_types"
    RESET_ON_UNKNOWN = "reset_on_unknown"


class TLSFilter(Tap):
    """A per-stream filter applying a :class:`FilterPolicy`.

    Keeps an independent record parser per direction, like a real
    flow-tracking middlebox.
    """

    def __init__(self, policy: FilterPolicy) -> None:
        self.policy = policy
        self._buffers: dict[str, RecordBuffer] = {}
        self.killed = False
        self.dropped_records = 0

    def process(self, sender: Host, data: bytes, stream: Stream) -> bytes | None:
        if self.policy == FilterPolicy.PASSTHROUGH:
            return data
        if self.killed:
            return None
        buffer = self._buffers.setdefault(sender.name, RecordBuffer())
        buffer.feed(data)
        forwarded = bytearray()
        try:
            records = buffer.pop_records()
        except DecodeError:
            # Not TLS at all: grammar checkers kill such flows.
            self.killed = True
            return None
        for record in records:
            if record.content_type in _STANDARD_TYPES:
                forwarded += record.encode()
                continue
            if self.policy == FilterPolicy.GRAMMAR_CHECK:
                forwarded += record.encode()
            elif self.policy == FilterPolicy.DROP_UNKNOWN_TYPES:
                self.dropped_records += 1
            elif self.policy == FilterPolicy.RESET_ON_UNKNOWN:
                self.killed = True
                return None
        return bytes(forwarded) if forwarded else None
