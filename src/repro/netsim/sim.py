"""Discrete-event simulator core: virtual clock plus an event scheduler.

Everything in the simulated network happens through :meth:`Simulator.schedule`;
running the simulator advances virtual time from event to event, so a WAN
round trip costs microseconds of real time and latency measurements are
exact rather than noisy.

Pending events live in a hierarchical :class:`~repro.netsim.wheel.TimerWheel`
(O(1) insert and *eager* O(1) cancel — cancelled timers free their slot
immediately instead of lingering until popped, which matters when a fleet
run arms and touches 10^5+ idle timers).  Events of the earliest busy tick
are drained into a small exact-order ready heap, so firing order is still
strict ``(time, seq)`` — identical to the old single-heap scheduler.

The scheduler is reentrant: a callback may call :meth:`Simulator.run`,
:meth:`Simulator.run_until`, or :meth:`Simulator.step` again, which
processes further events in order and then returns control — the
orchestrator uses this to interleave many sessions per tick.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro import obs
from repro.errors import SimulationError
from repro.netsim.wheel import TimerWheel, WheelEntry

__all__ = ["Simulator", "ScheduledEvent", "Timer"]


class ScheduledEvent(WheelEntry):
    """Handle for a scheduled callback; supports O(1) cancellation."""

    __slots__ = ("callback", "cancelled", "_sim", "_in_ready")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: "Simulator | None" = None,
    ) -> None:
        super().__init__(time, seq)
        self.callback = callback
        self.cancelled = False
        self._sim = sim
        self._in_ready = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._discard(self)


class Simulator:
    """An event-driven virtual clock."""

    def __init__(self, wheel_resolution: float = 1e-4) -> None:
        self.now = 0.0
        self._wheel = TimerWheel(wheel_resolution)
        # Exact-order staging heap for the tick being fired: the wheel hands
        # over one expired tick at a time and events scheduled *into* an
        # already-expired tick land here directly.  Every ready event's tick
        # is < the wheel's current tick and tick_of() is monotone in time,
        # so ready events always precede every event still in the wheel.
        self._ready: list[ScheduledEvent] = []
        self._ready_live = 0
        self._sequence = itertools.count()
        self._events_processed = 0
        # Virtual time is the observability time source: bind the current
        # plane's clock here so every metric and span recorded while this
        # simulator drives the session carries deterministic sim time.
        # (Scenario runners that install a fresh plane do so *before*
        # building the network, so the fresh plane gets bound.)
        obs.plane().bind_clock(lambda: self.now)

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        event = ScheduledEvent(self.now + delay, next(self._sequence), callback, self)
        if self._wheel.tick_of(event.time) < self._wheel.current_tick:
            # The event's tick is already being fired (same-tick schedule
            # from inside a callback): stage it directly, in exact order.
            event._in_ready = True
            heapq.heappush(self._ready, event)
            self._ready_live += 1
        else:
            self._wheel.insert(event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def step(self) -> bool:
        """Process exactly one event; False when none remain (reentrant)."""
        event = self._peek()
        if event is None:
            return False
        self._fire(event)
        return True

    def peek_time(self) -> float | None:
        """Time of the next pending event, or ``None`` when drained."""
        event = self._peek()
        return None if event is None else event.time

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Process events in time order.

        Args:
            until: stop once the clock would pass this time (the clock is
                left at ``until``). ``None`` runs until the queue drains.
            max_events: safety valve against runaway event loops.
        """
        processed = 0
        while True:
            event = self._peek()
            if event is None:
                break
            if until is not None and event.time > until:
                self.now = until
                return
            self._fire(event)
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        if until is not None:
            self.now = max(self.now, until)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 300.0,
                  max_events: int = 10_000_000) -> bool:
        """Run until ``predicate()`` is true; returns False on timeout/drain."""
        deadline = self.now + timeout
        processed = 0
        while True:
            event = self._peek()
            if event is None:
                break
            if predicate():
                return True
            if event.time > deadline:
                # Leave it pending; the deadline passed first.
                self.now = deadline
                return predicate()
            self._fire(event)
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        return predicate()

    @property
    def pending_events(self) -> int:
        return len(self._wheel) + self._ready_live

    # ------------------------------------------------------------ internals

    def _peek(self) -> ScheduledEvent | None:
        """Next live event, staged at the top of the ready heap."""
        while True:
            ready = self._ready
            while ready and ready[0].cancelled:
                heapq.heappop(ready)  # cancelled while staged; drop lazily
            if ready:
                return ready[0]
            batch = self._wheel.pop_next_tick()
            if batch is None:
                return None
            for event in batch:
                event._in_ready = True
                heapq.heappush(ready, event)
            self._ready_live += len(batch)

    def _fire(self, event: ScheduledEvent) -> None:
        """Pop the staged ``event`` (the ready-heap top) and run it."""
        heapq.heappop(self._ready)
        self._ready_live -= 1
        event._in_ready = False
        self.now = event.time
        event.callback()
        self._events_processed += 1

    def _discard(self, event: ScheduledEvent) -> None:
        """Eagerly reclaim a cancelled event's wheel slot."""
        if self._wheel.remove(event):
            return
        if event._in_ready:
            # Staged in the ready heap: uncount now, drop at next peek.
            event._in_ready = False
            self._ready_live -= 1


class Timer:
    """A cancellable, reschedulable deadline on the virtual clock.

    Drivers use these for handshake and idle timeouts: ``touch()`` pushes
    the deadline back (activity happened), ``cancel()`` disarms it, and the
    callback fires at most once unless re-armed.  Cancellation and
    re-arming reclaim the underlying wheel slot eagerly, so a fleet's worth
    of touched idle timers leaves no garbage behind.
    """

    def __init__(self, sim: Simulator, timeout: float, callback: Callable[[], None]) -> None:
        self._sim = sim
        self.timeout = timeout
        self._callback = callback
        self.fired = False
        self._event: ScheduledEvent | None = sim.schedule(timeout, self._fire)

    def _fire(self) -> None:
        self._event = None
        self.fired = True
        self._callback()

    @property
    def armed(self) -> bool:
        return self._event is not None

    def touch(self) -> None:
        """Reset the deadline to ``timeout`` seconds from now."""
        if self._event is not None:
            self._event.cancel()
        self.fired = False
        self._event = self._sim.schedule(self.timeout, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
