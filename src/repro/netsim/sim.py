"""Discrete-event simulator core: virtual clock plus an event scheduler.

Everything in the simulated network happens through :meth:`Simulator.schedule`;
running the simulator advances virtual time from event to event, so a WAN
round trip costs microseconds of real time and latency measurements are
exact rather than noisy.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro import obs
from repro.errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent", "Timer"]


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """An event-driven virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        # Virtual time is the observability time source: bind the current
        # plane's clock here so every metric and span recorded while this
        # simulator drives the session carries deterministic sim time.
        # (Scenario runners that install a fresh plane do so *before*
        # building the network, so the fresh plane gets bound.)
        obs.plane().bind_clock(lambda: self.now)

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        event = ScheduledEvent(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Process events in time order.

        Args:
            until: stop once the clock would pass this time (the clock is
                left at ``until``). ``None`` runs until the queue drains.
            max_events: safety valve against runaway event loops.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = event.time
            event.callback()
            processed += 1
            self._events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        if until is not None:
            self.now = max(self.now, until)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 300.0,
                  max_events: int = 10_000_000) -> bool:
        """Run until ``predicate()`` is true; returns False on timeout/drain."""
        deadline = self.now + timeout
        processed = 0
        while self._queue:
            if predicate():
                return True
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time > deadline:
                # Put it back; the deadline passed first.
                heapq.heappush(self._queue, event)
                self.now = deadline
                return predicate()
            self.now = event.time
            event.callback()
            processed += 1
            self._events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        return predicate()

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)


class Timer:
    """A cancellable, reschedulable deadline on the virtual clock.

    Drivers use these for handshake and idle timeouts: ``touch()`` pushes
    the deadline back (activity happened), ``cancel()`` disarms it, and the
    callback fires at most once unless re-armed.
    """

    def __init__(self, sim: Simulator, timeout: float, callback: Callable[[], None]) -> None:
        self._sim = sim
        self.timeout = timeout
        self._callback = callback
        self.fired = False
        self._event: ScheduledEvent | None = sim.schedule(timeout, self._fire)

    def _fire(self) -> None:
        self._event = None
        self.fired = True
        self._callback()

    @property
    def armed(self) -> bool:
        return self._event is not None

    def touch(self) -> None:
        """Reset the deadline to ``timeout`` seconds from now."""
        if self._event is not None:
            self._event.cancel()
        self.fired = False
        self._event = self._sim.schedule(self.timeout, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
