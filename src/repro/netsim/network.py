"""Simulated network: hosts, links, routing, and split-TCP streams.

The model is deliberately at the granularity the paper's evaluation needs:

* **Links** have propagation latency and bandwidth; routes are shortest
  paths over the link graph.
* **Streams** are reliable, in-order, connection-oriented byte pipes with a
  one-RTT setup handshake (SYN/SYN-ACK) — the properties of TCP that matter
  for handshake-latency accounting — modelled fluidly (serialization at the
  bottleneck rate plus end-to-end propagation delay).
* **Interception**: a host on the path may register a transparent
  interceptor for a port; connections through it are *split* there, exactly
  how the paper's middleboxes "optimistically split the TCP connection".
  Hosts without an interceptor forward silently (a packet-level relay).
* **Taps** attach to a stream and may observe, modify, drop, or inject
  bytes — the active network adversary of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.errors import NetworkError, SimulationError
from repro.netsim.sim import Simulator

__all__ = ["Network", "Host", "Stream", "Socket", "Tap", "InterceptedFlow"]

_DEFAULT_BANDWIDTH = 1e9  # 1 Gbps


class Tap:
    """Base class for on-path adversaries/filters attached to a stream.

    Subclasses override :meth:`process`. Returning ``None`` drops the chunk;
    returning modified bytes forwards them; ``chunk`` unchanged passes
    through. ``observe``-only taps just record and return the chunk.
    """

    def process(self, sender: "Host", data: bytes, stream: "Stream") -> bytes | None:
        return data


class Socket:
    """One endpoint of a duplex stream. All I/O is callback-based."""

    def __init__(self, host: "Host", stream: "Stream", side: int) -> None:
        self.host = host
        self._stream = stream
        self._side = side
        self.connected = False
        self.closed = False
        self.aborted = False
        self.abort_reason: str | None = None
        self._on_data: Callable[[bytes], None] | None = None
        self._on_connected: Callable[[], None] | None = None
        self._on_close: Callable[[], None] | None = None
        self._pending_out = bytearray()
        self._pending_in = bytearray()

    # Registration -----------------------------------------------------

    def on_data(self, callback: Callable[[bytes], None]) -> None:
        self._on_data = callback
        if self._pending_in:
            data = bytes(self._pending_in)
            self._pending_in.clear()
            callback(data)

    def on_connected(self, callback: Callable[[], None]) -> None:
        self._on_connected = callback
        if self.connected:
            callback()

    def on_close(self, callback: Callable[[], None]) -> None:
        self._on_close = callback

    # I/O ----------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Queue bytes; they flow once the connection is established.

        Sending on a closed or aborted socket raises :class:`NetworkError`
        (the bytes could never flow; silently queueing them would let a
        dead connection masquerade as a slow one).
        """
        if self.closed:
            reason = f": {self.abort_reason}" if self.abort_reason else ""
            raise NetworkError(f"socket is closed{reason}")
        if not data:
            return
        if not self.connected:
            self._pending_out += data
            return
        self._stream.transmit(self._side, bytes(data))

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._stream.close_from(self._side)

    # Internal (called by Stream) ------------------------------------------

    def _established(self) -> None:
        self.connected = True
        if self._pending_out:
            data = bytes(self._pending_out)
            self._pending_out.clear()
            self._stream.transmit(self._side, data)
        if self._on_connected is not None:
            self._on_connected()

    def _deliver(self, data: bytes) -> None:
        if self.closed:
            return
        if self._on_data is None:
            self._pending_in += data
        else:
            self._on_data(data)

    def _peer_closed(self) -> None:
        if not self.closed:
            self.closed = True
            if self._on_close is not None:
                self._on_close()

    def _abort(self, reason: str) -> None:
        """Hard-kill this endpoint (RST semantics): no more I/O either way."""
        if self.closed:
            return
        self.closed = True
        self.aborted = True
        self.abort_reason = reason
        self._pending_out.clear()
        self._pending_in.clear()
        if self._on_close is not None:
            self._on_close()


class Stream:
    """A reliable duplex byte pipe between two hosts along a path of links.

    Fluid model: per-direction serialization at the bottleneck bandwidth,
    plus the summed propagation delay of the path.
    """

    def __init__(
        self,
        network: "Network",
        a: "Host",
        b: "Host",
        latency: float,
        bandwidth: float,
        path: tuple[str, ...] = (),
    ) -> None:
        self.network = network
        self.latency = latency
        self.bandwidth = bandwidth
        self.path = path or (a.name, b.name)
        self.link = f"{self.path[0]}-{self.path[-1]}"
        self.endpoints = (Socket(a, self, 0), Socket(b, self, 1))
        self.taps: list[Tap] = []
        self._next_free = [0.0, 0.0]
        self.bytes_transferred = [0, 0]
        self.aborted = False

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def add_tap(self, tap: Tap) -> None:
        self.taps.append(tap)

    def establish(self) -> None:
        """Complete the SYN/SYN-ACK exchange (scheduled by Network)."""
        if self.aborted:
            return
        for socket in self.endpoints:
            socket._established()

    def transmit(self, side: int, data: bytes) -> None:
        sender = self.endpoints[side].host
        for tap in self.taps:
            result = tap.process(sender, data, self)
            if result is None:
                obs.counter("net_chunks_dropped", link=self.link).inc()
                return  # dropped on the wire
            if result is not data and result != data:
                obs.counter("net_chunks_mutated", link=self.link).inc()
            data = result
            if not data:
                obs.counter("net_chunks_dropped", link=self.link).inc()
                return
        self._schedule_delivery(side, data)

    def inject(self, toward_side: int, data: bytes) -> None:
        """(Adversary) place bytes on the wire toward one endpoint."""
        self._schedule_delivery(1 - toward_side, data)

    def _schedule_delivery(self, side: int, data: bytes) -> None:
        if self.aborted:
            return  # bytes in flight on a reset connection evaporate
        sim = self.sim
        serialization = len(data) * 8 / self.bandwidth
        depart = max(sim.now, self._next_free[side])
        self._next_free[side] = depart + serialization
        arrival = depart + serialization + self.latency
        receiver = self.endpoints[1 - side]
        self.bytes_transferred[side] += len(data)
        obs.counter("net_chunks_delivered", link=self.link).inc()
        obs.counter("net_bytes_delivered", link=self.link).inc(len(data))
        sim.schedule_at(arrival, lambda: receiver._deliver(data))

    def close_from(self, side: int) -> None:
        # The close (FIN) is ordered behind any bytes still serializing in
        # this direction, like TCP's in-order delivery guarantees.
        peer = self.endpoints[1 - side]
        depart = max(self.sim.now, self._next_free[side])
        self.sim.schedule_at(depart + self.latency, peer._peer_closed)

    def abort(self, reason: str, at_host: str | None = None) -> None:
        """Reset the connection (host crash, refused SYN, hard failure).

        The socket at ``at_host`` dies immediately; the far endpoint
        observes the reset one propagation delay later (an RST crossing the
        path). With ``at_host=None`` both ends die immediately.
        """
        if self.aborted:
            return
        self.aborted = True
        for socket in self.endpoints:
            if at_host is not None and socket.host.name != at_host:
                self.sim.schedule(self.latency, lambda s=socket: s._abort(reason))
            else:
                socket._abort(reason)


@dataclass
class InterceptedFlow:
    """Handed to an interceptor when a connection is split at its host.

    Attributes:
        socket: the accepted, client-facing socket.
        destination: the hostname the client was actually connecting to.
        port: destination port.
        source: the client-side host the segment came from.
    """

    socket: Socket
    destination: str
    port: int
    source: str
    _network: "Network" = field(repr=False, default=None)
    _remaining_path: tuple[str, ...] = ()

    def dial_onward(self) -> Socket:
        """Open the next split segment toward the original destination."""
        return self._network._connect_along(
            list(self._remaining_path), self.destination, self.port
        )


class Host:
    """A machine attached to the network."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.alive = True
        self._listeners: dict[int, Callable[[Socket, str], None]] = {}
        self._interceptors: dict[int, Callable[[InterceptedFlow], None]] = {}

    def listen(self, port: int, acceptor: Callable[[Socket, str], None]) -> None:
        """Accept connections to this host: acceptor(socket, source_name)."""
        self._listeners[port] = acceptor

    def intercept(self, port: int, interceptor: Callable[[InterceptedFlow], None]) -> None:
        """Transparently intercept connections *through* this host."""
        self._interceptors[port] = interceptor

    def stop_intercepting(self, port: int) -> None:
        self._interceptors.pop(port, None)

    def stop_listening(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(self, destination: str, port: int) -> Socket:
        """Open a (possibly intercepted) connection toward ``destination``."""
        if not self.alive:
            raise NetworkError(f"host {self.name!r} is down")
        return self.network.connect(self.name, destination, port)

    def __repr__(self) -> str:
        return f"Host({self.name!r})"


class Network:
    """The topology: hosts, links, and connection plumbing."""

    def __init__(self, sim: Simulator | None = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], tuple[float, float]] = {}
        self._adjacency: dict[str, list[str]] = {}
        self._stream_taps: list[Callable[[Stream, str, str], None]] = []
        self.streams: list[Stream] = []

    # Topology -----------------------------------------------------------

    def add_host(self, name: str) -> Host:
        if name in self.hosts:
            raise SimulationError(f"duplicate host {name!r}")
        host = Host(self, name)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError as exc:
            raise SimulationError(f"unknown host {name!r}") from exc

    def add_link(
        self, a: str, b: str, latency: float, bandwidth: float = _DEFAULT_BANDWIDTH
    ) -> None:
        """Add a bidirectional link with one-way ``latency`` seconds."""
        for name in (a, b):
            if name not in self.hosts:
                raise SimulationError(f"unknown host {name!r}")
        self._links[(a, b)] = (latency, bandwidth)
        self._links[(b, a)] = (latency, bandwidth)
        self._adjacency.setdefault(a, []).append(b)
        self._adjacency.setdefault(b, []).append(a)

    def path_between(self, src: str, dst: str) -> list[str]:
        """Shortest path (BFS by hop count) including both endpoints."""
        if src == dst:
            raise SimulationError("src and dst are the same host")
        frontier = [src]
        parents: dict[str, str] = {src: src}
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for neighbor in self._adjacency.get(node, []):
                    if neighbor not in parents:
                        parents[neighbor] = node
                        if neighbor == dst:
                            path = [dst]
                            while path[-1] != src:
                                path.append(parents[path[-1]])
                            return list(reversed(path))
                        nxt.append(neighbor)
            frontier = nxt
        raise NetworkError(f"no route from {src!r} to {dst!r}")

    def path_metrics(self, path: list[str]) -> tuple[float, float]:
        """(total one-way latency, bottleneck bandwidth) along ``path``."""
        latency = 0.0
        bandwidth = float("inf")
        for a, b in zip(path, path[1:]):
            try:
                link_latency, link_bandwidth = self._links[(a, b)]
            except KeyError as exc:
                raise NetworkError(f"no link {a!r}-{b!r}") from exc
            latency += link_latency
            bandwidth = min(bandwidth, link_bandwidth)
        return latency, bandwidth

    # Failures -------------------------------------------------------------

    def crash_host(self, name: str) -> None:
        """Kill the processes on a host: listeners and interceptors vanish,
        every established connection terminating there resets, and new SYNs
        are refused until :meth:`restart_host`.

        The box keeps forwarding at the packet level (links stay up), so a
        crashed *middlebox* is transparently bypassed by later connections —
        the degradation the paper's optimistic-announcement design allows.
        Use a link partition to model the whole box falling off the network.
        """
        host = self.host(name)
        host.alive = False
        host._listeners.clear()
        host._interceptors.clear()
        for stream in self.streams:
            if not stream.aborted and any(
                socket.host is host for socket in stream.endpoints
            ):
                stream.abort(f"host {name} crashed", at_host=name)

    def restart_host(self, name: str) -> None:
        """Bring a crashed host back up (services must re-register)."""
        self.host(name).alive = True

    # Taps ----------------------------------------------------------------

    def on_new_stream(self, hook: Callable[[Stream, str, str], None]) -> None:
        """Register a hook invoked for every new stream: hook(stream, a, b).

        Adversaries and per-network filters attach their taps here.
        """
        self._stream_taps.append(hook)

    # Connections ----------------------------------------------------------

    def connect(self, src: str, destination: str, port: int) -> Socket:
        """Connect from ``src`` toward ``destination``, splitting at
        interceptors along the way. Returns the client-side socket."""
        path = self.path_between(src, destination)
        return self._connect_along(path, destination, port)

    def _connect_along(self, path: list[str], destination: str, port: int) -> Socket:
        src = path[0]
        # Find the first intercepting host strictly between the endpoints.
        split_index = len(path) - 1
        for index in range(1, len(path) - 1):
            if port in self.hosts[path[index]]._interceptors:
                split_index = index
                break
        target_name = path[split_index]
        segment = path[: split_index + 1]
        latency, bandwidth = self.path_metrics(segment)
        stream = Stream(
            self,
            self.hosts[src],
            self.hosts[target_name],
            latency,
            bandwidth,
            path=tuple(segment),
        )
        self.streams.append(stream)
        for hook in self._stream_taps:
            hook(stream, src, target_name)
        client_socket = stream.endpoints[0]
        remote_socket = stream.endpoints[1]

        remaining = tuple(path[split_index:])

        def on_syn() -> None:
            target = self.hosts[target_name]
            if not target.alive:
                # A dead host answers SYNs with a reset, not an exception in
                # the event loop: the caller's socket sees on_close.
                stream.abort(f"connection refused: host {target_name} is down",
                             at_host=target_name)
                return
            if split_index < len(path) - 1:
                interceptor = target._interceptors.get(port)
                if interceptor is None:
                    # The interceptor vanished (crash) after routing chose
                    # this split point: reset so the caller can retry and be
                    # routed past the dead middlebox.
                    stream.abort(
                        f"connection reset: interceptor on {target_name} is gone",
                        at_host=target_name,
                    )
                    return
                flow = InterceptedFlow(
                    socket=remote_socket,
                    destination=destination,
                    port=port,
                    source=src,
                    _network=self,
                    _remaining_path=remaining,
                )
                interceptor(flow)
            else:
                acceptor = target._listeners.get(port)
                if acceptor is None:
                    raise NetworkError(
                        f"connection refused: {target_name}:{port} not listening"
                    )
                acceptor(remote_socket, src)
            # SYN-ACK: both ends established one RTT after the SYN left.
            self.sim.schedule(latency, stream.establish)

        # SYN arrives after one-way latency.
        self.sim.schedule(latency, on_syn)
        return client_socket
