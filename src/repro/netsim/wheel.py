"""A hierarchical timer wheel for the discrete-event simulator.

The old :class:`~repro.netsim.sim.Simulator` kept every pending event in one
``heapq`` and *lazily* deleted cancelled entries — they stayed in the heap
until popped.  That is fine for a handful of sessions, but a fleet run arms
one handshake timer and one idle timer per live session and ``touch()``es
the idle timer on every data flight: at 10^4-10^6 sessions the heap fills
with dead entries faster than the clock drains them.

This wheel gives the simulator what kernels give their networking stacks:

* **O(1) insertion** — a deadline is quantized to a tick and filed under
  its *first byte differing from the current tick* (the classic
  hierarchical-wheel rule): byte 0 differs → level 0 (fine slots), byte 1
  differs → level 1 (coarser), and so on.  Entries at a level therefore
  always share every higher byte with the current tick, which keeps the
  scan invariants local — no modular-window wrap cases.
* **O(1) cancellation with eager reclamation** — every entry knows the
  slot dict holding it, so cancel *removes* it immediately.  Cancelling a
  million timers leaves nothing behind (pinned by a regression test).
* **Exact firing order** — quantization never reorders events: entries
  keep their exact ``(time, seq)`` pair and the consumer sorts each
  expired tick before firing it, so behaviour is byte-identical to the
  old heap (same-time events still fire in schedule order).
* **O(1)-ish scanning** — each level keeps a big-int occupancy bitmask;
  finding the next busy slot is a shift plus ``(m & -m).bit_length()``,
  not a walk over 256 slots.

Deadlines whose tick differs from the current tick above the outermost
level (≈ 5 simulated days at the default 100 µs resolution) go to an
overflow dict and are re-bucketed when the wheel drains — an O(n) cost
paid once per multi-day jump, never per event.
"""

from __future__ import annotations

__all__ = ["TimerWheel", "WheelEntry"]

# 2^8 slots per level keeps each occupancy mask a handful of big-int digits
# while spanning useful horizons at the default 100 µs resolution:
# level 0 covers 25.6 ms of deadlines, level 1 ~6.6 s, level 2 ~28 min,
# level 3 ~5 days.
_SLOT_BITS = 8
_SLOTS = 1 << _SLOT_BITS
_SLOT_MASK = _SLOTS - 1
_LEVELS = 4


class WheelEntry:
    """One scheduled deadline; knows its container for O(1) removal."""

    __slots__ = ("time", "seq", "_slot")

    def __init__(self, time: float, seq: int) -> None:
        self.time = time
        self.seq = seq
        self._slot: dict[int, "WheelEntry"] | None = None

    def __lt__(self, other: "WheelEntry") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class TimerWheel:
    """Hierarchical timer wheel over quantized ticks with exact times.

    The wheel only *organizes* deadlines; exact event times ride along in
    the entries and the consumer sorts each expired tick, so tick
    resolution is a throughput knob, not a correctness knob.

    Invariants (maintained by ``_place``/``_scan``):

    * every filed tick is ``>= current_tick`` (late inserts are clamped);
    * an entry at level ``l`` shares all tick bytes above ``l`` with
      ``current_tick`` and its byte ``l`` is ``>=`` the current tick's
      (strictly greater for ``l >= 1``, except transiently right after the
      current tick rolls into a new byte-``l`` window — the scan then
      cascades that slot in place).
    """

    __slots__ = ("resolution", "_tick", "_levels", "_occupancy", "_overflow", "_live")

    def __init__(self, resolution: float = 1e-4) -> None:
        if resolution <= 0:
            raise ValueError("wheel resolution must be positive")
        self.resolution = resolution
        self._tick = 0  # ticks < _tick have been expired
        self._levels: list[list[dict[int, WheelEntry]]] = [
            [{} for _ in range(_SLOTS)] for _ in range(_LEVELS)
        ]
        self._occupancy = [0] * _LEVELS
        self._overflow: dict[int, WheelEntry] = {}
        self._live = 0

    # ------------------------------------------------------------------ api

    def __len__(self) -> int:
        return self._live

    @property
    def current_tick(self) -> int:
        return self._tick

    def tick_of(self, time: float) -> int:
        return int(time / self.resolution)

    def insert(self, entry: WheelEntry) -> None:
        """File ``entry`` under its deadline tick. O(1)."""
        self._place(entry)
        self._live += 1

    def remove(self, entry: WheelEntry) -> bool:
        """Unfile a live entry. O(1) and eager — nothing lingers."""
        slot = entry._slot
        if slot is None:
            return False
        slot.pop(entry.seq, None)
        entry._slot = None
        self._live -= 1
        return True

    def pop_next_tick(self) -> list[WheelEntry] | None:
        """Expire the earliest busy tick and return its entries (unsorted).

        Advances the wheel just past that tick.  Returns ``None`` when no
        entries remain anywhere (wheel levels and overflow).
        """
        while self._live:
            tick = self._scan()
            if tick is None:
                self._refill_from_overflow()
                continue
            slot = self._levels[0][tick & _SLOT_MASK]
            entries = list(slot.values())
            slot.clear()
            self._occupancy[0] &= ~(1 << (tick & _SLOT_MASK))
            for entry in entries:
                entry._slot = None
            self._live -= len(entries)
            self._tick = tick + 1
            return entries
        return None

    # ------------------------------------------------------------ internals

    def _place(self, entry: WheelEntry) -> None:
        tick = self.tick_of(entry.time)
        if tick < self._tick:
            tick = self._tick  # numerically-past deadline: fire next
        differing = tick ^ self._tick
        level = 0 if not differing else (differing.bit_length() - 1) >> 3
        if level >= _LEVELS:
            entry._slot = self._overflow
            self._overflow[entry.seq] = entry
            return
        index = (tick >> (_SLOT_BITS * level)) & _SLOT_MASK
        slot = self._levels[level][index]
        slot[entry.seq] = entry
        entry._slot = slot
        self._occupancy[level] |= 1 << index

    def _scan(self) -> int | None:
        """Tick of the earliest filed entry, cascading coarse slots down
        until that tick's entries sit in level 0.  ``None`` when every
        level is empty (entries may remain in overflow)."""
        occupancy = self._occupancy
        levels = self._levels
        while True:
            # Fast path: busy level-0 slot at or after the current tick.
            offset = self._tick & _SLOT_MASK
            mask = occupancy[0] >> offset
            if mask:
                index = offset + (mask & -mask).bit_length() - 1
                if levels[0][index]:
                    return (self._tick & ~_SLOT_MASK) | index
                occupancy[0] &= ~(1 << index)  # stale bit (cancellations)
                continue
            cascaded = False
            for level in range(1, _LEVELS):
                shift = _SLOT_BITS * level
                offset = (self._tick >> shift) & _SLOT_MASK
                mask = occupancy[level] >> offset
                if not mask:
                    continue
                index = offset + (mask & -mask).bit_length() - 1
                slot = levels[level][index]
                occupancy[level] &= ~(1 << index)
                if not slot:
                    cascaded = True  # stale bit; rescan from level 0
                    break
                entries = list(slot.values())
                slot.clear()
                # Nothing fires before this slot's span: move the clock to
                # its start (never backward — the containing slot's start
                # is in the past while the tick sits mid-window), then
                # re-bucket; every entry now lands at a strictly finer
                # level, so this terminates.
                base = self._tick >> (shift + _SLOT_BITS) << (shift + _SLOT_BITS)
                start = base | (index << shift)
                if start > self._tick:
                    self._tick = start
                for entry in entries:
                    entry._slot = None
                    self._place(entry)
                cascaded = True
                break
            if not cascaded:
                return None

    def _refill_from_overflow(self) -> None:
        """Jump the wheel to the earliest overflow deadline and re-bucket.

        Only called when every wheel level is empty, so the jump cannot
        skip a filed entry.  At least the earliest entry always lands in
        the wheel proper, so the caller's loop makes progress.
        """
        entries = list(self._overflow.values())
        self._overflow.clear()
        earliest = min(self.tick_of(entry.time) for entry in entries)
        if earliest > self._tick:
            self._tick = earliest
        for entry in entries:
            entry._slot = None
            self._place(entry)
