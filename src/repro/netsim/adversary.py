"""Active network adversaries: the §3.1 threat model as runnable objects.

An adversary attaches to streams and can observe, record, modify, drop,
replay, and inject wire bytes. The Table 1 security benchmarks drive these
against TLS and mbTLS sessions and check which attacks the protocols stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.netsim.network import Host, Stream, Tap

__all__ = ["RecordingTap", "MutatingTap", "DroppingTap", "Wiretap", "GlobalAdversary"]


@dataclass
class Capture:
    """One observed transmission."""

    sender: str
    data: bytes
    time: float


class RecordingTap(Tap):
    """Passively records everything crossing the stream."""

    def __init__(self) -> None:
        self.captures: list[Capture] = []

    def process(self, sender: Host, data: bytes, stream: Stream) -> bytes | None:
        self.captures.append(
            Capture(sender=sender.name, data=data, time=stream.sim.now)
        )
        return data

    def all_bytes(self) -> bytes:
        return b"".join(capture.data for capture in self.captures)


class MutatingTap(Tap):
    """Applies a byte-level mutation to matching chunks (active tampering)."""

    def __init__(
        self,
        mutate: Callable[[bytes], bytes],
        should_mutate: Callable[[bytes], bool] = lambda data: True,
        limit: int | None = None,
    ) -> None:
        self._mutate = mutate
        self._should = should_mutate
        self._limit = limit
        self.mutations = 0

    def process(self, sender: Host, data: bytes, stream: Stream) -> bytes | None:
        if self._limit is not None and self.mutations >= self._limit:
            return data
        if self._should(data):
            self.mutations += 1
            return self._mutate(data)
        return data


class DroppingTap(Tap):
    """Drops chunks matching a predicate (packet suppression)."""

    def __init__(
        self,
        should_drop: Callable[[bytes], bool] = lambda data: True,
        limit: int | None = None,
    ) -> None:
        self._should = should_drop
        self._limit = limit
        self.drops = 0

    def process(self, sender: Host, data: bytes, stream: Stream) -> bytes | None:
        if self._limit is not None and self.drops >= self._limit:
            return data
        if self._should(data):
            self.drops += 1
            return None
        return data


class Wiretap:
    """A handle over one tapped stream: observe + inject + splice."""

    def __init__(self, stream: Stream) -> None:
        self.stream = stream
        self.recorder = RecordingTap()
        stream.add_tap(self.recorder)

    def inject_toward(self, host_name: str, data: bytes) -> None:
        """Inject raw bytes on the wire toward the named endpoint."""
        for side, socket in enumerate(self.stream.endpoints):
            if socket.host.name == host_name:
                self.stream.inject(side, data)
                return
        raise ValueError(f"{host_name!r} is not an endpoint of this stream")

    @property
    def endpoints(self) -> tuple[str, str]:
        return (
            self.stream.endpoints[0].host.name,
            self.stream.endpoints[1].host.name,
        )


class GlobalAdversary:
    """The paper's global active adversary: taps every stream in a network.

    Use :meth:`wiretap_between` to get the handle for a specific hop, then
    replay/inject/splice captured bytes across hops — the exact moves the
    path-integrity and change-secrecy analyses consider.
    """

    def __init__(self, network) -> None:
        self.network = network
        self.wiretaps: list[Wiretap] = []
        network.on_new_stream(self._on_stream)

    def _on_stream(self, stream: Stream, a: str, b: str) -> None:
        self.wiretaps.append(Wiretap(stream))

    def wiretap_between(self, a: str, b: str) -> Wiretap:
        """The (most recent) wiretap on the stream between two hosts."""
        for wiretap in reversed(self.wiretaps):
            if set(wiretap.endpoints) == {a, b}:
                return wiretap
        raise ValueError(f"no stream observed between {a!r} and {b!r}")

    def observed_bytes(self) -> bytes:
        """Everything the adversary saw anywhere in the network."""
        return b"".join(tap.recorder.all_bytes() for tap in self.wiretaps)

    def add_tap_between(self, a: str, b: str, tap: Tap) -> None:
        """Attach an active tap (mutate/drop) to an existing stream."""
        self.wiretap_between(a, b).stream.add_tap(tap)
