"""Handshake tracing: render a session's message ladder (paper Figure 3).

Feeds a :class:`~repro.netsim.adversary.GlobalAdversary`'s captures through
the record parser and produces a time-ordered, human-readable ladder of
what crossed each hop — primary handshake messages by name, Encapsulated
records with their subchannel and inner type, announcements, key material.
Invaluable when debugging interleaved primary/secondary handshakes, and a
direct visualization of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.netsim.adversary import GlobalAdversary
from repro.wire.handshake import HandshakeBuffer
from repro.wire.mbtls import EncapsulatedRecord
from repro.wire.records import ContentType, Record, RecordBuffer

__all__ = ["TraceEvent", "trace_session", "render_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One record observed on one hop, or one interleaved span annotation."""

    time: float
    sender: str
    receiver: str
    description: str
    annotation: bool = False


def _describe_handshake_payload(payload: bytes, protected: bool) -> str:
    """Name the handshake messages in a record payload, if parseable."""
    buffer = HandshakeBuffer()
    buffer.feed(payload)
    try:
        messages = buffer.pop_messages()
    except DecodeError:
        messages = []
    if not messages or buffer.pending_bytes:
        return "Handshake (encrypted)" if protected else "Handshake (fragment)"
    return " + ".join(message.msg_type.name.title().replace("_", "") for message in messages)


def _describe(record: Record, seen_ccs: set, hop: tuple[str, str]) -> str:
    # ``seen_ccs`` tracks which *channels* have flipped to encrypted, keyed
    # by ``(sender, receiver, subchannel)`` — the outer record stream uses
    # subchannel ``None``, each encapsulated secondary handshake its own id.
    # A hop-global (or even hop-directed but channel-blind) set would start
    # labeling cleartext secondary-handshake fragments "encrypted" as soon
    # as any CCS crossed the hop.
    if record.content_type == ContentType.HANDSHAKE:
        protected = hop + (None,) in seen_ccs
        return _describe_handshake_payload(record.payload, protected)
    if record.content_type == ContentType.CHANGE_CIPHER_SPEC:
        seen_ccs.add(hop + (None,))
        return "ChangeCipherSpec"
    if record.content_type == ContentType.ALERT:
        return "Alert"
    if record.content_type == ContentType.APPLICATION_DATA:
        return f"ApplicationData ({len(record.payload)} B)"
    if record.content_type == ContentType.MBTLS_ENCAPSULATED:
        try:
            encap = EncapsulatedRecord.from_record(record)
        except DecodeError:
            return "Encapsulated (malformed)"
        inner = encap.inner
        channel = hop + (encap.subchannel_id,)
        if inner.content_type == ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT:
            detail = "MiddleboxAnnouncement"
        elif inner.content_type == ContentType.HANDSHAKE:
            detail = _describe_handshake_payload(
                inner.payload, protected=channel in seen_ccs)
        elif inner.content_type == ContentType.CHANGE_CIPHER_SPEC:
            seen_ccs.add(channel)
            detail = "ChangeCipherSpec"
        elif inner.content_type == ContentType.MBTLS_KEY_MATERIAL:
            detail = "MBTLSKeyMaterial"
        elif inner.content_type == ContentType.ALERT:
            detail = "Alert"
        else:
            detail = inner.content_type.name
        return f"Encapsulated[subch {encap.subchannel_id}] {detail}"
    if record.content_type == ContentType.MBTLS_KEY_MATERIAL:
        return "MBTLSKeyMaterial"
    if record.content_type == ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT:
        return "MiddleboxAnnouncement"
    return record.content_type.name


def trace_session(adversary: GlobalAdversary, tracer=None) -> list[TraceEvent]:
    """Turn every wiretap's captures into a time-ordered event ladder.

    When *tracer* (a :class:`~repro.obs.tracing.SpanRecorder`) is given,
    its spans and marks are interleaved into the ladder as annotation
    events, so the Figure-3 record flow reads alongside what each engine
    was doing at that moment.
    """
    events: list[TraceEvent] = []
    if tracer is not None:
        for span in tracer.spans:
            label = f"{span.party}/{span.name}" if span.party else span.name
            indent = "  " * span.depth
            events.append(TraceEvent(
                span.start, span.party, "", f"{indent}[begin {label}]", True))
            if span.end is not None:
                duration_ms = (span.end - span.start) * 1000
                events.append(TraceEvent(
                    span.end, span.party, "",
                    f"{indent}[end   {label} +{duration_ms:.1f} ms]", True))
        for time, _index, name, party, _attrs in tracer.marks:
            label = f"{party}/{name}" if party else name
            events.append(TraceEvent(time, party, "", f"[mark  {label}]", True))
    for wiretap in adversary.wiretaps:
        buffers: dict[str, RecordBuffer] = {}
        seen_ccs: set = set()
        host_a, host_b = wiretap.endpoints
        for capture in wiretap.recorder.captures:
            receiver = host_b if capture.sender == host_a else host_a
            buffer = buffers.setdefault(capture.sender, RecordBuffer())
            buffer.feed(capture.data)
            try:
                records = buffer.pop_records()
            except DecodeError:
                events.append(
                    TraceEvent(capture.time, capture.sender, receiver, "(non-TLS bytes)")
                )
                continue
            for record in records:
                events.append(
                    TraceEvent(
                        time=capture.time,
                        sender=capture.sender,
                        receiver=receiver,
                        description=_describe(
                            record, seen_ccs, (capture.sender, receiver)
                        ),
                    )
                )
    events.sort(key=lambda event: event.time)
    return events


def render_trace(events: list[TraceEvent], limit: int | None = None) -> str:
    """Format the ladder as aligned text, one line per record."""
    lines = []
    shown = events if limit is None else events[:limit]
    for event in shown:
        arrow = "·" if event.annotation else f"{event.sender} -> {event.receiver}"
        lines.append(f"{event.time * 1000:8.1f} ms  {arrow:24s} {event.description}")
    if limit is not None and len(events) > limit:
        lines.append(f"          ... {len(events) - limit} more records")
    return "\n".join(lines)
