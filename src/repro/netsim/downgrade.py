"""Seeded, deterministic on-path *downgrade* adversaries (negotiation attacks).

PR 3's fuzzer attacks the record layer blindly; this module attacks the
*negotiation* the way the MAMI white paper ("Security and Privacy
Implications of Middlebox Cooperation Protocols", PAPERS.md) catalogs for
cooperation protocols like mbTLS:

* ``strip_support`` / ``strip_server_hello`` — remove the MiddleboxSupport
  (and sibling private-use) extensions from a ClientHello, or every
  extension from a ServerHello, so the in-band discovery signal (P6)
  disappears from the wire;
* ``forge_announcement`` / ``replay_announcement`` — inject a
  MiddleboxAnnouncement that no middlebox sent (freshly forged, or the
  byte-identical announcement captured from a prior session);
* ``suppress_announcement`` — delete genuine announcements so a
  server-side middlebox looks unanswered and falls back to relaying;
* ``corrupt_secondary`` — flip a byte inside the first Encapsulated
  record, breaking a middlebox's secondary handshake to force the
  endpoint toward a weaker party set (forced fallback);
* ``suite_delete`` / ``suite_inject`` — thin the client's cipher-suite
  list down to one DRBG-chosen suite, or prepend weak/unknown codes;
* ``tamper_delegation`` — rewrite one mdTLS delegation certificate inside
  the ClientHello (expire its validity window, swap the warranted key, or
  corrupt the delegator's signature) so a forged warrant rides the
  handshake; vacuous against stacks that carry no delegation extension.

Unlike :class:`~repro.netsim.fuzz.ChunkMutator`, these adversaries *parse*
the stream: a :class:`DowngradeAdversary` reassembles TLS records from the
chunks crossing it, rewrites the ones its attack targets, and re-serializes.
Streams that are not TLS framing (the mcTLS/BlindBox baselines) flip the
adversary into a transparent ``blind`` mode — the attack is then vacuously
harmless, which the selftest scores as such.

Everything is replayable from ``(seed, case_index)`` alone: the attack kind
(when not pinned) is ``ATTACK_KINDS[case_index % len(ATTACK_KINDS)]`` and
every random draw inside the attack comes from the repo's HMAC-DRBG seeded
with ``seed`` and personalized with the case index.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import obs
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_rsa_key
from repro.errors import DecodeError
from repro.netsim.network import Host, Stream, Tap
from repro.wire.handshake import (
    ClientHello,
    Handshake,
    HandshakeBuffer,
    HandshakeType,
    ServerHello,
)
from repro.wire.extensions import ExtensionType
from repro.wire.mbtls import EncapsulatedRecord, MiddleboxAnnouncement
from repro.wire.mdtls import DelegationCertificateExtension
from repro.wire.records import ContentType, Record, RecordBuffer

__all__ = [
    "ATTACK_KINDS",
    "ATTACK_DIRECTIONS",
    "AppliedAttack",
    "DowngradeAdversary",
    "DowngradeCase",
    "DowngradeTap",
    "forged_announcement_bytes",
]

# The downgrade corpus. Five attack classes: extension stripping,
# announcement forgery/suppression/replay, forced fallback,
# cipher-suite downgrade, and mdTLS delegation-certificate forgery.
ATTACK_KINDS = (
    "strip_support",
    "strip_server_hello",
    "suite_delete",
    "suite_inject",
    "forge_announcement",
    "replay_announcement",
    "suppress_announcement",
    "corrupt_secondary",
    "tamper_delegation",
)

#: Which direction of the session each attack targets. ``c2s`` adversaries
#: sit on the client-to-server byte stream, ``s2c`` on the reverse path.
ATTACK_DIRECTIONS = {
    "strip_support": "c2s",
    "strip_server_hello": "s2c",
    "suite_delete": "c2s",
    "suite_inject": "c2s",
    "forge_announcement": "c2s",
    "replay_announcement": "c2s",
    "suppress_announcement": "c2s",
    "corrupt_secondary": "s2c",
    "tamper_delegation": "c2s",
}

# Suite codes an injecting adversary offers on the client's behalf: export-
# grade RC4/DES relics no implementation in this repo assigns. A server
# that negotiates one of these has been successfully downgraded.
_WEAK_SUITE_CODES = (0x0004, 0x0005, 0x0009, 0x002F)


def forged_announcement_bytes(subchannel_id: int = 1) -> bytes:
    """The encoded Encapsulated(MiddleboxAnnouncement) a forger injects.

    The announcement body is empty (presence is the signal), so a forgery
    and a replay from a prior session are byte-identical on the wire —
    exactly why announcements must confer nothing without the secondary
    handshake that follows.
    """
    return EncapsulatedRecord(
        subchannel_id=subchannel_id, inner=MiddleboxAnnouncement().to_record()
    ).to_record().encode()


@dataclass(frozen=True)
class AppliedAttack:
    """One attack step that actually changed bytes, for logs and replay."""

    record_index: int
    kind: str
    detail: str = ""


class DowngradeAdversary:
    """Rewrites TLS records crossing one direction of one session.

    Feed chunks with :meth:`process_chunk`; it returns the bytes to put on
    the wire instead (``None`` means the whole chunk was swallowed). Record
    reassembly means output chunk boundaries may differ from input ones —
    indistinguishable from TCP resegmentation to the parties.
    """

    def __init__(
        self, seed: bytes, case_index: int, kind: str | None = None
    ) -> None:
        self.seed = seed
        self.case_index = case_index
        self._rng = HmacDrbg(
            seed, personalization=b"downgrade-%d" % case_index
        )
        if kind is not None and kind not in ATTACK_KINDS:
            raise ValueError(f"unknown attack kind {kind!r}")
        self.kind = kind if kind is not None else (
            ATTACK_KINDS[case_index % len(ATTACK_KINDS)]
        )
        self.applied: list[AppliedAttack] = []
        self._buffer = RecordBuffer()
        self._blind = False
        self._record_index = 0
        self._hello_rewritten = False
        self._injected = False

    @property
    def direction(self) -> str:
        return ATTACK_DIRECTIONS[self.kind]

    def process_chunk(self, data: bytes) -> bytes | None:
        if self._blind:
            return data
        self._buffer.feed(data)
        try:
            records = self._buffer.pop_records()
        except DecodeError:
            # Not TLS framing (a baseline's token stream, or ciphertext we
            # already mangled): stop parsing, pass everything through.
            self._blind = True
            return self._buffer.drain_raw()
        out = bytearray()
        for record in records:
            index = self._record_index
            self._record_index += 1
            for replacement in self._attack(index, record):
                out += replacement.encode()
        return bytes(out) if out else None

    # ------------------------------------------------------------- attacks

    def _attack(self, index: int, record: Record) -> list[Record]:
        """Map one on-the-wire record to its replacement(s)."""
        kind = self.kind
        if kind in ("strip_support", "suite_delete", "suite_inject"):
            return self._rewrite_client_hello(index, record)
        if kind == "strip_server_hello":
            return self._rewrite_server_hello(index, record)
        if kind in ("forge_announcement", "replay_announcement"):
            return self._inject_announcement(index, record)
        if kind == "suppress_announcement":
            return self._suppress_announcement(index, record)
        if kind == "corrupt_secondary":
            return self._corrupt_secondary(index, record)
        if kind == "tamper_delegation":
            return self._tamper_delegation(index, record)
        raise ValueError(f"unknown attack kind {kind!r}")

    def _first_handshake(
        self, record: Record, msg_type: HandshakeType
    ) -> list[Handshake] | None:
        """Messages in ``record`` if it leads with ``msg_type``, else None."""
        if record.content_type != ContentType.HANDSHAKE:
            return None
        buffer = HandshakeBuffer()
        buffer.feed(record.payload)
        try:
            messages = buffer.pop_messages()
        except DecodeError:
            return None
        if buffer.pending_bytes or not messages:
            return None  # fragmented or already encrypted; leave it alone
        if messages[0].msg_type != msg_type:
            return None
        return messages

    def _rewrite_client_hello(self, index: int, record: Record) -> list[Record]:
        if self._hello_rewritten:
            return [record]
        messages = self._first_handshake(record, HandshakeType.CLIENT_HELLO)
        if messages is None:
            return [record]
        try:
            hello = ClientHello.decode_body(messages[0].body)
        except DecodeError:
            return [record]
        if self.kind == "strip_support":
            kept = tuple(
                ext
                for ext in hello.extensions
                if ext.extension_type < 0xFF00
            )
            if len(kept) == len(hello.extensions):
                return [record]  # nothing to strip: attack is a no-op
            stripped = len(hello.extensions) - len(kept)
            hello = ClientHello(
                random=hello.random,
                session_id=hello.session_id,
                cipher_suites=hello.cipher_suites,
                extensions=kept,
                version=hello.version,
            )
            detail = f"stripped {stripped} private-use extension(s)"
        elif self.kind == "suite_delete":
            if len(hello.cipher_suites) <= 1:
                return [record]
            keep = self._rng.choice(hello.cipher_suites)
            hello = ClientHello(
                random=hello.random,
                session_id=hello.session_id,
                cipher_suites=(keep,),
                extensions=hello.extensions,
                version=hello.version,
            )
            detail = f"deleted all suites but 0x{keep:04x}"
        else:  # suite_inject
            weak = self._rng.choice(_WEAK_SUITE_CODES)
            hello = ClientHello(
                random=hello.random,
                session_id=hello.session_id,
                cipher_suites=(weak,) + hello.cipher_suites,
                extensions=hello.extensions,
                version=hello.version,
            )
            detail = f"prepended weak suite 0x{weak:04x}"
        self._hello_rewritten = True
        self._log(index, detail)
        rebuilt = Handshake(
            msg_type=HandshakeType.CLIENT_HELLO, body=hello.encode_body()
        ).encode()
        trailer = b"".join(message.encode() for message in messages[1:])
        return [
            Record(
                content_type=ContentType.HANDSHAKE,
                payload=rebuilt + trailer,
                version=record.version,
            )
        ]

    def _rewrite_server_hello(self, index: int, record: Record) -> list[Record]:
        if self._hello_rewritten:
            return [record]
        messages = self._first_handshake(record, HandshakeType.SERVER_HELLO)
        if messages is None:
            return [record]
        try:
            hello = ServerHello.decode_body(messages[0].body)
        except DecodeError:
            return [record]
        if not hello.extensions:
            return [record]  # nothing to strip: attack is a no-op
        self._hello_rewritten = True
        self._log(index, f"stripped {len(hello.extensions)} extension(s)")
        bare = ServerHello(
            random=hello.random,
            cipher_suite=hello.cipher_suite,
            session_id=hello.session_id,
            extensions=(),
            version=hello.version,
        )
        rebuilt = Handshake(
            msg_type=HandshakeType.SERVER_HELLO, body=bare.encode_body()
        ).encode()
        trailer = b"".join(message.encode() for message in messages[1:])
        return [
            Record(
                content_type=ContentType.HANDSHAKE,
                payload=rebuilt + trailer,
                version=record.version,
            )
        ]

    def _inject_announcement(self, index: int, record: Record) -> list[Record]:
        """Append an announcement right behind the ClientHello, inside the
        server's announcement window."""
        if self._injected:
            return [record]
        if self._first_handshake(record, HandshakeType.CLIENT_HELLO) is None:
            return [record]
        self._injected = True
        if self.kind == "forge_announcement":
            # A forger picks a fresh subchannel so it cannot collide with a
            # genuine announcer (which always claims 1 first).
            subchannel = self._rng.randint_range(2, 9)
            detail = f"forged announcement on subchannel {subchannel}"
        else:
            # A replayer re-injects the byte-identical announcement a prior
            # session carried: subchannel 1, empty body.
            subchannel = 1
            detail = "replayed prior-session announcement on subchannel 1"
        self._log(index, detail)
        forged = EncapsulatedRecord(
            subchannel_id=subchannel, inner=MiddleboxAnnouncement().to_record()
        ).to_record()
        return [record, forged]

    def _suppress_announcement(self, index: int, record: Record) -> list[Record]:
        if record.content_type != ContentType.MBTLS_ENCAPSULATED:
            return [record]
        try:
            encap = EncapsulatedRecord.from_record(record)
        except DecodeError:
            return [record]
        if encap.inner.content_type != ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT:
            return [record]
        self._log(index, f"suppressed announcement on subchannel {encap.subchannel_id}")
        return []

    def _corrupt_secondary(self, index: int, record: Record) -> list[Record]:
        if self._hello_rewritten:
            return [record]
        if record.content_type != ContentType.MBTLS_ENCAPSULATED:
            return [record]
        if len(record.payload) < 2:
            return [record]
        self._hello_rewritten = True
        # Flip one bit inside the inner record's payload (never the
        # subchannel id byte), breaking the secondary handshake in flight.
        bit = self._rng.randint_range(8 * 6, len(record.payload) * 8 - 1)
        mutated = bytearray(record.payload)
        mutated[bit // 8] ^= 1 << (bit % 8)
        self._log(index, f"flipped bit {bit} of the encapsulated secondary")
        return [
            Record(
                content_type=record.content_type,
                payload=bytes(mutated),
                version=record.version,
            )
        ]

    def _tamper_delegation(self, index: int, record: Record) -> list[Record]:
        """Forge one delegation certificate riding the ClientHello.

        The DRBG picks among three forgeries: shifting the validity window
        out of range (an expired/not-yet-valid warrant), swapping the
        warranted middlebox key, or corrupting the delegator's signature.
        Every variant breaks the signature over the to-be-signed bytes, so
        a verifying mdTLS party must reject the warrant; against stacks
        that carry no delegation extension the attack is a no-op.
        """
        if self._hello_rewritten:
            return [record]
        messages = self._first_handshake(record, HandshakeType.CLIENT_HELLO)
        if messages is None:
            return [record]
        try:
            hello = ClientHello.decode_body(messages[0].body)
        except DecodeError:
            return [record]
        extension = hello.find_extension(ExtensionType.DELEGATION_CERTIFICATE)
        if extension is None:
            return [record]
        try:
            batch = DelegationCertificateExtension.from_extension(extension)
        except DecodeError:
            return [record]
        if not batch.warrants:
            return [record]
        warrant = batch.warrants[0]
        variant = self._rng.choice(
            ("expire_validity", "wrong_key", "corrupt_signature")
        )
        if variant == "expire_validity":
            forged = replace(
                warrant,
                not_before=warrant.not_after + 1.0,
                not_after=warrant.not_after + 2.0,
            )
            detail = f"shifted warrant for {warrant.middlebox!r} out of validity"
        elif variant == "wrong_key":
            forged = replace(
                warrant,
                middlebox_key=generate_rsa_key(512, self._rng).public_key,
            )
            detail = f"swapped the warranted key for {warrant.middlebox!r}"
        else:
            signature = bytearray(warrant.signature)
            signature[0] ^= 0x01
            forged = replace(warrant, signature=bytes(signature))
            detail = f"corrupted the delegation signature for {warrant.middlebox!r}"
        rebuilt_ext = DelegationCertificateExtension(
            (forged,) + batch.warrants[1:]
        ).to_extension()
        extensions = tuple(
            rebuilt_ext
            if ext.extension_type == ExtensionType.DELEGATION_CERTIFICATE
            else ext
            for ext in hello.extensions
        )
        hello = ClientHello(
            random=hello.random,
            session_id=hello.session_id,
            cipher_suites=hello.cipher_suites,
            extensions=extensions,
            version=hello.version,
        )
        self._hello_rewritten = True
        self._log(index, detail)
        rebuilt = Handshake(
            msg_type=HandshakeType.CLIENT_HELLO, body=hello.encode_body()
        ).encode()
        trailer = b"".join(message.encode() for message in messages[1:])
        return [
            Record(
                content_type=ContentType.HANDSHAKE,
                payload=rebuilt + trailer,
                version=record.version,
            )
        ]

    def _log(self, index: int, detail: str) -> None:
        self.applied.append(AppliedAttack(index, self.kind, detail))
        obs.counter("downgrade_attacks_applied", kind=self.kind).inc()


@dataclass(frozen=True)
class DowngradeCase:
    """One replayable downgrade case: rebuildable from ``(seed, case_index)``.

    ``kind=None`` derives the attack kind from the case index
    (``ATTACK_KINDS[case_index % len(ATTACK_KINDS)]``), so sweeping
    ``case_index`` over ``range(len(ATTACK_KINDS))`` covers the corpus.
    """

    seed: bytes
    case_index: int
    kind: str | None = None

    def adversary(self) -> DowngradeAdversary:
        return DowngradeAdversary(self.seed, self.case_index, self.kind)

    def describe(self) -> str:
        kind = self.kind if self.kind is not None else (
            ATTACK_KINDS[self.case_index % len(ATTACK_KINDS)]
        )
        return f"(seed={self.seed!r}, case_index={self.case_index}, kind={kind})"


class DowngradeTap(Tap):
    """Applies one :class:`DowngradeAdversary` to chunks crossing a stream.

    ``sender`` restricts the tap to chunks originated by that host, so a
    scenario targets exactly one direction of one hop — the standard
    placement for an on-path downgrade box.
    """

    def __init__(
        self, adversary: DowngradeAdversary, sender: str | None = None
    ) -> None:
        self.adversary = adversary
        self._sender = sender

    def process(self, sender: Host, data: bytes, stream: Stream) -> bytes | None:
        if self._sender is not None and sender.name != self._sender:
            return data
        return self.adversary.process_chunk(data)
