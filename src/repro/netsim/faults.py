"""Deterministic fault injection: seeded chaos for the simulated network.

The paper's deployment story assumes an imperfect network — middleboxes
join optimistically (§3.4/P6) and Table 2 is about real paths mangling or
dropping mbTLS traffic — so the robustness of the stack has to be tested
against losses, stalls, partitions, and crashes, not just clean runs.

This module provides that adversarial weather as *reproducible* input:

* A :class:`FaultPlan` is a schedule of fault windows (loss and corruption
  bursts, stream stalls, link partitions, host crashes). Plans can be built
  explicitly or generated from the repo's HMAC-DRBG with
  :meth:`FaultPlan.random`, so an entire chaos run is determined by a seed.
* A :class:`ChaosTap` sits on every stream (built on the ordinary
  :class:`~repro.netsim.network.Tap` hook) and applies the plan's windows to
  the bytes crossing it. Per-chunk coin flips come from a DRBG fork, so two
  runs with the same seed inject byte-identical faults.
* A :class:`FaultInjector` installs taps on new streams, drives host
  crash/restart schedules through :meth:`Network.crash_host`, and keeps an
  ordered :attr:`log` of every fault actually applied — the determinism
  tests compare these logs across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.crypto.drbg import HmacDrbg
from repro.netsim.network import Host, Network, Stream, Tap

__all__ = [
    "LossBurst",
    "CorruptionBurst",
    "StreamStall",
    "LinkPartition",
    "HostCrash",
    "FaultPlan",
    "ChaosTap",
    "FaultInjector",
    "AppliedFault",
    "chaos_schedule",
]


def _record(log: list["AppliedFault"], fault: "AppliedFault") -> None:
    """Append to the determinism log and bump the per-kind fault counter."""
    log.append(fault)
    obs.counter("faults_injected", kind=fault.kind).inc()


def _hop_matches(hop: frozenset | None, stream: Stream) -> bool:
    """A link-scoped fault hits a stream if the stream's path crosses it.

    ``hop`` is a frozenset of one or two host names; ``None`` matches every
    stream. A single name matches any stream touching that host.
    """
    if hop is None:
        return True
    return hop <= set(stream.path)


@dataclass(frozen=True)
class LossBurst:
    """Drop each chunk crossing matching streams with probability ``rate``
    during [start, start+duration)."""

    start: float
    duration: float
    rate: float = 1.0
    hop: frozenset | None = None


@dataclass(frozen=True)
class CorruptionBurst:
    """Flip one byte of each chunk with probability ``rate`` during the
    window — the traffic normalizers and broken paths of Table 2."""

    start: float
    duration: float
    rate: float = 1.0
    hop: frozenset | None = None


@dataclass(frozen=True)
class StreamStall:
    """Hold all bytes crossing matching streams for the window; release
    them, in order, when it ends (bufferbloat / a wedged shaper)."""

    start: float
    duration: float
    hop: frozenset | None = None


@dataclass(frozen=True)
class LinkPartition:
    """Total blackout for streams whose path crosses the given link."""

    start: float
    duration: float
    link: tuple[str, str] = ("", "")

    @property
    def hop(self) -> frozenset:
        return frozenset(self.link)


@dataclass(frozen=True)
class HostCrash:
    """Kill the processes on ``host`` at ``time``; optionally restart them
    ``restart_after`` seconds later (services must re-register)."""

    time: float
    host: str = ""
    restart_after: float | None = None


@dataclass(frozen=True)
class AppliedFault:
    """One fault event that actually happened, for logs and determinism."""

    time: float
    kind: str
    where: str
    detail: str = ""


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault windows plus the seed that drives
    per-chunk randomness. Equal plans + equal traffic = equal injections."""

    faults: tuple = ()
    seed: bytes = b"chaos"

    def window_faults(self):
        return tuple(f for f in self.faults if not isinstance(f, HostCrash))

    def crashes(self) -> tuple[HostCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, HostCrash))

    def describe(self) -> str:
        lines = [f"FaultPlan(seed={self.seed!r})"]
        for fault in sorted(
            self.faults, key=lambda f: getattr(f, "start", getattr(f, "time", 0.0))
        ):
            lines.append(f"  - {fault}")
        return "\n".join(lines)

    @classmethod
    def random(
        cls,
        seed: bytes,
        *,
        horizon: float,
        hops: tuple = (),
        crashable: tuple[str, ...] = (),
        loss_bursts: int = 2,
        corruption_bursts: int = 1,
        stalls: int = 1,
        crash_probability: float = 0.5,
    ) -> "FaultPlan":
        """Generate a plan deterministically from ``seed``.

        Windows land in the first 70% of the horizon so sessions started
        late still have quiet air to recover in; crash times avoid t=0 so a
        handshake is always in flight somewhere when the host dies.
        """
        rng = HmacDrbg(seed, personalization=b"fault-plan")
        hop_choices: list = list(hops) + [None]
        faults: list = []
        for _ in range(loss_bursts):
            start = rng.random() * horizon * 0.7
            faults.append(
                LossBurst(
                    start=start,
                    duration=0.02 + rng.random() * horizon * 0.15,
                    rate=0.3 + rng.random() * 0.7,
                    hop=rng.choice(hop_choices),
                )
            )
        for _ in range(corruption_bursts):
            start = rng.random() * horizon * 0.7
            faults.append(
                CorruptionBurst(
                    start=start,
                    duration=0.02 + rng.random() * horizon * 0.1,
                    rate=0.3 + rng.random() * 0.7,
                    hop=rng.choice(hop_choices),
                )
            )
        for _ in range(stalls):
            start = rng.random() * horizon * 0.7
            faults.append(
                StreamStall(
                    start=start,
                    duration=0.05 + rng.random() * horizon * 0.2,
                    hop=rng.choice(hop_choices),
                )
            )
        if crashable and rng.random() < crash_probability:
            crash_at = horizon * (0.05 + rng.random() * 0.3)
            restart = (
                horizon * (0.1 + rng.random() * 0.2) if rng.random() < 0.5 else None
            )
            faults.append(
                HostCrash(
                    time=crash_at, host=rng.choice(list(crashable)),
                    restart_after=restart,
                )
            )
        return cls(faults=tuple(faults), seed=seed)


def chaos_schedule(
    seed: bytes,
    shard_id: int,
    *,
    horizon: float,
    middlebox_hosts: tuple[str, ...] = (),
    server_hosts: tuple[str, ...] = (),
    crash_waves: int = 2,
    server_brownouts: int = 1,
    loss_bursts: int = 2,
    corruption_bursts: int = 1,
    stalls: int = 1,
) -> FaultPlan:
    """The per-shard fleet chaos schedule, replayable from ``(seed, shard_id)``.

    Personalization-based splitting (the same contract as
    ``repro.core.orchestrator.shard_rng``) keeps each shard's weather
    independent of how many shards exist or when their plans are built, so
    a solo-shard chaos replay sees byte-identical faults.

    The schedule composes three fleet failure modes:

    * **middlebox crash/restart waves** — every ``middlebox_hosts`` entry
      dies ``crash_waves`` times inside the first 70% of the horizon and
      restarts shortly after (services must re-register; a standby can
      take over in between);
    * **server brownouts** — rank-agnostic picks from ``server_hosts``
      crash and come back, refusing SYNs and resetting live sessions in
      the window (the retry-storm amplifier the admission path must damp);
    * **link-degradation bursts** — loss/corruption/stall windows scoped
      to the faulted hosts, the Table 2 path weather.
    """
    rng = HmacDrbg(seed, personalization=b"fleet/chaos/%d" % shard_id)
    faults: list = []
    for host in middlebox_hosts:
        for _ in range(crash_waves):
            crash_at = 0.2 + rng.random() * horizon * 0.7
            faults.append(HostCrash(
                time=crash_at,
                host=host,
                restart_after=0.4 + rng.random() * horizon * 0.15,
            ))
    for _ in range(server_brownouts):
        if not server_hosts:
            break
        victim = rng.choice(list(server_hosts))
        brownout_at = 0.2 + rng.random() * horizon * 0.7
        faults.append(HostCrash(
            time=brownout_at,
            host=victim,
            restart_after=0.5 + rng.random() * horizon * 0.2,
        ))
    degraded_hops = tuple(
        frozenset({host}) for host in middlebox_hosts + server_hosts
    ) or (None,)
    for _ in range(loss_bursts):
        faults.append(LossBurst(
            start=rng.random() * horizon * 0.7,
            duration=0.02 + rng.random() * horizon * 0.1,
            rate=0.2 + rng.random() * 0.5,
            hop=rng.choice(list(degraded_hops)),
        ))
    for _ in range(corruption_bursts):
        faults.append(CorruptionBurst(
            start=rng.random() * horizon * 0.7,
            duration=0.02 + rng.random() * horizon * 0.05,
            rate=0.2 + rng.random() * 0.4,
            hop=rng.choice(list(degraded_hops)),
        ))
    for _ in range(stalls):
        faults.append(StreamStall(
            start=rng.random() * horizon * 0.7,
            duration=0.05 + rng.random() * horizon * 0.1,
            hop=rng.choice(list(degraded_hops)),
        ))
    return FaultPlan(
        faults=tuple(faults),
        seed=seed + b"/chaos/%d" % shard_id,
    )


class ChaosTap(Tap):
    """Applies a :class:`FaultPlan`'s window faults to one stream.

    One tap per stream; all taps share the injector's log but each owns a
    DRBG fork (keyed by stream creation order) so coin flips don't depend
    on how traffic interleaves across streams.
    """

    def __init__(
        self, plan: FaultPlan, rng: HmacDrbg, log: list[AppliedFault]
    ) -> None:
        self.plan = plan
        self._rng = rng
        self._log = log
        # Held chunks per stall window: fault -> [(stream, toward_side, data)]
        self._stalled: dict[StreamStall, list] = {}
        self._release_scheduled: set[StreamStall] = set()

    def _active(self, fault, now: float) -> bool:
        return fault.start <= now < fault.start + fault.duration

    def process(self, sender: Host, data: bytes, stream: Stream) -> bytes | None:
        now = stream.sim.now
        hop_name = f"{stream.path[0]}-{stream.path[-1]}"
        for fault in self.plan.window_faults():
            if not self._active(fault, now) or not _hop_matches(fault.hop, stream):
                continue
            if isinstance(fault, LinkPartition):
                _record(
                    self._log,
                    AppliedFault(now, "partition-drop", hop_name, f"{len(data)}B"),
                )
                return None
            if isinstance(fault, StreamStall):
                self._stall(fault, sender, data, stream, hop_name)
                return None
            if isinstance(fault, LossBurst):
                if self._rng.random() < fault.rate:
                    _record(
                        self._log, AppliedFault(now, "loss", hop_name, f"{len(data)}B")
                    )
                    return None
            elif isinstance(fault, CorruptionBurst):
                if data and self._rng.random() < fault.rate:
                    index = self._rng.randint_range(0, len(data) - 1)
                    flipped = bytes([data[index] ^ 0xFF])
                    data = data[:index] + flipped + data[index + 1 :]
                    _record(
                        self._log, AppliedFault(now, "corrupt", hop_name, f"byte {index}")
                    )
        return data

    def _stall(
        self,
        fault: StreamStall,
        sender: Host,
        data: bytes,
        stream: Stream,
        hop_name: str,
    ) -> None:
        side = 0 if stream.endpoints[0].host is sender else 1
        self._stalled.setdefault(fault, []).append((stream, 1 - side, data))
        _record(
            self._log,
            AppliedFault(stream.sim.now, "stall", hop_name, f"{len(data)}B held"),
        )
        if fault not in self._release_scheduled:
            self._release_scheduled.add(fault)
            stream.sim.schedule_at(
                fault.start + fault.duration, lambda: self._release(fault)
            )

    def _release(self, fault: StreamStall) -> None:
        held = self._stalled.pop(fault, [])
        for stream, toward_side, data in held:
            if not stream.aborted:
                # inject() bypasses taps, so released bytes are not re-judged.
                stream.inject(toward_side, data)
        if held:
            _record(
                self._log,
                AppliedFault(
                    held[0][0].sim.now, "stall-release", "", f"{len(held)} chunks"
                ),
            )


class FaultInjector:
    """Installs a plan against a network and logs everything it does.

    Attach *before* opening connections:

        plan = FaultPlan.random(b"seed-1", horizon=5.0, crashable=("mb0",))
        injector = FaultInjector(network, plan)

    Crash/restart schedules fire through the simulator; restarts invoke any
    callbacks registered with :meth:`on_restart` so services can re-listen.
    """

    def __init__(self, network: Network, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.log: list[AppliedFault] = []
        self._rng = HmacDrbg(plan.seed, personalization=b"chaos-taps")
        self._tap_counter = 0
        self._crash_hooks: dict[str, list[Callable[[], None]]] = {}
        self._restart_hooks: dict[str, list[Callable[[], None]]] = {}
        network.on_new_stream(self._on_stream)
        for crash in plan.crashes():
            network.sim.schedule_at(crash.time, lambda c=crash: self._crash(c))

    def on_crash(self, host: str, hook: Callable[[], None]) -> None:
        """Run ``hook`` right after ``host`` crashes (activate a standby)."""
        self._crash_hooks.setdefault(host, []).append(hook)

    def on_restart(self, host: str, hook: Callable[[], None]) -> None:
        """Run ``hook`` when ``host`` restarts (re-register listeners)."""
        self._restart_hooks.setdefault(host, []).append(hook)

    def _on_stream(self, stream: Stream, a: str, b: str) -> None:
        self._tap_counter += 1
        tap_rng = self._rng.fork(b"tap-%d" % self._tap_counter)
        stream.add_tap(ChaosTap(self.plan, tap_rng, self.log))

    def _crash(self, crash: HostCrash) -> None:
        sim = self.network.sim
        if not self.network.host(crash.host).alive:
            # Already down (overlapping waves): skip, keep one restart.
            return
        _record(self.log, AppliedFault(sim.now, "crash", crash.host))
        self.network.crash_host(crash.host)
        for hook in self._crash_hooks.get(crash.host, []):
            hook()
        if crash.restart_after is not None:
            sim.schedule(crash.restart_after, lambda: self._restart(crash.host))

    def _restart(self, host: str) -> None:
        _record(self.log, AppliedFault(self.network.sim.now, "restart", host))
        self.network.restart_host(host)
        for hook in self._restart_hooks.get(host, []):
            hook()
