"""Seeded deterministic protocol fuzzing for the simulated network.

Table 2's broken paths and §3.4's optimistic deployment assume the wire is
hostile: middleboxes, normalizers, and attackers mangle bytes in flight.
The chaos plane (:mod:`repro.netsim.faults`) models *weather* — losses and
stalls that a robust stack should survive. This module models *attack*:
targeted mutations of the byte stream between two parties that a correct
implementation must convert into a clean, attributed teardown (the abort
invariant pinned by ``tests/test_fuzz_conformance.py``).

Everything is replayable from ``(seed, mutation_index)`` alone:

* the mutation kind (when not pinned), the mutated chunk ordinal, and every
  random draw inside the mutation come from the repo's HMAC-DRBG seeded with
  ``seed`` and personalized with the mutation index;
* a :class:`FuzzTap` applies exactly one :class:`ChunkMutator` to one
  direction of one stream, so a failing case prints as a two-tuple and
  reproduces byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.crypto.drbg import HmacDrbg
from repro.netsim.network import Host, Stream, Tap

__all__ = [
    "MUTATION_KINDS",
    "AppliedMutation",
    "ChunkMutator",
    "FuzzCase",
    "FuzzTap",
]

# The mutation corpus. Each kind targets a different layer of the record
# machinery: AEAD tags (bit_flip), reassembly (truncate, length_tamper),
# dispatch (type_swap, subchannel_swap), replay/ordering (duplicate,
# reorder), and resynchronization (garbage_prepend).
MUTATION_KINDS = (
    "bit_flip",
    "truncate",
    "length_tamper",
    "type_swap",
    "subchannel_swap",
    "duplicate",
    "reorder",
    "garbage_prepend",
)

# Values a swapped first byte is drawn from: the TLS content types, the
# mbTLS extension types, and two codes no implementation assigns.
_TYPE_CANDIDATES = (0x14, 0x15, 0x16, 0x17, 0x1A, 0x1B, 0x1C, 0x00, 0xFF)


@dataclass(frozen=True)
class AppliedMutation:
    """One mutation that actually happened, for logs and replay checks."""

    chunk_index: int
    kind: str
    detail: str = ""


class ChunkMutator:
    """Mutates exactly one chunk of a byte stream, deterministically.

    Chunks are numbered in arrival order; the chunk whose ordinal equals
    ``mutation_index`` is mutated and every other chunk passes through
    untouched. ``kind=None`` draws the mutation kind from the DRBG, so a
    corpus can sweep seeds without enumerating kinds.

    ``process_chunk`` returns the bytes to put on the wire in place of the
    chunk (``None`` swallows it — the reorder mutation holds a chunk back
    and releases it behind its successor).
    """

    def __init__(
        self, seed: bytes, mutation_index: int, kind: str | None = None
    ) -> None:
        self.seed = seed
        self.mutation_index = mutation_index
        self._rng = HmacDrbg(
            seed, personalization=b"protocol-fuzz-%d" % mutation_index
        )
        if kind is not None and kind not in MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {kind!r}")
        self.kind = kind if kind is not None else self._rng.choice(MUTATION_KINDS)
        self.applied: list[AppliedMutation] = []
        self._counter = 0
        self._held: bytes | None = None

    def process_chunk(self, data: bytes) -> bytes | None:
        index = self._counter
        self._counter += 1
        if self._held is not None:
            held, self._held = self._held, None
            self.applied.append(
                AppliedMutation(index, "reorder", f"released behind chunk {index}")
            )
            return data + held
        if index != self.mutation_index or not data:
            return data
        return self._mutate(index, data)

    # ------------------------------------------------------------- mutations

    def _mutate(self, index: int, data: bytes) -> bytes | None:
        rng = self._rng
        kind = self.kind
        if kind == "bit_flip":
            bit = rng.randint_range(0, len(data) * 8 - 1)
            mutated = bytearray(data)
            mutated[bit // 8] ^= 1 << (bit % 8)
            self._log(index, kind, f"bit {bit}")
            return bytes(mutated)
        if kind == "truncate":
            keep = rng.randint_range(0, len(data) - 1)
            self._log(index, kind, f"{len(data)}B -> {keep}B")
            return data[:keep]
        if kind == "length_tamper":
            # Overwrite a length field: offset 3 is the TLS record length,
            # offset 0 the high bytes of a u32 frame length.
            offset = rng.choice((0, 3)) if len(data) >= 5 else 0
            junk = rng.random_bytes(2)
            mutated = data[:offset] + junk + data[offset + 2 :]
            self._log(index, kind, f"offset {offset} <- {junk.hex()}")
            return mutated
        if kind == "type_swap":
            new_type = rng.choice(_TYPE_CANDIDATES)
            self._log(index, kind, f"0x{data[0]:02x} -> 0x{new_type:02x}")
            return bytes([new_type]) + data[1:]
        if kind == "subchannel_swap":
            # The first payload byte (offset 5, after a 5-byte record
            # header) carries the subchannel id in mbTLS encapsulation and
            # the message type in handshake payloads.
            if len(data) <= 5:
                return self._fallback_flip(index, data)
            delta = rng.randint_range(1, 255)
            mutated = bytearray(data)
            mutated[5] ^= delta
            self._log(index, kind, f"payload byte ^= 0x{delta:02x}")
            return bytes(mutated)
        if kind == "duplicate":
            self._log(index, kind, f"{len(data)}B replayed")
            return data + data
        if kind == "reorder":
            self._held = data
            self._log(index, kind, f"{len(data)}B held")
            return None
        if kind == "garbage_prepend":
            garbage = rng.random_bytes(rng.randint_range(1, 32))
            self._log(index, kind, f"{len(garbage)}B prepended")
            return garbage + data
        raise ValueError(f"unknown mutation kind {kind!r}")

    def _fallback_flip(self, index: int, data: bytes) -> bytes:
        """Chunk too short for the structured mutation: flip one byte."""
        position = self._rng.randint_range(0, len(data) - 1)
        mutated = bytearray(data)
        mutated[position] ^= 0xFF
        self._log(index, self.kind, f"fallback flip byte {position}")
        return bytes(mutated)

    def _log(self, index: int, kind: str, detail: str) -> None:
        self.applied.append(AppliedMutation(index, kind, detail))
        obs.counter("fuzz_mutations_applied", kind=kind).inc()


@dataclass(frozen=True)
class FuzzCase:
    """One replayable fuzz case: everything needed to rebuild the mutator.

    ``kind=None`` means the kind is DRBG-chosen (printed in failure reports
    via the mutator's :attr:`~ChunkMutator.kind` after construction).
    """

    seed: bytes
    mutation_index: int
    kind: str | None = None
    sender: str | None = field(default=None)

    def mutator(self) -> ChunkMutator:
        return ChunkMutator(self.seed, self.mutation_index, self.kind)

    def describe(self) -> str:
        kind = self.kind if self.kind is not None else "drbg"
        where = f" sender={self.sender}" if self.sender else ""
        return (
            f"(seed={self.seed!r}, mutation_index={self.mutation_index}, "
            f"kind={kind}{where})"
        )


class FuzzTap(Tap):
    """Applies one :class:`ChunkMutator` to chunks crossing one stream.

    ``sender`` restricts the tap to chunks originated by that host (so a
    case can target one direction of one hop); ``None`` mutates both
    directions, counting chunks in global arrival order.
    """

    def __init__(self, mutator: ChunkMutator, sender: str | None = None) -> None:
        self.mutator = mutator
        self._sender = sender

    def process(self, sender: Host, data: bytes, stream: Stream) -> bytes | None:
        if self._sender is not None and sender.name != self._sender:
            return data
        return self.mutator.process_chunk(data)
