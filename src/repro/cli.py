"""Command-line interface: regenerate the paper's experiments without pytest.

Usage::

    python -m repro threats              # Table 1, executed attacks
    python -m repro viability            # Table 2, 241 client sites
    python -m repro interop --sites 100  # §5.1 legacy interop (Alexa-style)
    python -m repro cpu --trials 5       # Figure 5, handshake CPU per party
    python -m repro latency              # Figure 6, WAN handshake latency
    python -m repro sgx                  # Figure 7, enclave throughput model
    python -m repro fuzz                 # protocol-fuzz smoke corpus
    python -m repro selftest             # downgrade gauntlet, P1-P7 scorecard
    python -m repro bench --quick        # bulk-crypto + record-plane benches
    python -m repro fleet --quick        # fleet-scale session churn
    python -m repro fleet --chaos --quick  # chaos fleet: failover + shedding
    python -m repro fleet --check-baseline  # gate vs committed BENCH_fleet.json
    python -m repro metrics              # observability plane vs wiretap
    python -m repro all                  # everything
"""

from __future__ import annotations

import argparse
import sys


def _cmd_threats(args) -> None:
    from repro.bench.tables import render_table
    from repro.bench.threats import run_all_threats

    outcomes = run_all_threats()
    rows = [
        [o.threat, o.protocol, "DEFENDED" if o.defended else "VULNERABLE", o.mechanism]
        for o in outcomes
    ]
    print(render_table("Table 1 — Threats and Defenses (executed)",
                       ["threat", "protocol", "outcome", "mechanism"], rows))


def _cmd_viability(args) -> None:
    from repro.bench.population import generate_population
    from repro.bench.scenarios import Pki
    from repro.bench.tables import render_table
    from repro.bench.viability import run_population
    from repro.crypto.drbg import HmacDrbg

    rng = HmacDrbg(args.seed.encode())
    pki = Pki(rng=rng.fork(b"pki"))
    sites = generate_population(rng.fork(b"pop"))
    if args.sites:
        sites = sites[: args.sites]
    print(f"running mbTLS handshakes from {len(sites)} client sites ...")
    results, by_type = run_population(sites, pki, rng.fork(b"run"))
    rows = [[t, f"{ok}/{total}"] for t, (ok, total) in sorted(by_type.items())]
    rows.append(["Total", f"{sum(ok for ok, _ in by_type.values())}/{len(sites)}"])
    print(render_table("Table 2 — handshake viability by network type",
                       ["network type", "successful"], rows))


def _cmd_interop(args) -> None:
    from repro.bench.alexa import PAPER_COUNTS, generate_alexa_population
    from repro.bench.interop import FetchOutcome, run_alexa
    from repro.bench.scenarios import Pki
    from repro.bench.tables import render_table
    from repro.crypto.drbg import HmacDrbg

    rng = HmacDrbg(args.seed.encode())
    pki = Pki(rng=rng.fork(b"pki"))
    servers = generate_alexa_population(rng.fork(b"pop"))
    if args.sites:
        servers = servers[: args.sites]
    print(f"fetching from {len(servers)} legacy servers through an mbTLS proxy ...")
    counts = run_alexa(servers, pki, rng.fork(b"run"))
    rows = [[outcome.value, counts.get(outcome, 0)] for outcome in FetchOutcome]
    print(render_table("§5.1 legacy interoperability", ["outcome", "sites"], rows))
    if not args.sites:
        print(f"(paper: {PAPER_COUNTS['success']} successes of "
              f"{PAPER_COUNTS['total']})")


def _cmd_cpu(args) -> None:
    from repro.bench.cpu import measure_all
    from repro.bench.tables import render_table

    print(f"measuring handshake CPU, {args.trials} trials per configuration ...")
    results = measure_all(trials=args.trials)
    rows = [
        [r.configuration, f"{r.client*1000:.2f}", f"{r.middlebox*1000:.2f}",
         f"{r.server*1000:.2f}"]
        for r in results
    ]
    print(render_table("Figure 5 — handshake CPU per party (ms, median)",
                       ["configuration", "client", "middlebox", "server"], rows))


def _cmd_latency(args) -> None:
    from repro.bench.scenarios import Pki, run_fetch
    from repro.bench.tables import render_table
    from repro.bench.topologies import build_wan, path_permutations
    from repro.core.config import MiddleboxRole
    from repro.crypto.drbg import HmacDrbg

    rng = HmacDrbg(args.seed.encode())
    pki = Pki(rng=rng.fork(b"pki"))
    rows = []
    deltas = []
    for client, mbox, server in path_permutations():
        label = f"{client}-{mbox}-{server}"
        tls = run_fetch(build_wan(client, mbox, server), pki,
                        rng.fork(b"t" + label.encode()), protocol="tls")
        mbtls = run_fetch(
            build_wan(client, mbox, server), pki, rng.fork(b"m" + label.encode()),
            protocol="mbtls",
            middlebox_hosts=[("mbox", MiddleboxRole.CLIENT_SIDE)],
            server_is_mbtls=False,
        )
        delta = (mbtls.handshake_seconds - tls.handshake_seconds) / tls.handshake_seconds
        deltas.append(delta)
        rows.append([label, f"{tls.handshake_seconds*1000:.0f}",
                     f"{mbtls.handshake_seconds*1000:.0f}", f"{delta*100:+.1f}%"])
    print(render_table("Figure 6 — handshake latency over 12 WAN paths (ms)",
                       ["path", "TLS", "mbTLS", "delta"], rows))
    print(f"mean delta: {sum(deltas)/len(deltas)*100:+.2f}%")


def _cmd_sgx(args) -> None:
    from repro.bench.tables import render_series
    from repro.sgx.syscalls import SgxCostModel

    model = SgxCostModel()
    series = {}
    for label, enc, encl in (
        ("no-enc / no-enclave", False, False),
        ("no-enc / enclave", False, True),
        ("enc / no-enclave", True, False),
        ("enc / enclave", True, True),
    ):
        series[label] = [
            (size, model.throughput(size, enclave=encl, encryption=enc).throughput_gbps)
            for size in (512, 1024, 2048, 4096, 8192, 12288)
        ]
    print(render_series("Figure 7 — throughput (Gbps) vs buffer size",
                        series, "buffer bytes", "Gbps"))


def _cmd_fuzz(args) -> None:
    from repro.bench.fuzzing import CASE_NAMES, run_case, smoke_corpus
    from repro.netsim.fuzz import MUTATION_KINDS, FuzzCase

    if args.replay:
        if args.replay not in CASE_NAMES:
            raise SystemExit(
                f"unknown implementation {args.replay!r}; "
                f"choose from {', '.join(CASE_NAMES)}"
            )
        index = 1 if args.index is None else args.index
        case = FuzzCase(args.seed.encode(), index, args.kind)
        report = run_case(args.replay, case)
        print(report.describe())
        for mutation in report.mutations:
            print(f"  applied: {mutation}")
        for entry in report.events:
            print(f"  event:   {entry}")
        print(f"  digest:  {report.digest}")
        if not report.ok:
            raise SystemExit(1)
        return

    print(f"fuzz smoke corpus: {len(CASE_NAMES)} implementations, "
          f"kinds drawn from {{{', '.join(MUTATION_KINDS)}}} ...")
    reports = smoke_corpus()
    failures = [r for r in reports if not r.ok]
    print(f"{len(reports) - len(failures)}/{len(reports)} cases ok")
    if failures:
        print("failing (seed, mutation_index) pairs, replay with "
              "`python -m repro fuzz --replay NAME --seed SEED --index N`:")
        for report in failures:
            print(f"  {report.describe()}")
        raise SystemExit(1)


def _cmd_selftest(args) -> None:
    import json

    from repro.bench.fuzzing import CASE_NAMES
    from repro.bench.selftest import run_case, run_selftest
    from repro.netsim.downgrade import ATTACK_KINDS, DowngradeCase

    impls = CASE_NAMES
    if args.impl:
        if args.impl not in CASE_NAMES:
            raise SystemExit(
                f"unknown implementation {args.impl!r}; "
                f"choose from {', '.join(CASE_NAMES)}"
            )
        impls = (args.impl,)

    if args.index is not None:
        # Replay one case: everything rebuilds from (seed, case_index).
        if not args.impl:
            raise SystemExit("selftest replay needs --impl NAME")
        case = DowngradeCase(args.seed.encode(), args.index, args.kind)
        verdict = run_case(args.impl, case)
        if args.json:
            print(json.dumps(verdict.to_json(), indent=2, sort_keys=True))
        else:
            print(verdict.describe())
            for attack in verdict.attacks:
                print(f"  applied: {attack}")
        if not verdict.ok:
            raise SystemExit(1)
        return

    seeds = (b"st-0",) if args.quick else (b"st-0", b"st-1")
    cases = len(impls) * len(seeds) * len(ATTACK_KINDS)
    if not args.json:
        print(
            f"downgrade gauntlet: {len(impls)} implementation(s) x "
            f"{len(ATTACK_KINDS)} attack kinds x {len(seeds)} seed(s) "
            f"= {cases} cases ..."
        )
    report = run_selftest(impls=impls, seeds=seeds)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
        print(
            "replay any case with `python -m repro selftest --impl NAME "
            "--seed SEED --index N`"
        )
    if not report.ok:
        raise SystemExit(1)


def _cmd_metrics(args) -> None:
    import json

    from repro.bench.observability import metrics_report, run_observed
    from repro.bench.tables import render_table

    flights = 1 if args.quick else 3
    workers = args.workers or None
    # With a pool, size the response so each flight fragments into eight
    # 16 KiB records — the smallest pool-eligible batch — so the pooled
    # open path is actually exercised on every hop.
    response_size = 128 * 1024 if workers else 2048
    run = run_observed(
        seed=args.seed, flights=flights, workers=workers,
        response_size=response_size,
    )
    report = metrics_report(run, include_trace=not args.quick)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return

    scenario = report["scenario"]
    print(f"observed scenario: {' -> '.join(scenario['path'])}, "
          f"{scenario['flights']} request/response flights, "
          f"seed {scenario['seed']!r} (schema v{report['schema_version']})")
    print(f"established={scenario['established']} "
          f"degraded={scenario['degraded']} "
          f"reply={scenario['reply_bytes']} bytes "
          f"in {scenario['sim_seconds']*1000:.1f} virtual ms")
    rows = []
    mismatches = 0
    for hop in report["per_hop"]:
        ok = (hop["wire_application_data"] == hop["sealed_application_data"]
              == hop["opened_application_data"])
        mismatches += 0 if ok else 1
        rows.append([
            hop["hop"], hop["wire_application_data"],
            f"{hop['sealed_application_data']} ({hop['sealed_by']})",
            f"{hop['opened_application_data']} ({hop['opened_by']})",
            "ok" if ok else "MISMATCH",
        ])
    print(render_table(
        "Per-hop application-data records: wiretap vs metrics",
        ["hop", "wire", "sealed by", "opened by", "check"], rows))
    counters = report["metrics"]["counters"]
    interesting = ("key_installs", "alerts_sent", "seal_flushes",
                   "supervisor_outcomes", "driver_timeouts")
    rows = []
    for name in interesting:
        for entry in counters.get(name, []):
            labels = ", ".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            rows.append([name, labels, entry["value"]])
    if rows:
        print(render_table("Selected session counters",
                           ["counter", "labels", "value"], rows))
    pool = report.get("pool")
    if pool:
        rows = [[f"chunk {t['chunk']}", t["op"], t["value"]]
                for t in pool["tasks"]]
        rows.append(["total records", "seal", pool["records"]["seal"]])
        rows.append(["total records", "open", pool["records"]["open"]])
        print(render_table(
            f"AEAD pool ({pool['workers']} workers)",
            ["series", "op", "count"], rows))
        # Cross-check the pool against the same wiretap-verified counters
        # the per-hop table uses: every pooled record is also a sealed /
        # opened record, so the pool totals are bounded by them, and a
        # pooled run with flights sized for eligibility must actually have
        # routed records through the workers.
        total_sealed = sum(h["sealed_application_data"] for h in report["per_hop"])
        total_opened = sum(h["opened_application_data"] for h in report["per_hop"])
        problems = []
        if pool["records"]["seal"] > total_sealed:
            problems.append(
                f"pooled seals {pool['records']['seal']} exceed the "
                f"{total_sealed} application-data records sealed on the wire")
        if pool["records"]["open"] > total_opened:
            problems.append(
                f"pooled opens {pool['records']['open']} exceed the "
                f"{total_opened} application-data records opened on the wire")
        if pool["records"]["seal"] <= 0 or pool["records"]["open"] <= 0:
            problems.append("pool configured but no records were pooled")
        for op in ("seal", "open"):
            tasked = sum(t["value"] for t in pool["tasks"] if t["op"] == op)
            if tasked <= 0:
                problems.append(f"no {op} tasks reached any chunk slot")
        if problems:
            raise SystemExit("pool cross-check failed: " + "; ".join(problems))
    if mismatches:
        raise SystemExit(f"{mismatches} hop(s) disagree with the wiretap")
    print("all hops agree with the adversary's ground truth"
          + (" (pooled counters reconciled)" if pool else ""))


def _cmd_bench(args) -> None:
    import json
    from pathlib import Path

    from repro.bench import crypto as crypto_bench
    from repro.bench import record_plane as record_plane_bench
    from repro.bench.tables import render_table

    root = Path.cwd()
    crypto_path = root / "BENCH_crypto.json"

    mode = "quick" if args.quick else "full"
    workers = args.workers or None
    print(f"crypto bench ({mode}): primitives at 16 KiB records, "
          f"then a 2-middlebox chain"
          f"{f' (+{workers}-worker pooled leg)' if workers else ''} ...")
    report = crypto_bench.run(quick=args.quick, workers=workers)

    rows = [
        [p["suite"], f"{p['seal_mb_per_s']:.1f}", f"{p['open_mb_per_s']:.1f}",
         f"{p.get('seal_speedup', '-')}"]
        for p in report["primitives"]
    ]
    print(render_table("Bulk crypto — 16 KiB records",
                       ["suite", "seal MB/s", "open MB/s", "vs scalar"], rows))
    chain = report["chain"]
    print(f"chain ({chain['middleboxes']} middleboxes): "
          f"{chain['records_per_sec']:,.0f} rec/s fast, "
          f"{chain['scalar_records_per_sec']:,.0f} rec/s scalar "
          f"({chain['speedup']}x)")
    pool = chain.get("pool")
    if pool:
        print(f"chain pool ({pool['workers']} workers): "
              f"{pool['records_per_sec']:,.0f} rec/s "
              f"({pool['speedup_vs_serial']}x vs serial, "
              f"{pool['pooled_records']} records pooled)")

    if args.check_baseline:
        if not crypto_path.exists():
            raise SystemExit(f"no baseline at {crypto_path}")
        baseline = json.loads(crypto_path.read_text())
        problems = crypto_bench.check_regression(report, baseline)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}")
            raise SystemExit(1)
        print("perf gate: ok (within 30% of the checked-in baseline)")
        return  # a gate run never rewrites the baselines

    crypto_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {crypto_path}")

    plane_report = record_plane_bench.run()
    plane_path = root / "BENCH_record_plane.json"
    plane_path.write_text(json.dumps(plane_report, indent=2) + "\n")
    print(f"wrote {plane_path} "
          f"({plane_report['record_plane']['records_per_sec']:,} rec/s framed)")


def _cmd_fleet(args) -> None:
    import dataclasses
    import json
    from pathlib import Path

    from repro.bench.fleet import (
        FleetConfig,
        chaos_config,
        check_fleet_baseline,
        full_config,
        quick_config,
        run_fleet,
    )
    from repro.bench.tables import render_table

    if args.check_baseline:
        # Gate mode: rebuild the committed baseline's exact configuration
        # (seed and all) and compare machine-independent ratios.  Never
        # rewrites the baseline.
        baseline_path = Path.cwd() / "BENCH_fleet.json"
        baseline = json.loads(baseline_path.read_text())
        recorded = baseline["config"]
        config = FleetConfig(
            seed=recorded["seed"].encode("latin-1"),
            num_shards=recorded["num_shards"],
            sessions=recorded["sessions"],
            servers_per_shard=recorded["servers_per_shard"],
            arrival_ramp=recorded["arrival_ramp"],
            session_lifetime=recorded["session_lifetime"],
            middlebox_every=recorded["middlebox_every"],
            max_inflight_per_shard=recorded["max_inflight_per_shard"],
        )
        print(f"fleet baseline gate: replaying {config.sessions} sessions "
              f"from {baseline_path.name} ...", file=sys.stderr)
        report = run_fleet(config=config, quick=baseline.get("quick", False))
        problems = check_fleet_baseline(report, baseline)
        if problems:
            for problem in problems:
                print(f"FLEET REGRESSION: {problem}")
            raise SystemExit(1)
        print("fleet gate: ok (virtual latencies, resumption, and "
              "events/session within tolerance of the checked-in baseline)")
        return

    if args.chaos:
        config = chaos_config(args.seed.encode(), quick=args.quick)
    elif args.quick:
        config = quick_config(args.seed.encode())
    else:
        config = full_config(args.seed.encode())
    if args.sessions:
        config = dataclasses.replace(config, sessions=args.sessions)
    print(f"fleet churn: {config.sessions} sessions across "
          f"{config.num_shards} shards, "
          f"{config.servers_per_shard} servers/shard"
          f"{' under chaos' if config.chaos else ''} ...",
          file=sys.stderr)
    report = run_fleet(
        config=config, quick=args.quick, workers=args.workers or None
    )

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return

    sessions = report["sessions"]
    resumption = report["resumption"]
    latency = report["handshake_seconds"]
    wall = report["wall"]
    rows = [
        ["submitted", sessions["submitted"]],
        ["established", sessions["established"]],
        ["failed", sessions["failed"]],
        ["peak concurrent", report["concurrency"]["peak_concurrent"]],
        ["resumption hit-rate", f"{resumption['hit_rate']:.1%}"
         if resumption["hit_rate"] is not None else "-"],
        ["handshake p50 (virtual ms)", f"{latency['p50']*1000:.1f}"],
        ["handshake p99 (virtual ms)", f"{latency['p99']*1000:.1f}"],
        ["sessions/sec (wall)", wall["sessions_per_sec"]],
        ["wall seconds", wall["seconds"]],
    ]
    if config.chaos:
        chaos = report["chaos"]
        rows += [
            ["verdicts", " ".join(
                f"{name}={count}"
                for name, count in sorted(chaos["verdicts"].items())
            )],
            ["failovers (activate/restore)",
             f"{chaos['failover']['activations']}/"
             f"{chaos['failover']['restores']}"],
            ["shed", sum(report["admission"]["shed"].values())],
            ["retry denied (breaker/budget)",
             f"{chaos['retry_denied']['breaker']}/"
             f"{chaos['retry_denied']['budget']}"],
            ["recovery (virtual s)", chaos["recovery_virtual_seconds"]],
            ["stuck after drain", chaos["stuck_sessions"]],
        ]
        title = "Fleet-scale chaos resilience"
    else:
        title = "Fleet-scale session churn"
    print(render_table(title, ["metric", "value"], rows))
    print(f"fleet digest: {report['digests']['fleet']}")

    name = "BENCH_fleet_chaos.json" if config.chaos else "BENCH_fleet.json"
    path = Path.cwd() / name
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


_COMMANDS = {
    "threats": _cmd_threats,
    "fleet": _cmd_fleet,
    "viability": _cmd_viability,
    "interop": _cmd_interop,
    "cpu": _cmd_cpu,
    "latency": _cmd_latency,
    "sgx": _cmd_sgx,
    "fuzz": _cmd_fuzz,
    "selftest": _cmd_selftest,
    "bench": _cmd_bench,
    "metrics": _cmd_metrics,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the mbTLS paper's tables and figures.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS) + ["all"],
                        help="which experiment to run")
    parser.add_argument("--sites", type=int, default=0,
                        help="limit population size (viability/interop)")
    parser.add_argument("--sessions", type=int, default=0,
                        help="fleet: override the total bulk-arrival count")
    parser.add_argument("--trials", type=int, default=3,
                        help="trials per configuration (cpu)")
    parser.add_argument("--seed", default="repro-cli",
                        help="deterministic seed for all randomness")
    parser.add_argument("--replay", default="",
                        help="fuzz: replay one case against this "
                             "implementation (e.g. mbtls_middlebox)")
    parser.add_argument("--impl", default="",
                        help="selftest: score only this implementation "
                             "(with --index: replay one case)")
    parser.add_argument("--index", type=int, default=None,
                        help="fuzz/selftest replay: case index "
                             "(fuzz default: 1)")
    parser.add_argument("--kind", default=None,
                        help="fuzz/selftest replay: mutation or attack kind "
                             "(default: derived from the case index)")
    parser.add_argument("--quick", action="store_true",
                        help="bench/metrics: fewer repeats/flights (CI smoke)")
    parser.add_argument("--json", action="store_true",
                        help="metrics: emit the schema-versioned JSON report "
                             "instead of tables")
    parser.add_argument("--check-baseline", action="store_true",
                        help="bench/fleet: compare against the checked-in "
                             "BENCH_crypto.json / BENCH_fleet.json and fail "
                             "on >30%% regression instead of rewriting it")
    parser.add_argument("--chaos", action="store_true",
                        help="fleet: run the deterministic fault schedule "
                             "(middlebox failover, brownouts, degradation) "
                             "and write BENCH_fleet_chaos.json")
    parser.add_argument("--workers", type=int, default=0,
                        help="bench: add a pooled chain leg with this many "
                             "AEAD worker processes; fleet: run shards in "
                             "worker processes; metrics: pool the scenario's "
                             "seal/open batches and cross-check the pooled "
                             "counters (0 = serial)")
    args = parser.parse_args(argv)

    if args.command == "all":
        for name in ("threats", "viability", "interop", "cpu", "latency", "sgx"):
            _COMMANDS[name](args)
            print()
    else:
        _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
