"""AES block cipher (FIPS 197), encryption direction, pure Python.

Only the forward (encryption) transform is implemented because every mode
used by this library (CTR inside GCM) needs only block encryption. The
implementation uses the classic four T-tables so that bulk encryption is
tolerably fast in pure Python.

Tables are derived programmatically from GF(2^8) arithmetic rather than
hard-coded, so a typo cannot silently corrupt the S-box; correctness is
cross-checked against an independent implementation in the test suite.
"""

from __future__ import annotations

from repro.errors import CryptoError

__all__ = ["AES"]


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial 0x11B."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> list[int]:
    """Construct the AES S-box from field inversion + affine transform."""
    # exp/log tables over generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(a: int) -> int:
        if a == 0:
            return 0
        return exp[255 - log[a]]

    def affine(b: int) -> int:
        result = 0x63
        for shift in range(5):
            rotated = ((b << shift) | (b >> (8 - shift))) & 0xFF
            result ^= rotated
        return result

    return [affine(inverse(i)) for i in range(256)]


_SBOX = _build_sbox()

# T-tables: _T0[x] packs the MixColumns contribution of S-box output S at
# column position 0 as a big-endian 32-bit word (2S, S, S, 3S).
_T0 = [0] * 256
_T1 = [0] * 256
_T2 = [0] * 256
_T3 = [0] * 256
for _i in range(256):
    _s = _SBOX[_i]
    _s2 = _gf_mul(_s, 2)
    _s3 = _s2 ^ _s
    _T0[_i] = (_s2 << 24) | (_s << 16) | (_s << 8) | _s3
    _T1[_i] = (_s3 << 24) | (_s2 << 16) | (_s << 8) | _s
    _T2[_i] = (_s << 24) | (_s3 << 16) | (_s2 << 8) | _s
    _T3[_i] = (_s << 24) | (_s << 16) | (_s3 << 8) | _s2

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]


class AES:
    """AES-128/192/256 block encryption.

    Args:
        key: 16, 24, or 32 bytes.

    Raises:
        CryptoError: if the key length is not a valid AES key size.
    """

    block_size = 16

    # Below this many counter blocks the scalar T-table loop wins; above
    # it the bitsliced big-int circuit amortizes its fixed setup cost.
    _BITSLICE_THRESHOLD = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"invalid AES key length: {len(key)}")
        self._round_keys = self._expand_key(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._bitsliced = None

    @staticmethod
    def _expand_key(key: bytes) -> list[int]:
        """FIPS 197 key schedule; returns round keys as 32-bit words."""
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        sbox = _SBOX
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (sbox[(temp >> 24) & 0xFF] << 24)
                    | (sbox[(temp >> 16) & 0xFF] << 16)
                    | (sbox[(temp >> 8) & 0xFF] << 8)
                    | sbox[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (sbox[(temp >> 24) & 0xFF] << 24)
                    | (sbox[(temp >> 16) & 0xFF] << 16)
                    | (sbox[(temp >> 8) & 0xFF] << 8)
                    | sbox[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise CryptoError("AES block must be exactly 16 bytes")
        rk = self._round_keys
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = _SBOX

        c0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        c1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        c2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        c3 = int.from_bytes(block[12:16], "big") ^ rk[3]

        for rnd in range(1, self._rounds):
            base = 4 * rnd
            n0 = (
                t0[(c0 >> 24) & 0xFF]
                ^ t1[(c1 >> 16) & 0xFF]
                ^ t2[(c2 >> 8) & 0xFF]
                ^ t3[c3 & 0xFF]
                ^ rk[base]
            )
            n1 = (
                t0[(c1 >> 24) & 0xFF]
                ^ t1[(c2 >> 16) & 0xFF]
                ^ t2[(c3 >> 8) & 0xFF]
                ^ t3[c0 & 0xFF]
                ^ rk[base + 1]
            )
            n2 = (
                t0[(c2 >> 24) & 0xFF]
                ^ t1[(c3 >> 16) & 0xFF]
                ^ t2[(c0 >> 8) & 0xFF]
                ^ t3[c1 & 0xFF]
                ^ rk[base + 2]
            )
            n3 = (
                t0[(c3 >> 24) & 0xFF]
                ^ t1[(c0 >> 16) & 0xFF]
                ^ t2[(c1 >> 8) & 0xFF]
                ^ t3[c2 & 0xFF]
                ^ rk[base + 3]
            )
            c0, c1, c2, c3 = n0, n1, n2, n3

        base = 4 * self._rounds
        o0 = (
            (sbox[(c0 >> 24) & 0xFF] << 24)
            | (sbox[(c1 >> 16) & 0xFF] << 16)
            | (sbox[(c2 >> 8) & 0xFF] << 8)
            | sbox[c3 & 0xFF]
        ) ^ rk[base]
        o1 = (
            (sbox[(c1 >> 24) & 0xFF] << 24)
            | (sbox[(c2 >> 16) & 0xFF] << 16)
            | (sbox[(c3 >> 8) & 0xFF] << 8)
            | sbox[c0 & 0xFF]
        ) ^ rk[base + 1]
        o2 = (
            (sbox[(c2 >> 24) & 0xFF] << 24)
            | (sbox[(c3 >> 16) & 0xFF] << 16)
            | (sbox[(c0 >> 8) & 0xFF] << 8)
            | sbox[c1 & 0xFF]
        ) ^ rk[base + 2]
        o3 = (
            (sbox[(c3 >> 24) & 0xFF] << 24)
            | (sbox[(c0 >> 16) & 0xFF] << 16)
            | (sbox[(c1 >> 8) & 0xFF] << 8)
            | sbox[c2 & 0xFF]
        ) ^ rk[base + 3]

        return (
            o0.to_bytes(4, "big")
            + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big")
            + o3.to_bytes(4, "big")
        )

    def ctr_keystream(self, prefix: bytes, initial_counter: int,
                      nblocks: int) -> bytes:
        """Keystream of blocks ``E_K(prefix || BE32(initial_counter + j))``.

        The counter wraps modulo 2^32 as in NIST SP 800-38D.  Large
        requests are generated by the bitsliced big-int engine in one
        pass; small ones fall back to the per-block T-table loop.
        """
        if len(prefix) != 12:
            raise CryptoError("CTR prefix must be 12 bytes")
        if nblocks <= 0:
            return b""
        if nblocks >= self._BITSLICE_THRESHOLD:
            engine = self._bitsliced
            if engine is None:
                from repro.crypto.bitsliced import BitslicedCtr

                engine = BitslicedCtr(self._round_keys, self._rounds)
                self._bitsliced = engine
            return engine.keystream(prefix, initial_counter, nblocks)
        encrypt = self.encrypt_block
        return b"".join(
            encrypt(prefix + (((initial_counter + j) & 0xFFFFFFFF)
                              ).to_bytes(4, "big"))
            for j in range(nblocks)
        )
