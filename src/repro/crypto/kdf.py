"""Key-derivation functions: the TLS 1.2 PRF (RFC 5246) and HKDF (RFC 5869)."""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["prf", "p_hash", "hkdf_extract", "hkdf_expand", "hkdf"]


def p_hash(secret: bytes, seed: bytes, length: int, hash_name: str = "sha256") -> bytes:
    """The TLS P_hash data-expansion function."""
    output = bytearray()
    a = seed
    while len(output) < length:
        a = hmac.new(secret, a, hash_name).digest()
        output += hmac.new(secret, a + seed, hash_name).digest()
    return bytes(output[:length])


def prf(
    secret: bytes,
    label: bytes,
    seed: bytes,
    length: int,
    hash_name: str = "sha256",
) -> bytes:
    """The TLS 1.2 PRF: P_hash(secret, label || seed)."""
    return p_hash(secret, label + seed, length, hash_name)


def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * hashlib.new(hash_name).digest_size
    return hmac.new(salt, ikm, hash_name).digest()


def hkdf_expand(
    prk: bytes, info: bytes, length: int, hash_name: str = "sha256"
) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    digest_size = hashlib.new(hash_name).digest_size
    if length > 255 * digest_size:
        raise ValueError("HKDF output too long")
    output = bytearray()
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hash_name).digest()
        output += block
        counter += 1
    return bytes(output[:length])


def hkdf(
    ikm: bytes,
    salt: bytes = b"",
    info: bytes = b"",
    length: int = 32,
    hash_name: str = "sha256",
) -> bytes:
    """Single-call HKDF extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, ikm, hash_name), info, length, hash_name)
