"""ChaCha20 stream cipher and ChaCha20-Poly1305 AEAD (RFC 8439), pure Python."""

from __future__ import annotations

import hmac as _hmac

from repro.errors import CryptoError, IntegrityError

__all__ = ["chacha20_block", "chacha20_xor", "poly1305_mac", "ChaCha20Poly1305"]

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 16) | (state[d] >> 16)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 12) | (state[b] >> 20)) & _MASK32
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 8) | (state[d] >> 24)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 7) | (state[b] >> 25)) & _MASK32


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte ChaCha20 keystream block."""
    if len(key) != 32:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state += [int.from_bytes(key[i : i + 4], "little") for i in range(0, 32, 4)]
    state.append(counter & _MASK32)
    state += [int.from_bytes(nonce[i : i + 4], "little") for i in range(0, 12, 4)]

    working = state.copy()
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    return b"".join(
        ((working[i] + state[i]) & _MASK32).to_bytes(4, "little") for i in range(16)
    )


def chacha20_xor(key: bytes, counter: int, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with the ChaCha20 keystream."""
    out = bytearray(len(data))
    for offset in range(0, len(data), 64):
        block = chacha20_block(key, counter + offset // 64, nonce)
        chunk = data[offset : offset + 64]
        out[offset : offset + len(chunk)] = bytes(a ^ b for a, b in zip(chunk, block))
    return bytes(out)


_P1305 = (1 << 130) - 5


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    if len(key) != 32:
        raise CryptoError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for offset in range(0, len(message), 16):
        chunk = message[offset : offset + 16]
        n = int.from_bytes(chunk, "little") + (1 << (8 * len(chunk)))
        accumulator = ((accumulator + n) * r) % _P1305
    return ((accumulator + s) & ((1 << 128) - 1)).to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return data
    return data + b"\x00" * (16 - len(data) % 16)


class ChaCha20Poly1305:
    """ChaCha20-Poly1305 AEAD per RFC 8439 with 96-bit nonces."""

    tag_length = 16
    nonce_length = 12

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise CryptoError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = key

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        otk = chacha20_block(self._key, 0, nonce)[:32]
        mac_data = (
            _pad16(aad)
            + _pad16(ciphertext)
            + len(aad).to_bytes(8, "little")
            + len(ciphertext).to_bytes(8, "little")
        )
        return poly1305_mac(otk, mac_data)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        ciphertext = chacha20_xor(self._key, 1, nonce, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises IntegrityError on failure."""
        if len(data) < self.tag_length:
            raise IntegrityError("ciphertext shorter than Poly1305 tag")
        ciphertext, tag = data[: -self.tag_length], data[-self.tag_length :]
        if not _hmac.compare_digest(tag, self._tag(nonce, aad, ciphertext)):
            raise IntegrityError("Poly1305 tag mismatch")
        return chacha20_xor(self._key, 1, nonce, ciphertext)
