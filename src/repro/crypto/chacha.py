"""ChaCha20 stream cipher and ChaCha20-Poly1305 AEAD (RFC 8439), pure Python."""

from __future__ import annotations

import hmac as _hmac
import struct as _struct

from repro.errors import CryptoError, IntegrityError

__all__ = ["chacha20_block", "chacha20_xor", "poly1305_mac", "ChaCha20Poly1305"]

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 16) | (state[d] >> 16)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 12) | (state[b] >> 20)) & _MASK32
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 8) | (state[d] >> 24)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 7) | (state[b] >> 25)) & _MASK32


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte ChaCha20 keystream block."""
    if len(key) != 32:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state += [int.from_bytes(key[i : i + 4], "little") for i in range(0, 32, 4)]
    state.append(counter & _MASK32)
    state += [int.from_bytes(nonce[i : i + 4], "little") for i in range(0, 12, 4)]

    working = state.copy()
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    return b"".join(
        ((working[i] + state[i]) & _MASK32).to_bytes(4, "little") for i in range(16)
    )


_PACK16 = _struct.Struct("<16I").pack


def _keystream(key: bytes, counter: int, nonce: bytes, nblocks: int) -> bytes:
    """ChaCha20 keystream, double rounds unrolled over 16 locals."""
    s = list(_CONSTANTS)
    s += [int.from_bytes(key[i : i + 4], "little") for i in range(0, 32, 4)]
    s.append(0)
    s += [int.from_bytes(nonce[i : i + 4], "little") for i in range(0, 12, 4)]
    s0, s1, s2, s3, s4, s5, s6, s7 = s[:8]
    s8, s9, s10, s11, _, s13, s14, s15 = s[8:]
    M = _MASK32
    parts = []
    for i in range(nblocks):
        s12 = (counter + i) & M
        x0, x1, x2, x3, x4, x5, x6, x7 = s0, s1, s2, s3, s4, s5, s6, s7
        x8, x9, x10, x11, x12, x13, x14, x15 = s8, s9, s10, s11, s12, s13, s14, s15
        for _ in range(10):
            x0 = (x0 + x4) & M; x12 ^= x0; x12 = (x12 << 16 | x12 >> 16) & M
            x8 = (x8 + x12) & M; x4 ^= x8; x4 = (x4 << 12 | x4 >> 20) & M
            x0 = (x0 + x4) & M; x12 ^= x0; x12 = (x12 << 8 | x12 >> 24) & M
            x8 = (x8 + x12) & M; x4 ^= x8; x4 = (x4 << 7 | x4 >> 25) & M
            x1 = (x1 + x5) & M; x13 ^= x1; x13 = (x13 << 16 | x13 >> 16) & M
            x9 = (x9 + x13) & M; x5 ^= x9; x5 = (x5 << 12 | x5 >> 20) & M
            x1 = (x1 + x5) & M; x13 ^= x1; x13 = (x13 << 8 | x13 >> 24) & M
            x9 = (x9 + x13) & M; x5 ^= x9; x5 = (x5 << 7 | x5 >> 25) & M
            x2 = (x2 + x6) & M; x14 ^= x2; x14 = (x14 << 16 | x14 >> 16) & M
            x10 = (x10 + x14) & M; x6 ^= x10; x6 = (x6 << 12 | x6 >> 20) & M
            x2 = (x2 + x6) & M; x14 ^= x2; x14 = (x14 << 8 | x14 >> 24) & M
            x10 = (x10 + x14) & M; x6 ^= x10; x6 = (x6 << 7 | x6 >> 25) & M
            x3 = (x3 + x7) & M; x15 ^= x3; x15 = (x15 << 16 | x15 >> 16) & M
            x11 = (x11 + x15) & M; x7 ^= x11; x7 = (x7 << 12 | x7 >> 20) & M
            x3 = (x3 + x7) & M; x15 ^= x3; x15 = (x15 << 8 | x15 >> 24) & M
            x11 = (x11 + x15) & M; x7 ^= x11; x7 = (x7 << 7 | x7 >> 25) & M
            x0 = (x0 + x5) & M; x15 ^= x0; x15 = (x15 << 16 | x15 >> 16) & M
            x10 = (x10 + x15) & M; x5 ^= x10; x5 = (x5 << 12 | x5 >> 20) & M
            x0 = (x0 + x5) & M; x15 ^= x0; x15 = (x15 << 8 | x15 >> 24) & M
            x10 = (x10 + x15) & M; x5 ^= x10; x5 = (x5 << 7 | x5 >> 25) & M
            x1 = (x1 + x6) & M; x12 ^= x1; x12 = (x12 << 16 | x12 >> 16) & M
            x11 = (x11 + x12) & M; x6 ^= x11; x6 = (x6 << 12 | x6 >> 20) & M
            x1 = (x1 + x6) & M; x12 ^= x1; x12 = (x12 << 8 | x12 >> 24) & M
            x11 = (x11 + x12) & M; x6 ^= x11; x6 = (x6 << 7 | x6 >> 25) & M
            x2 = (x2 + x7) & M; x13 ^= x2; x13 = (x13 << 16 | x13 >> 16) & M
            x8 = (x8 + x13) & M; x7 ^= x8; x7 = (x7 << 12 | x7 >> 20) & M
            x2 = (x2 + x7) & M; x13 ^= x2; x13 = (x13 << 8 | x13 >> 24) & M
            x8 = (x8 + x13) & M; x7 ^= x8; x7 = (x7 << 7 | x7 >> 25) & M
            x3 = (x3 + x4) & M; x14 ^= x3; x14 = (x14 << 16 | x14 >> 16) & M
            x9 = (x9 + x14) & M; x4 ^= x9; x4 = (x4 << 12 | x4 >> 20) & M
            x3 = (x3 + x4) & M; x14 ^= x3; x14 = (x14 << 8 | x14 >> 24) & M
            x9 = (x9 + x14) & M; x4 ^= x9; x4 = (x4 << 7 | x4 >> 25) & M
        parts.append(_PACK16(
            (x0 + s0) & M, (x1 + s1) & M, (x2 + s2) & M, (x3 + s3) & M,
            (x4 + s4) & M, (x5 + s5) & M, (x6 + s6) & M, (x7 + s7) & M,
            (x8 + s8) & M, (x9 + s9) & M, (x10 + s10) & M, (x11 + s11) & M,
            (x12 + s12) & M, (x13 + s13) & M, (x14 + s14) & M, (x15 + s15) & M,
        ))
    return b"".join(parts)


def chacha20_xor(key: bytes, counter: int, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with the ChaCha20 keystream."""
    n = len(data)
    if n == 0:
        return b""
    if len(key) != 32:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    keystream = _keystream(key, counter, nonce, (n + 63) // 64)
    if n % 64:
        keystream = keystream[:n]
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(n, "little")


_P1305 = (1 << 130) - 5


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    if len(key) != 32:
        raise CryptoError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    length = len(message)
    full = length - length % 16
    from_bytes = int.from_bytes
    pad = 1 << 128
    mask130 = (1 << 130) - 1
    # Lazy reduction: fold 2^130 = 5 (mod p) each block and defer the
    # exact modulus to the end; the accumulator stays below 2^132.
    for offset in range(0, full, 16):
        accumulator = (
            accumulator + from_bytes(message[offset : offset + 16], "little")
            + pad
        ) * r
        accumulator = (accumulator & mask130) + 5 * (accumulator >> 130)
    if full < length:
        chunk = message[full:]
        n = from_bytes(chunk, "little") + (1 << (8 * len(chunk)))
        accumulator = (accumulator + n) * r
    accumulator %= _P1305
    return ((accumulator + s) & ((1 << 128) - 1)).to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return data
    return data + b"\x00" * (16 - len(data) % 16)


class ChaCha20Poly1305:
    """ChaCha20-Poly1305 AEAD per RFC 8439 with 96-bit nonces."""

    tag_length = 16
    nonce_length = 12

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise CryptoError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = key

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        otk = chacha20_block(self._key, 0, nonce)[:32]
        mac_data = (
            _pad16(aad)
            + _pad16(ciphertext)
            + len(aad).to_bytes(8, "little")
            + len(ciphertext).to_bytes(8, "little")
        )
        return poly1305_mac(otk, mac_data)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        ciphertext = chacha20_xor(self._key, 1, nonce, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises IntegrityError on failure."""
        if len(data) < self.tag_length:
            raise IntegrityError("ciphertext shorter than Poly1305 tag")
        ciphertext, tag = data[: -self.tag_length], data[-self.tag_length :]
        if not _hmac.compare_digest(tag, self._tag(nonce, aad, ciphertext)):
            raise IntegrityError("Poly1305 tag mismatch")
        return chacha20_xor(self._key, 1, nonce, ciphertext)

    def seal_many(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Encrypt a batch of ``(nonce, plaintext, aad)`` records.

        Output is byte-identical to sequential :meth:`encrypt` calls.
        """
        encrypt = self.encrypt
        return [encrypt(nonce, pt, aad) for nonce, pt, aad in items]

    def open_many(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Decrypt a batch of ``(nonce, ciphertext||tag, aad)`` records."""
        decrypt = self.decrypt
        return [decrypt(nonce, data, aad) for nonce, data, aad in items]
