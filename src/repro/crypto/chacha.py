"""ChaCha20 stream cipher and ChaCha20-Poly1305 AEAD (RFC 8439), pure Python.

Two speed tiers share the same wire format:

* **Scalar** — the reference implementation: one 64-byte block per pass
  through the 20 rounds, plus the per-block Poly1305 loop. This is the
  path below the cutovers and the oracle the equivalence tests compare
  against.
* **Vectorized** — the ``crypto/bitsliced.py`` treatment applied to
  ChaCha20: each of the 16 state words becomes one big int holding every
  block's copy of that word in a 64-bit lane (value in bits [0, 32), a
  guard region in [32, 64) that absorbs cross-lane spill from the
  rotate shifts and is masked off). Add/xor/rotl become masked big-int
  ops, so one pass through the 20 rounds computes the keystream for up
  to :data:`_MAX_LANES` blocks at once — spanning *several records* of a
  flight in one run, including each record's Poly1305 one-time-key block
  (counter 0 is contiguous with the data blocks at counter 1+).
  Poly1305 itself runs Horner over 4-block chunks with precomputed
  ``r^2..r^4`` — one lazy fold per chunk instead of per block. (A
  Kronecker-packed variant — one big multiply per 16-block chunk — was
  measured and rejected: CPython's large-int multiply costs more than
  the 16 small modmuls it replaces.)

Both tiers produce byte-identical output; the cutovers are plain module
constants so the bench harness can force the scalar tier.
"""

from __future__ import annotations

import hmac as _hmac
import struct as _struct

from repro.errors import CryptoError, IntegrityError

__all__ = ["chacha20_block", "chacha20_xor", "poly1305_mac", "ChaCha20Poly1305"]

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"

# Total 64-byte blocks at or above which a keystream request takes the
# lane engine; below it the per-block scalar loop is cheaper than lane
# setup. The bench's scalar context manager raises this to force the
# pre-fast-path code.
_VECTOR_THRESHOLD = 4
# Cap on lanes per vector run: big-int op cost is linear in lane count
# but loses cache locality past ~256 lanes (measured ~3.9us/block at 256
# lanes vs ~5.5us/block at 1024), so longer batches run in slices.
_MAX_LANES = 256

# Poly1305 messages at least this long take the unrolled 4-block Horner
# chunks; the bench's scalar context manager raises it.
_POLY_CHUNK_BYTES = 64


def _check_counter_span(counter: int, nblocks: int) -> None:
    """Reject keystream spans that would overflow the 32-bit block counter.

    RFC 8439 leaves counter wraparound undefined; wrapping silently (as
    ``counter & _MASK32`` used to) *reuses keystream*, which is fatal, so
    any span touching a counter past 2**32 - 1 is an error.
    """
    if counter < 0 or counter + nblocks - 1 > _MASK32:
        raise CryptoError("ChaCha20 block counter overflow")


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 16) | (state[d] >> 16)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 12) | (state[b] >> 20)) & _MASK32
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 8) | (state[d] >> 24)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 7) | (state[b] >> 25)) & _MASK32


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte ChaCha20 keystream block."""
    if len(key) != 32:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    _check_counter_span(counter, 1)
    state = list(_CONSTANTS)
    state += [int.from_bytes(key[i : i + 4], "little") for i in range(0, 32, 4)]
    state.append(counter)
    state += [int.from_bytes(nonce[i : i + 4], "little") for i in range(0, 12, 4)]

    working = state.copy()
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    return b"".join(
        ((working[i] + state[i]) & _MASK32).to_bytes(4, "little") for i in range(16)
    )


_PACK16 = _struct.Struct("<16I").pack


def _keystream(key: bytes, counter: int, nonce: bytes, nblocks: int) -> bytes:
    """Scalar ChaCha20 keystream, double rounds unrolled over 16 locals."""
    _check_counter_span(counter, nblocks)
    s = list(_CONSTANTS)
    s += [int.from_bytes(key[i : i + 4], "little") for i in range(0, 32, 4)]
    s.append(0)
    s += [int.from_bytes(nonce[i : i + 4], "little") for i in range(0, 12, 4)]
    s0, s1, s2, s3, s4, s5, s6, s7 = s[:8]
    s8, s9, s10, s11, _, s13, s14, s15 = s[8:]
    M = _MASK32
    parts = []
    for i in range(nblocks):
        s12 = counter + i
        x0, x1, x2, x3, x4, x5, x6, x7 = s0, s1, s2, s3, s4, s5, s6, s7
        x8, x9, x10, x11, x12, x13, x14, x15 = s8, s9, s10, s11, s12, s13, s14, s15
        for _ in range(10):
            x0 = (x0 + x4) & M; x12 ^= x0; x12 = (x12 << 16 | x12 >> 16) & M
            x8 = (x8 + x12) & M; x4 ^= x8; x4 = (x4 << 12 | x4 >> 20) & M
            x0 = (x0 + x4) & M; x12 ^= x0; x12 = (x12 << 8 | x12 >> 24) & M
            x8 = (x8 + x12) & M; x4 ^= x8; x4 = (x4 << 7 | x4 >> 25) & M
            x1 = (x1 + x5) & M; x13 ^= x1; x13 = (x13 << 16 | x13 >> 16) & M
            x9 = (x9 + x13) & M; x5 ^= x9; x5 = (x5 << 12 | x5 >> 20) & M
            x1 = (x1 + x5) & M; x13 ^= x1; x13 = (x13 << 8 | x13 >> 24) & M
            x9 = (x9 + x13) & M; x5 ^= x9; x5 = (x5 << 7 | x5 >> 25) & M
            x2 = (x2 + x6) & M; x14 ^= x2; x14 = (x14 << 16 | x14 >> 16) & M
            x10 = (x10 + x14) & M; x6 ^= x10; x6 = (x6 << 12 | x6 >> 20) & M
            x2 = (x2 + x6) & M; x14 ^= x2; x14 = (x14 << 8 | x14 >> 24) & M
            x10 = (x10 + x14) & M; x6 ^= x10; x6 = (x6 << 7 | x6 >> 25) & M
            x3 = (x3 + x7) & M; x15 ^= x3; x15 = (x15 << 16 | x15 >> 16) & M
            x11 = (x11 + x15) & M; x7 ^= x11; x7 = (x7 << 12 | x7 >> 20) & M
            x3 = (x3 + x7) & M; x15 ^= x3; x15 = (x15 << 8 | x15 >> 24) & M
            x11 = (x11 + x15) & M; x7 ^= x11; x7 = (x7 << 7 | x7 >> 25) & M
            x0 = (x0 + x5) & M; x15 ^= x0; x15 = (x15 << 16 | x15 >> 16) & M
            x10 = (x10 + x15) & M; x5 ^= x10; x5 = (x5 << 12 | x5 >> 20) & M
            x0 = (x0 + x5) & M; x15 ^= x0; x15 = (x15 << 8 | x15 >> 24) & M
            x10 = (x10 + x15) & M; x5 ^= x10; x5 = (x5 << 7 | x5 >> 25) & M
            x1 = (x1 + x6) & M; x12 ^= x1; x12 = (x12 << 16 | x12 >> 16) & M
            x11 = (x11 + x12) & M; x6 ^= x11; x6 = (x6 << 12 | x6 >> 20) & M
            x1 = (x1 + x6) & M; x12 ^= x1; x12 = (x12 << 8 | x12 >> 24) & M
            x11 = (x11 + x12) & M; x6 ^= x11; x6 = (x6 << 7 | x6 >> 25) & M
            x2 = (x2 + x7) & M; x13 ^= x2; x13 = (x13 << 16 | x13 >> 16) & M
            x8 = (x8 + x13) & M; x7 ^= x8; x7 = (x7 << 12 | x7 >> 20) & M
            x2 = (x2 + x7) & M; x13 ^= x2; x13 = (x13 << 8 | x13 >> 24) & M
            x8 = (x8 + x13) & M; x7 ^= x8; x7 = (x7 << 7 | x7 >> 25) & M
            x3 = (x3 + x4) & M; x14 ^= x3; x14 = (x14 << 16 | x14 >> 16) & M
            x9 = (x9 + x14) & M; x4 ^= x9; x4 = (x4 << 12 | x4 >> 20) & M
            x3 = (x3 + x4) & M; x14 ^= x3; x14 = (x14 << 8 | x14 >> 24) & M
            x9 = (x9 + x14) & M; x4 ^= x9; x4 = (x4 << 7 | x4 >> 25) & M
        parts.append(_PACK16(
            (x0 + s0) & M, (x1 + s1) & M, (x2 + s2) & M, (x3 + s3) & M,
            (x4 + s4) & M, (x5 + s5) & M, (x6 + s6) & M, (x7 + s7) & M,
            (x8 + s8) & M, (x9 + s9) & M, (x10 + s10) & M, (x11 + s11) & M,
            (x12 + s12) & M, (x13 + s13) & M, (x14 + s14) & M, (x15 + s15) & M,
        ))
    return b"".join(parts)


# ----------------------------------------------------------- vectorized tier


class _Lanes:
    """Per-lane-count constants for the big-int lane layout.

    With ``n`` lanes of 64 bits each: ``rep`` replicates a 32-bit word
    into every lane (``word * rep``), ``mask`` keeps each lane's low 32
    bits (the value region — bits [32, 64) are the spill guard), and
    ``ramp`` is ``0, 1, ..., n-1`` across the lanes, so a contiguous
    counter run is just ``c0 * rep + ramp``. The widest rotate shift in
    the rounds is ``<< 16`` (reaching bit 47 < 64) and the deepest
    right-shift spill from ``>> 25`` lands at bit 39 of the lane below —
    inside that lane's guard region — so one mask after each op restores
    the invariant.
    """

    _cache: dict[int, "_Lanes"] = {}
    __slots__ = ("n", "rep", "mask", "ramp", "consts")

    def __new__(cls, n: int) -> "_Lanes":
        cached = cls._cache.get(n)
        if cached is not None:
            return cached
        if len(cls._cache) > 32:
            cls._cache.clear()
        self = object.__new__(cls)
        self.n = n
        self.rep = ((1 << (64 * n)) - 1) // 0xFFFFFFFFFFFFFFFF
        self.mask = _MASK32 * self.rep
        ramp = 0
        for i in range(1, n):
            ramp |= i << (64 * i)
        self.ramp = ramp
        self.consts = tuple(c * self.rep for c in _CONSTANTS)
        cls._cache[n] = self
        return self


#: Cached per-key lane replications, keyed ``(key, lane_count)``.
_KEY_LANES: dict[tuple[bytes, int], tuple[int, ...]] = {}


def _key_lanes(key: bytes, lanes: _Lanes) -> tuple[int, ...]:
    cache_key = (key, lanes.n)
    cached = _KEY_LANES.get(cache_key)
    if cached is None:
        if len(_KEY_LANES) > 128:
            _KEY_LANES.clear()
        rep = lanes.rep
        cached = tuple(
            int.from_bytes(key[i : i + 4], "little") * rep for i in range(0, 32, 4)
        )
        _KEY_LANES[cache_key] = cached
    return cached


def _vector_run(key: bytes, segments: list[tuple[bytes, int, int]]) -> bytes:
    """One lane-engine pass over ``(nonce, counter, nblocks)`` segments.

    Segment lanes are laid out left to right in submission order; lane
    counts are padded to a multiple of 8 (zero nonce/counter — their
    keystream is discarded) so the layout cache stays small.
    """
    total = 0
    for _, _, nblocks in segments:
        total += nblocks
    n = total + (-total % 8)
    lanes = _Lanes(n)
    M = lanes.mask

    w12 = w13 = w14 = w15 = 0
    offset = 0
    for nonce, counter, nblocks in segments:
        sub = _Lanes(nblocks)
        shift = 64 * offset
        w12 |= (counter * sub.rep + sub.ramp) << shift
        w13 |= (int.from_bytes(nonce[0:4], "little") * sub.rep) << shift
        w14 |= (int.from_bytes(nonce[4:8], "little") * sub.rep) << shift
        w15 |= (int.from_bytes(nonce[8:12], "little") * sub.rep) << shift
        offset += nblocks

    s0, s1, s2, s3 = lanes.consts
    s4, s5, s6, s7, s8, s9, s10, s11 = _key_lanes(key, lanes)
    x0, x1, x2, x3, x4, x5, x6, x7 = s0, s1, s2, s3, s4, s5, s6, s7
    x8, x9, x10, x11, x12, x13, x14, x15 = s8, s9, s10, s11, w12, w13, w14, w15
    for _ in range(10):
        x0 = (x0 + x4) & M; x12 ^= x0; x12 = (x12 << 16 | x12 >> 16) & M
        x8 = (x8 + x12) & M; x4 ^= x8; x4 = (x4 << 12 | x4 >> 20) & M
        x0 = (x0 + x4) & M; x12 ^= x0; x12 = (x12 << 8 | x12 >> 24) & M
        x8 = (x8 + x12) & M; x4 ^= x8; x4 = (x4 << 7 | x4 >> 25) & M
        x1 = (x1 + x5) & M; x13 ^= x1; x13 = (x13 << 16 | x13 >> 16) & M
        x9 = (x9 + x13) & M; x5 ^= x9; x5 = (x5 << 12 | x5 >> 20) & M
        x1 = (x1 + x5) & M; x13 ^= x1; x13 = (x13 << 8 | x13 >> 24) & M
        x9 = (x9 + x13) & M; x5 ^= x9; x5 = (x5 << 7 | x5 >> 25) & M
        x2 = (x2 + x6) & M; x14 ^= x2; x14 = (x14 << 16 | x14 >> 16) & M
        x10 = (x10 + x14) & M; x6 ^= x10; x6 = (x6 << 12 | x6 >> 20) & M
        x2 = (x2 + x6) & M; x14 ^= x2; x14 = (x14 << 8 | x14 >> 24) & M
        x10 = (x10 + x14) & M; x6 ^= x10; x6 = (x6 << 7 | x6 >> 25) & M
        x3 = (x3 + x7) & M; x15 ^= x3; x15 = (x15 << 16 | x15 >> 16) & M
        x11 = (x11 + x15) & M; x7 ^= x11; x7 = (x7 << 12 | x7 >> 20) & M
        x3 = (x3 + x7) & M; x15 ^= x3; x15 = (x15 << 8 | x15 >> 24) & M
        x11 = (x11 + x15) & M; x7 ^= x11; x7 = (x7 << 7 | x7 >> 25) & M
        x0 = (x0 + x5) & M; x15 ^= x0; x15 = (x15 << 16 | x15 >> 16) & M
        x10 = (x10 + x15) & M; x5 ^= x10; x5 = (x5 << 12 | x5 >> 20) & M
        x0 = (x0 + x5) & M; x15 ^= x0; x15 = (x15 << 8 | x15 >> 24) & M
        x10 = (x10 + x15) & M; x5 ^= x10; x5 = (x5 << 7 | x5 >> 25) & M
        x1 = (x1 + x6) & M; x12 ^= x1; x12 = (x12 << 16 | x12 >> 16) & M
        x11 = (x11 + x12) & M; x6 ^= x11; x6 = (x6 << 12 | x6 >> 20) & M
        x1 = (x1 + x6) & M; x12 ^= x1; x12 = (x12 << 8 | x12 >> 24) & M
        x11 = (x11 + x12) & M; x6 ^= x11; x6 = (x6 << 7 | x6 >> 25) & M
        x2 = (x2 + x7) & M; x13 ^= x2; x13 = (x13 << 16 | x13 >> 16) & M
        x8 = (x8 + x13) & M; x7 ^= x8; x7 = (x7 << 12 | x7 >> 20) & M
        x2 = (x2 + x7) & M; x13 ^= x2; x13 = (x13 << 8 | x13 >> 24) & M
        x8 = (x8 + x13) & M; x7 ^= x8; x7 = (x7 << 7 | x7 >> 25) & M
        x3 = (x3 + x4) & M; x14 ^= x3; x14 = (x14 << 16 | x14 >> 16) & M
        x9 = (x9 + x14) & M; x4 ^= x9; x4 = (x4 << 12 | x4 >> 20) & M
        x3 = (x3 + x4) & M; x14 ^= x3; x14 = (x14 << 8 | x14 >> 24) & M
        x9 = (x9 + x14) & M; x4 ^= x9; x4 = (x4 << 7 | x4 >> 25) & M

    final = (
        x0 + s0, x1 + s1, x2 + s2, x3 + s3, x4 + s4, x5 + s5, x6 + s6, x7 + s7,
        x8 + s8, x9 + s9, x10 + s10, x11 + s11,
        x12 + w12, x13 + w13, x14 + w14, x15 + w15,
    )
    # Transpose lanes back to the serial block layout with strided slice
    # assignments: word i's byte k of every block at out[4*i+k::64].
    out = bytearray(64 * n)
    width = 8 * n
    for i in range(16):
        raw = (final[i] & M).to_bytes(width, "little")
        base = 4 * i
        out[base::64] = raw[0::8]
        out[base + 1 :: 64] = raw[1::8]
        out[base + 2 :: 64] = raw[2::8]
        out[base + 3 :: 64] = raw[3::8]
    return bytes(memoryview(out)[: 64 * total])


def _vector_keystream(key: bytes, segments: list[tuple[bytes, int, int]]) -> bytes:
    """Keystream for several ``(nonce, counter, nblocks)`` segments.

    Splits the work into vector runs of at most :data:`_MAX_LANES` blocks
    (a segment longer than the cap continues in the next run at the
    advanced counter).  Callers validate nonce lengths and counter spans.
    """
    parts: list[bytes] = []
    run: list[tuple[bytes, int, int]] = []
    run_blocks = 0
    for nonce, counter, nblocks in segments:
        while nblocks:
            if run_blocks == _MAX_LANES:
                parts.append(_vector_run(key, run))
                run = []
                run_blocks = 0
            take = min(nblocks, _MAX_LANES - run_blocks)
            run.append((nonce, counter, take))
            counter += take
            nblocks -= take
            run_blocks += take
    if run:
        parts.append(_vector_run(key, run))
    return b"".join(parts)


def chacha20_xor(key: bytes, counter: int, nonce: bytes, data) -> bytes:
    """Encrypt/decrypt ``data`` with the ChaCha20 keystream."""
    n = len(data)
    if n == 0:
        return b""
    if len(key) != 32:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    nblocks = (n + 63) // 64
    _check_counter_span(counter, nblocks)
    if nblocks >= _VECTOR_THRESHOLD:
        keystream = _vector_keystream(key, [(nonce, counter, nblocks)])
    else:
        keystream = _keystream(key, counter, nonce, nblocks)
    if n % 64:
        keystream = keystream[:n]
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(n, "little")


_P1305 = (1 << 130) - 5


def poly1305_mac(key: bytes, message) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key.

    Long messages run Horner over 4-block chunks with precomputed
    ``r^2..r^4``: the chunk contributes
    ``(acc + c0)*r^4 + c1*r^3 + c2*r^2 + c3*r`` in one expression, so the
    lazy 2^130 = 5 fold (and the loop overhead) is paid once per 64 bytes
    instead of once per 16.  Identical result to the per-block loop.
    """
    if len(key) != 32:
        raise CryptoError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    length = len(message)
    full = length - length % 16
    from_bytes = int.from_bytes
    pad = 1 << 128
    mask130 = (1 << 130) - 1
    offset = 0
    if full >= _POLY_CHUNK_BYTES:
        r2 = r * r % _P1305
        r3 = r2 * r % _P1305
        r4 = r3 * r % _P1305
        stop = full - full % 64
        while offset < stop:
            accumulator = (
                (accumulator
                 + from_bytes(message[offset : offset + 16], "little") + pad) * r4
                + (from_bytes(message[offset + 16 : offset + 32], "little")
                   + pad) * r3
                + (from_bytes(message[offset + 32 : offset + 48], "little")
                   + pad) * r2
                + (from_bytes(message[offset + 48 : offset + 64], "little")
                   + pad) * r
            )
            # Two folds: the four-term sum reaches ~2^263, one fold lands
            # near 2^136, the second brings it back under 2^131.
            accumulator = (accumulator & mask130) + 5 * (accumulator >> 130)
            accumulator = (accumulator & mask130) + 5 * (accumulator >> 130)
            offset += 64
    # Lazy reduction: fold 2^130 = 5 (mod p) each block and defer the
    # exact modulus to the end; the accumulator stays below 2^132.
    while offset < full:
        accumulator = (
            accumulator + from_bytes(message[offset : offset + 16], "little")
            + pad
        ) * r
        accumulator = (accumulator & mask130) + 5 * (accumulator >> 130)
        offset += 16
    if full < length:
        chunk = message[full:]
        n = from_bytes(chunk, "little") + (1 << (8 * len(chunk)))
        accumulator = (accumulator + n) * r
    accumulator %= _P1305
    return ((accumulator + s) & ((1 << 128) - 1)).to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return data
    return data + b"\x00" * (16 - len(data) % 16)


def _poly_tag(otk: bytes, aad, ciphertext) -> bytes:
    """The AEAD tag: Poly1305 over padded AAD, padded ciphertext, lengths.

    Assembles the MAC input into one buffer with slice writes instead of
    concatenation, so ``aad``/``ciphertext`` may be memoryviews (the
    zero-copy receive path hands ciphertext views straight in).
    """
    la = len(aad)
    lc = len(ciphertext)
    pa = la + (-la % 16)
    mac = bytearray(pa + lc + (-lc % 16) + 16)
    mac[:la] = aad
    mac[pa : pa + lc] = ciphertext
    mac[-16:-8] = la.to_bytes(8, "little")
    mac[-8:] = lc.to_bytes(8, "little")
    return poly1305_mac(otk, mac)


class ChaCha20Poly1305:
    """ChaCha20-Poly1305 AEAD per RFC 8439 with 96-bit nonces."""

    tag_length = 16
    nonce_length = 12

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise CryptoError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = key

    def _keystreams(self, requests: list[tuple[bytes, int]]) -> list[tuple[bytes, bytes]]:
        """Per-record ``(poly_key, data_keystream)`` for ``(nonce, nbytes)``.

        Each record is one contiguous counter segment starting at 0:
        block 0 is the Poly1305 one-time key, blocks 1+ are the data
        keystream — so a whole flight's keystream (tags included) comes
        out of shared vector runs.
        """
        segments: list[tuple[bytes, int, int]] = []
        total = 0
        for nonce, nbytes in requests:
            if len(nonce) != 12:
                raise CryptoError("ChaCha20 nonce must be 12 bytes")
            nblocks = 1 + (nbytes + 63) // 64
            _check_counter_span(0, nblocks)
            segments.append((nonce, 0, nblocks))
            total += nblocks
        if total >= _VECTOR_THRESHOLD:
            stream = _vector_keystream(self._key, segments)
        else:
            stream = b"".join(
                _keystream(self._key, 0, nonce, nblocks)
                for nonce, _, nblocks in segments
            )
        view = memoryview(stream)
        out = []
        offset = 0
        for (nonce, _, nblocks), (_, nbytes) in zip(segments, requests):
            out.append((
                bytes(view[offset : offset + 32]),
                view[offset + 64 : offset + 64 + nbytes],
            ))
            offset += 64 * nblocks
        return out

    @staticmethod
    def _xor(data, keystream) -> bytes:
        n = len(data)
        if n == 0:
            return b""
        return (
            int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
        ).to_bytes(n, "little")

    def encrypt(self, nonce: bytes, plaintext, aad=b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        [(otk, keystream)] = self._keystreams([(nonce, len(plaintext))])
        ciphertext = self._xor(plaintext, keystream)
        return ciphertext + _poly_tag(otk, aad, ciphertext)

    def decrypt(self, nonce: bytes, data, aad=b"") -> bytes:
        """Verify the tag and decrypt; raises IntegrityError on failure."""
        if len(data) < self.tag_length:
            raise IntegrityError("ciphertext shorter than Poly1305 tag")
        ciphertext = data[: -self.tag_length]
        tag = data[-self.tag_length :]
        [(otk, keystream)] = self._keystreams([(nonce, len(ciphertext))])
        if not _hmac.compare_digest(bytes(tag), _poly_tag(otk, aad, ciphertext)):
            raise IntegrityError("Poly1305 tag mismatch")
        return self._xor(ciphertext, keystream)

    def seal_many(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Encrypt a batch of ``(nonce, plaintext, aad)`` records.

        One shared keystream computation covers the whole flight (data
        blocks and Poly1305 one-time keys); output is byte-identical to
        sequential :meth:`encrypt` calls.
        """
        streams = self._keystreams([(nonce, len(pt)) for nonce, pt, _ in items])
        out = []
        for (nonce, plaintext, aad), (otk, keystream) in zip(items, streams):
            ciphertext = self._xor(plaintext, keystream)
            out.append(ciphertext + _poly_tag(otk, aad, ciphertext))
        return out

    def open_many(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Decrypt a batch of ``(nonce, ciphertext||tag, aad)`` records.

        Tags verify in submission order (the first failure raises, as a
        sequential loop would); keystreams are shared across the batch.
        """
        tag_length = self.tag_length
        for nonce, data, aad in items:
            if len(data) < tag_length:
                raise IntegrityError("ciphertext shorter than Poly1305 tag")
        streams = self._keystreams(
            [(nonce, len(data) - tag_length) for nonce, data, _ in items]
        )
        out = []
        for (nonce, data, aad), (otk, keystream) in zip(items, streams):
            ciphertext = data[:-tag_length]
            tag = data[-tag_length:]
            if not _hmac.compare_digest(bytes(tag), _poly_tag(otk, aad, ciphertext)):
                raise IntegrityError("Poly1305 tag mismatch")
            out.append(self._xor(ciphertext, keystream))
        return out
