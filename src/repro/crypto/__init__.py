"""Cryptographic substrate: every primitive the TLS/mbTLS stack needs.

All primitives are implemented from scratch in pure Python (see DESIGN.md);
the test suite cross-checks each against the ``cryptography`` package, which
is used only as a test oracle.
"""

from repro.crypto.aes import AES
from repro.crypto.chacha import ChaCha20Poly1305, chacha20_block, chacha20_xor, poly1305_mac
from repro.crypto.dh import DHGroup, DHPrivateKey, modp_group
from repro.crypto.drbg import HmacDrbg, system_rng
from repro.crypto.gcm import AESGCM
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract, p_hash, prf
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey, generate_rsa_key
from repro.crypto.x25519 import X25519PrivateKey, x25519, x25519_base

__all__ = [
    "AES",
    "AESGCM",
    "ChaCha20Poly1305",
    "chacha20_block",
    "chacha20_xor",
    "poly1305_mac",
    "DHGroup",
    "DHPrivateKey",
    "modp_group",
    "HmacDrbg",
    "system_rng",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "p_hash",
    "prf",
    "RSAPrivateKey",
    "RSAPublicKey",
    "generate_rsa_key",
    "X25519PrivateKey",
    "x25519",
    "x25519_base",
]
