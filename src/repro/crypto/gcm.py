"""AES-GCM authenticated encryption (NIST SP 800-38D), pure Python.

GHASH uses Shoup's byte-table method: a 256-entry table of ``b * H`` keyed
per-instance, plus a key-independent 256-entry reduction table, giving 16
table lookups per 128-bit block instead of a 128-iteration bit loop.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.errors import CryptoError, IntegrityError

__all__ = ["AESGCM"]

_R = 0xE1 << 120  # GCM reduction polynomial in bit-reflected representation


def _mul_x(v: int) -> int:
    """Multiply by x in GF(2^128), bit-reflected GCM representation."""
    if v & 1:
        return (v >> 1) ^ _R
    return v >> 1


def _build_reduction_table() -> list[int]:
    """Table R8[b]: the reduction folded in when 8 low bits b are shifted out."""
    table = []
    for b in range(256):
        v = b
        for _ in range(8):
            v = _mul_x(v)
        table.append(v)
    return table


_R8 = _build_reduction_table()


class _GHash:
    """GHASH universal hash keyed by H = E_K(0^128)."""

    # Only digests covering at least this many ciphertext bytes are
    # candidates for the aggregated 4-block path (handshake records never
    # are), and the tables are not built until a key has hashed
    # ``_BULK_BUILD_BYTES`` of candidate ciphertext: construction costs
    # the same as scalar-hashing tens of KiB, so short-lived sessions
    # that move one or two records must never pay it.
    _BULK_THRESHOLD = 512
    _BULK_BUILD_BYTES = 64 * 1024

    def __init__(self, h: int) -> None:
        self._h = h
        self._bulk_tables = None
        self._bulk_eligible = 0
        # Basis entries: byte value (0x80 >> i) at the top byte is x^i * H.
        table = [0] * 256
        value = h
        bit = 0x80
        while bit:
            table[bit] = value
            value = _mul_x(value)
            bit >>= 1
        for b in range(256):
            if b and not (b & (b - 1)):
                continue  # powers of two already filled (0 stays 0)
            high = 1 << (b.bit_length() - 1) if b else 0
            if b:
                table[b] = table[high] ^ table[b ^ high]
        self._table = table

    def _mul_h(self, z: int) -> int:
        """Multiply an accumulated value by H using the byte tables."""
        table = self._table
        r8 = _R8
        w = 0
        # Bytes of z from most significant (low polynomial degree) are
        # processed last: Horner over x^8.
        for shift in range(0, 128, 8):
            w = (w >> 8) ^ r8[w & 0xFF]
            w ^= table[(z >> shift) & 0xFF]
        return w

    def _byte_tables(self) -> list[list[list[int]]]:
        """Per-byte-position tables for H^1..H^4, built lazily.

        ``tables[k-1][j][b]`` is the fully reduced GF(2^128) product of
        H^k with byte value ``b`` placed at big-endian byte position
        ``j`` of a block, so one aggregated Horner step over four blocks
        is 64 lookups XORed together with no per-block reduction.
        """
        tables = self._bulk_tables
        if tables is None:
            r8 = _R8
            tables = []
            h_power = self._h
            for _ in range(4):
                top = _GHash(h_power)._table if h_power != self._h \
                    else self._table
                cols = [top]
                for _ in range(15):
                    prev = cols[-1]
                    cols.append([(v >> 8) ^ r8[v & 0xFF] for v in prev])
                # cols[0] is byte position 0 == most significant byte?
                # _mul_h places table[b] at shift 120 (byte 0 of the
                # big-endian block) with no folds, so cols[i] serves the
                # byte i positions *below* it; index by big-endian
                # position directly.
                tables.append(cols)
                h_power = self._mul_h(h_power)
            self._bulk_tables = tables
        return tables

    def _bulk_ready(self, size: int) -> bool:
        """Has this key hashed enough bulk-sized data to amortize tables?"""
        if self._bulk_tables is not None:
            return True
        self._bulk_eligible += size
        return self._bulk_eligible >= self._BULK_BUILD_BYTES

    def _bulk(self, y: int, data: bytes, offset: int, end: int) -> int:
        """Fold whole 4-block groups of ``data[offset:end]`` into ``y``."""
        t1, t2, t3, t4 = self._byte_tables()
        while offset + 64 <= end:
            y ^= int.from_bytes(data[offset : offset + 16], "big")
            acc = 0
            for j in range(16):
                acc ^= (
                    t4[j][(y >> (120 - 8 * j)) & 0xFF]
                    ^ t3[j][data[offset + 16 + j]]
                    ^ t2[j][data[offset + 32 + j]]
                    ^ t1[j][data[offset + 48 + j]]
                )
            y = acc
            offset += 64
        return y

    def digest(self, aad: bytes, ciphertext: bytes) -> int:
        """GHASH(aad || pad || ciphertext || pad || len(aad) || len(ct))."""
        y = 0
        for chunk in (aad, ciphertext):
            offset = 0
            if (chunk is ciphertext and len(chunk) >= self._BULK_THRESHOLD
                    and self._bulk_ready(len(chunk))):
                groups = len(chunk) // 64 * 64
                y = self._bulk(y, chunk, 0, groups)
                offset = groups
            for offset in range(offset, len(chunk), 16):
                block = chunk[offset : offset + 16]
                if len(block) < 16:
                    # bytes() first: ``chunk`` may be a memoryview from
                    # the zero-copy receive path, and memoryview + bytes
                    # doesn't concatenate.
                    block = bytes(block) + b"\x00" * (16 - len(block))
                y = self._mul_h(y ^ int.from_bytes(block, "big"))
        lengths = (len(aad) * 8) << 64 | (len(ciphertext) * 8)
        return self._mul_h(y ^ lengths)


class AESGCM:
    """AES-GCM AEAD with 96-bit nonces and 128-bit tags.

    Args:
        key: AES key (16 or 32 bytes for the TLS suites in this library).
    """

    tag_length = 16
    nonce_length = 12

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._ghash = _GHash(h)

    def _keystream_xor(self, nonce: bytes, data: bytes, initial_counter: int) -> bytes:
        n = len(data)
        if n == 0:
            return b""
        keystream = self._aes.ctr_keystream(
            nonce, initial_counter, (n + 15) // 16
        )
        if n % 16:
            keystream = keystream[:n]
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
        ).to_bytes(n, "big")

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        s = self._ghash.digest(aad, ciphertext)
        j0 = self._aes.encrypt_block(nonce + (1).to_bytes(4, "big"))
        return (s ^ int.from_bytes(j0, "big")).to_bytes(16, "big")

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        if len(nonce) != self.nonce_length:
            raise CryptoError("GCM nonce must be 12 bytes")
        ciphertext = self._keystream_xor(nonce, plaintext, 2)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises IntegrityError on failure."""
        if len(nonce) != self.nonce_length:
            raise CryptoError("GCM nonce must be 12 bytes")
        if len(data) < self.tag_length:
            raise IntegrityError("ciphertext shorter than GCM tag")
        ciphertext, tag = data[: -self.tag_length], data[-self.tag_length :]
        import hmac as _hmac

        if not _hmac.compare_digest(tag, self._tag(nonce, aad, ciphertext)):
            raise IntegrityError("GCM tag mismatch")
        return self._keystream_xor(nonce, ciphertext, 2)

    def seal_many(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Encrypt a batch of ``(nonce, plaintext, aad)`` records.

        Output is byte-identical to sequential :meth:`encrypt` calls;
        batching exists so a whole flight of records costs one
        Python-level call from the record plane.
        """
        encrypt = self.encrypt
        return [encrypt(nonce, pt, aad) for nonce, pt, aad in items]

    def open_many(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Decrypt a batch of ``(nonce, ciphertext||tag, aad)`` records."""
        decrypt = self.decrypt
        return [decrypt(nonce, data, aad) for nonce, data, aad in items]
