"""AES-GCM authenticated encryption (NIST SP 800-38D), pure Python.

GHASH uses Shoup's byte-table method: a 256-entry table of ``b * H`` keyed
per-instance, plus a key-independent 256-entry reduction table, giving 16
table lookups per 128-bit block instead of a 128-iteration bit loop.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.errors import CryptoError, IntegrityError

__all__ = ["AESGCM"]

_R = 0xE1 << 120  # GCM reduction polynomial in bit-reflected representation


def _mul_x(v: int) -> int:
    """Multiply by x in GF(2^128), bit-reflected GCM representation."""
    if v & 1:
        return (v >> 1) ^ _R
    return v >> 1


def _build_reduction_table() -> list[int]:
    """Table R8[b]: the reduction folded in when 8 low bits b are shifted out."""
    table = []
    for b in range(256):
        v = b
        for _ in range(8):
            v = _mul_x(v)
        table.append(v)
    return table


_R8 = _build_reduction_table()


class _GHash:
    """GHASH universal hash keyed by H = E_K(0^128)."""

    def __init__(self, h: int) -> None:
        # Basis entries: byte value (0x80 >> i) at the top byte is x^i * H.
        table = [0] * 256
        value = h
        bit = 0x80
        while bit:
            table[bit] = value
            value = _mul_x(value)
            bit >>= 1
        for b in range(256):
            if b and not (b & (b - 1)):
                continue  # powers of two already filled (0 stays 0)
            high = 1 << (b.bit_length() - 1) if b else 0
            if b:
                table[b] = table[high] ^ table[b ^ high]
        self._table = table

    def _mul_h(self, z: int) -> int:
        """Multiply an accumulated value by H using the byte tables."""
        table = self._table
        r8 = _R8
        w = 0
        # Bytes of z from most significant (low polynomial degree) are
        # processed last: Horner over x^8.
        for shift in range(0, 128, 8):
            w = (w >> 8) ^ r8[w & 0xFF]
            w ^= table[(z >> shift) & 0xFF]
        return w

    def digest(self, aad: bytes, ciphertext: bytes) -> int:
        """GHASH(aad || pad || ciphertext || pad || len(aad) || len(ct))."""
        y = 0
        for chunk in (aad, ciphertext):
            for offset in range(0, len(chunk), 16):
                block = chunk[offset : offset + 16]
                if len(block) < 16:
                    block = block + b"\x00" * (16 - len(block))
                y = self._mul_h(y ^ int.from_bytes(block, "big"))
        lengths = (len(aad) * 8) << 64 | (len(ciphertext) * 8)
        return self._mul_h(y ^ lengths)


class AESGCM:
    """AES-GCM AEAD with 96-bit nonces and 128-bit tags.

    Args:
        key: AES key (16 or 32 bytes for the TLS suites in this library).
    """

    tag_length = 16
    nonce_length = 12

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._ghash = _GHash(h)

    def _keystream_xor(self, nonce: bytes, data: bytes, initial_counter: int) -> bytes:
        encrypt = self._aes.encrypt_block
        out = bytearray(len(data))
        counter = initial_counter
        for offset in range(0, len(data), 16):
            block = encrypt(nonce + counter.to_bytes(4, "big"))
            chunk = data[offset : offset + 16]
            out[offset : offset + len(chunk)] = bytes(
                a ^ b for a, b in zip(chunk, block)
            )
            counter = (counter + 1) & 0xFFFFFFFF
        return bytes(out)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        s = self._ghash.digest(aad, ciphertext)
        j0 = self._aes.encrypt_block(nonce + (1).to_bytes(4, "big"))
        return (s ^ int.from_bytes(j0, "big")).to_bytes(16, "big")

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        if len(nonce) != self.nonce_length:
            raise CryptoError("GCM nonce must be 12 bytes")
        ciphertext = self._keystream_xor(nonce, plaintext, 2)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises IntegrityError on failure."""
        if len(nonce) != self.nonce_length:
            raise CryptoError("GCM nonce must be 12 bytes")
        if len(data) < self.tag_length:
            raise IntegrityError("ciphertext shorter than GCM tag")
        ciphertext, tag = data[: -self.tag_length], data[-self.tag_length :]
        import hmac as _hmac

        if not _hmac.compare_digest(tag, self._tag(nonce, aad, ciphertext)):
            raise IntegrityError("GCM tag mismatch")
        return self._keystream_xor(nonce, ciphertext, 2)
