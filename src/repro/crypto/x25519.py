"""X25519 Diffie-Hellman (RFC 7748), pure Python Montgomery ladder."""

from __future__ import annotations

from repro.errors import CryptoError

__all__ = ["x25519", "x25519_base", "X25519PrivateKey"]

_P = 2**255 - 19
_A24 = 121665


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise CryptoError("X25519 public value must be 32 bytes")
    value = int.from_bytes(u, "little")
    return value & ((1 << 255) - 1)  # mask the high bit per RFC 7748


def _decode_scalar(k: bytes) -> int:
    if len(k) != 32:
        raise CryptoError("X25519 private key must be 32 bytes")
    raw = bytearray(k)
    raw[0] &= 248
    raw[31] &= 127
    raw[31] |= 64
    return int.from_bytes(raw, "little")


def x25519(private_key: bytes, public_value: bytes) -> bytes:
    """Scalar multiplication on Curve25519; returns the shared u-coordinate."""
    k = _decode_scalar(private_key)
    u = _decode_u(public_value)

    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    p = _P
    for t in range(254, -1, -1):
        bit = (k >> t) & 1
        swap ^= bit
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = bit

        a = (x2 + z2) % p
        aa = a * a % p
        b = (x2 - z2) % p
        bb = b * b % p
        e = (aa - bb) % p
        c = (x3 + z3) % p
        d = (x3 - z3) % p
        da = d * a % p
        cb = c * b % p
        x3 = (da + cb) % p
        x3 = x3 * x3 % p
        z3 = (da - cb) % p
        z3 = x1 * (z3 * z3 % p) % p
        x2 = aa * bb % p
        z2 = e * (aa + _A24 * e) % p

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2

    result = x2 * pow(z2, p - 2, p) % p
    return result.to_bytes(32, "little")


def x25519_base(private_key: bytes) -> bytes:
    """Compute the public value for a private key (scalar * base point 9)."""
    return x25519(private_key, (9).to_bytes(32, "little"))


class X25519PrivateKey:
    """Convenience wrapper pairing a private scalar with its public value."""

    def __init__(self, private_bytes: bytes) -> None:
        self._private = private_bytes
        self.public_bytes = x25519_base(private_bytes)

    def exchange(self, peer_public: bytes) -> bytes:
        """Derive the shared secret with a peer's public value."""
        shared = x25519(self._private, peer_public)
        if shared == b"\x00" * 32:
            raise CryptoError("X25519 produced an all-zero shared secret")
        return shared
