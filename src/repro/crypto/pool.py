"""Multiprocessing seal/open pool for batched AEAD work.

Per-hop record protection on an mbTLS chain is embarrassingly parallel:
each record's seal/open is a pure function of ``(key, nonce, aad, data)``
with no shared state, so a batch can be split across worker processes and
the results merged back **in submission order** — the wire bytes are
bit-identical to a serial run by construction.

The pool is opt-in (``configure(workers=N)``; the CLI threads
``--workers`` through) and conservative:

* batches below :data:`_MIN_RECORDS` records or :data:`_MIN_BYTES` total
  payload run serially — IPC overhead would beat the parallelism;
* any pool-infrastructure failure (a dead worker, a pickling error)
  falls back to the in-process serial path for that batch;
* an :class:`~repro.errors.IntegrityError` from a worker is *not* a pool
  failure — it propagates, preserving the all-or-nothing contract of
  ``unprotect_many``.

Workers rebuild AEAD contexts from ``(suite_code, key)`` on first use and
cache them per process, so a long flight pays the key schedule once per
worker. Per-chunk task counts land on the ``crypto.pool.tasks`` counter
labelled by *chunk slot* (worker PIDs are scheduling-dependent; chunk
slots are deterministic), which ``python -m repro metrics`` cross-checks
against wiretap ground truth.
"""

from __future__ import annotations

import multiprocessing as _mp
import threading

from repro import obs
from repro.errors import CryptoError

__all__ = ["AeadPool", "configure", "active", "reset"]

#: Batches smaller than this many records always run serially.
_MIN_RECORDS = 8
#: Batches carrying less than this much payload always run serially.
_MIN_BYTES = 64 * 1024

#: How long a graceful worker join may take before escalating to
#: ``terminate`` (and how long the post-terminate join gets).
_JOIN_TIMEOUT = 5.0

#: Per-worker-process AEAD cache, keyed ``(suite_code, key)``.
_WORKER_AEADS: dict[tuple[int, bytes], object] = {}


def _worker_aead(suite_code: int, key: bytes):
    cache_key = (suite_code, key)
    aead = _WORKER_AEADS.get(cache_key)
    if aead is None:
        from repro.tls.ciphersuites import suite_by_code

        if len(_WORKER_AEADS) > 1024:
            _WORKER_AEADS.clear()
        aead = suite_by_code(suite_code).new_aead(key)
        _WORKER_AEADS[cache_key] = aead
    return aead


def _worker_seal(task):
    suite_code, key, items = task
    return _worker_aead(suite_code, key).seal_many(items)


def _worker_open(task):
    suite_code, key, items = task
    return _worker_aead(suite_code, key).open_many(items)


class AeadPool:
    """An order-preserving multiprocessing pool for seal_many/open_many."""

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise CryptoError("AeadPool needs at least 2 workers")
        self.workers = workers
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            # Fork keeps startup cheap and inherits the imported modules;
            # workers never touch inherited mutable state (every task
            # carries its full inputs).
            self._pool = _mp.get_context("fork").Pool(self.workers)
        return self._pool

    def close(self) -> None:
        """Tear the workers down: graceful close+join, bounded fallback.

        ``terminate()`` kills workers mid-task, which can leave the
        shared task queue in a state the follow-up ``join()`` waits on
        forever. So: ask the workers to drain and exit, give the join a
        bounded window, and only then escalate to ``terminate``. Never
        raises — this must be safe from ``atexit``/interpreter teardown,
        where helper machinery may already be gone.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.close()
            if not self._join(pool, _JOIN_TIMEOUT):
                pool.terminate()
                self._join(pool, _JOIN_TIMEOUT)
        except Exception:
            try:
                pool.terminate()
            except Exception:
                pass

    @staticmethod
    def _join(pool, timeout: float) -> bool:
        """``pool.join()`` with a deadline; True if the join completed."""
        joiner = threading.Thread(target=pool.join, daemon=True)
        joiner.start()
        joiner.join(timeout)
        return not joiner.is_alive()

    @staticmethod
    def _normalize(items):
        # Tasks cross a pickle boundary; memoryview inputs (the zero-copy
        # receive path) must be materialized here.
        return [
            (bytes(nonce), bytes(data), bytes(aad)) for nonce, data, aad in items
        ]

    def _chunks(self, items):
        n = len(items)
        per = -(-n // self.workers)
        return [items[i : i + per] for i in range(0, n, per)]

    def _run(self, worker, op: str, suite, key: bytes, items):
        chunks = self._chunks(self._normalize(items))
        tasks = [(suite.code, key, chunk) for chunk in chunks]
        results = self._ensure_pool().map(worker, tasks)
        for slot, chunk in enumerate(chunks):
            obs.counter("crypto.pool.tasks", chunk=str(slot), op=op).inc()
            obs.counter("crypto.pool.records", op=op).inc(len(chunk))
        merged: list[bytes] = []
        for part in results:
            merged.extend(part)
        return merged

    def seal_many(self, suite, key: bytes, items) -> list[bytes]:
        """Seal ``(nonce, plaintext, aad)`` items across the workers."""
        return self._run(_worker_seal, "seal", suite, key, items)

    def open_many(self, suite, key: bytes, items) -> list[bytes]:
        """Open ``(nonce, ciphertext, aad)`` items across the workers.

        Chunk boundaries don't weaken the all-or-nothing contract: a tag
        failure in any chunk raises before any plaintext is returned.
        """
        return self._run(_worker_open, "open", suite, key, items)

    def eligible(self, items) -> bool:
        """Whether a batch is big enough to beat the IPC overhead."""
        if len(items) < _MIN_RECORDS:
            return False
        total = 0
        for _, data, _ in items:
            total += len(data)
        return total >= _MIN_BYTES


_ACTIVE: AeadPool | None = None


def configure(workers: int | None) -> AeadPool | None:
    """Install (or with ``None``/``0``/``1``, remove) the process pool."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None
    if workers and workers >= 2:
        _ACTIVE = AeadPool(workers)
    return _ACTIVE


def active() -> AeadPool | None:
    """The installed pool, or ``None`` when running serial."""
    return _ACTIVE


def reset() -> None:
    """Tear down the installed pool (test/bench hygiene; atexit-safe)."""
    try:
        configure(None)
    except Exception:
        pass
