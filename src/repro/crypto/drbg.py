"""HMAC-DRBG (NIST SP 800-90A) — the library's single source of randomness.

Every protocol party draws nonces, keys, and ephemeral secrets from an
injected DRBG instance. Seeding the DRBG makes entire handshakes — and whole
simulated networks — bit-for-bit reproducible, which the test suite and the
benchmark harness rely on. Production deployments would seed from
``secrets.token_bytes``; :func:`system_rng` does exactly that.
"""

from __future__ import annotations

import hmac
import secrets

__all__ = ["HmacDrbg", "system_rng"]


class HmacDrbg:
    """Deterministic random bit generator backed by HMAC-SHA256.

    Args:
        seed: entropy input. Two instances with equal seeds produce equal
            output streams.
        personalization: optional domain-separation string, so independent
            parties created from one master seed get independent streams.
    """

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed + personalization)

    def _update(self, provided: bytes = b"") -> None:
        self._key = hmac.new(self._key, self._value + b"\x00" + provided, "sha256").digest()
        self._value = hmac.new(self._key, self._value, "sha256").digest()
        if provided:
            self._key = hmac.new(
                self._key, self._value + b"\x01" + provided, "sha256"
            ).digest()
            self._value = hmac.new(self._key, self._value, "sha256").digest()

    def random_bytes(self, length: int) -> bytes:
        """Generate ``length`` pseudorandom bytes."""
        output = bytearray()
        while len(output) < length:
            self._value = hmac.new(self._key, self._value, "sha256").digest()
            output += self._value
        self._update()
        return bytes(output[:length])

    def randbits(self, bits: int) -> int:
        """Generate a non-negative integer of at most ``bits`` bits."""
        byte_count = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(byte_count), "big")
        return value >> (byte_count * 8 - bits)

    def randint_range(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] (rejection-sampled)."""
        if low > high:
            raise ValueError("empty range")
        span = high - low + 1
        bits = span.bit_length()
        while True:
            candidate = self.randbits(bits)
            if candidate < span:
                return low + candidate

    def choice(self, sequence):
        """Pick one element of a non-empty sequence."""
        return sequence[self.randint_range(0, len(sequence) - 1)]

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return self.randbits(53) / (1 << 53)

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child DRBG, keyed by ``label``."""
        return HmacDrbg(self.random_bytes(32), personalization=label)


def system_rng() -> HmacDrbg:
    """An HmacDrbg seeded from the operating system's entropy source."""
    return HmacDrbg(secrets.token_bytes(48), personalization=b"repro-system")
