"""Bitsliced AES-CTR keystream generation over Python big ints.

The scalar T-table path in :mod:`repro.crypto.aes` costs ~160 table
lookups per 16-byte block; at record sizes that makes AES-GCM the
bottleneck of the whole data plane.  This module instead evaluates AES
as a boolean circuit over 8 *bit planes*, where each plane is one
arbitrarily large Python int — a single ``&``/``^``/``>>`` then acts on
every block of a record at once (big-int SIMD).

Layout
------
Plane ``p`` (p = bit significance, LSB first) is an int made of 16
fields of ``N`` bits, where ``N`` is the number of counter blocks in
the batch.  Field ``b`` (= AES state byte index, ``b = 4*col + row``)
occupies bits ``[b*N, (b+1)*N)``; bit ``j`` of a field belongs to
block ``j``.  With that layout:

* AddRoundKey is 8 XORs with per-key precomputed field masks,
* ShiftRows / MixColumns are a handful of masked field rotations,
* SubBytes is position-independent, so one circuit serves all bytes.

SubBytes uses the composite-field decomposition GF(2^8) = GF((2^4)^2):
inversion costs one GF(16) inversion (x^14, squarings are linear) plus
three GF(16) multiplications, far fewer gates than an x^254 chain in
GF(2^8).  The basis-change matrices are *derived* at import time from
first principles (find a root of z^4+z+1, then of y^2+y+lambda, in the
AES field) and the resulting S-box is verified against the classic
table for all 256 inputs, so there are no magic constants to trust.

Only the encrypt direction exists — CTR mode never decrypts blocks.
"""

from __future__ import annotations

_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


def _gmul(a: int, b: int) -> int:
    r = 0
    while b:
        if b & 1:
            r ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= _POLY
    return r


def _mul16(a: int, b: int) -> int:
    """GF(16) = GF(2)[z]/(z^4 + z + 1), nibble coefficients."""
    r = 0
    while b:
        if b & 1:
            r ^= a
        b >>= 1
        a <<= 1
        if a & 0x10:
            a ^= 0x13
    return r


def _derive_tower():
    """Compute the GF(2^8) <-> GF((2^4)^2) isomorphism from scratch."""
    # w: image of z (a root of z^4 + z + 1 inside the AES field).
    w = next(x for x in range(2, 256)
             if _gmul(_gmul(x, x), _gmul(x, x)) ^ x ^ 1 == 0)
    pow_w = [1]
    for _ in range(3):
        pow_w.append(_gmul(pow_w[-1], w))

    def embed(x4: int) -> int:
        r = 0
        for i in range(4):
            if (x4 >> i) & 1:
                r ^= pow_w[i]
        return r

    # lambda: makes y^2 + y + lambda irreducible over GF(16).
    lam = next(l for l in range(1, 16)
               if all(_mul16(t, t) ^ t ^ l for t in range(16)))
    # Y: a root of y^2 + y + embed(lambda) in the AES field.
    y = next(v for v in range(256) if _gmul(v, v) ^ v ^ embed(lam) == 0)

    # Tower coords (a, b) represent a*Y + b; tower bit i<4 -> b_i,
    # bit i>=4 -> a_{i-4}.  Columns of M map tower bits to AES bits.
    m_cols = [embed(1 << i) for i in range(4)] \
        + [_gmul(embed(1 << i), y) for i in range(4)]

    # Invert M over GF(2) (Gauss-Jordan on bit rows).
    rows = [sum(((m_cols[c] >> r) & 1) << c for c in range(8)) | (1 << (r + 8))
            for r in range(8)]
    for col in range(8):
        piv = next(i for i in range(col, 8) if (rows[i] >> col) & 1)
        rows[col], rows[piv] = rows[piv], rows[col]
        for i in range(8):
            if i != col and (rows[i] >> col) & 1:
                rows[i] ^= rows[col]
    minv_cols = [sum(((rows[r] >> (c + 8)) & 1) << r for r in range(8))
                 for c in range(8)]
    return lam, m_cols, minv_cols


_LAM, _M_COLS, _MINV_COLS = _derive_tower()


def _mat_apply(cols: list[int], x: int) -> int:
    r = 0
    for i in range(8):
        if (x >> i) & 1:
            r ^= cols[i]
    return r


# S(x) = Affine(inv(x)) ^ 0x63; fold Affine into the tower->AES matrix.
def _affine(v: int) -> int:
    r = 0
    for i in range(8):
        bit = ((v >> i) ^ (v >> ((i + 4) % 8)) ^ (v >> ((i + 5) % 8))
               ^ (v >> ((i + 6) % 8)) ^ (v >> ((i + 7) % 8))) & 1
        r |= bit << i
    return r


_OUT_COLS = [_affine(c) for c in _M_COLS]

# Linear maps used by the bitsliced circuit, as source-bit lists.
_IN_SRC = [[i for i in range(8) if (_MINV_COLS[i] >> p) & 1] for p in range(8)]
_OUT_SRC = [[i for i in range(8) if (_OUT_COLS[i] >> p) & 1] for p in range(8)]
# GF(16) squaring (linear): z^4+z+1 -> c0=x0^x2, c1=x2, c2=x1^x3, c3=x3.
_SQ16_SRC = [[0, 2], [2], [1, 3], [3]]
# x -> lambda * x^2 (linear), derived from the constants above.
_SQLAM_SRC = [[i for i in range(4)
               if (_mul16(_LAM, _mul16(1 << i, 1 << i)) >> p) & 1]
              for p in range(4)]


def _compile_sbox():
    """Emit a fully unrolled SubBytes over 8 plane ints as one function."""
    lines = ["def _sbox(a0, a1, a2, a3, a4, a5, a6, a7, ones):"]
    n = [0]

    def fresh() -> str:
        n[0] += 1
        return f"v{n[0]}"

    def emit(stmt: str) -> None:
        lines.append("    " + stmt)

    def linmap(src, xs):
        out = []
        for terms in src:
            v = fresh()
            emit(f"{v} = " + (" ^ ".join(xs[i] for i in terms) or "0"))
            out.append(v)
        return out

    def mul16(a, b):
        d = [None] * 7
        for i in range(4):
            for j in range(4):
                k = i + j
                if d[k] is None:
                    d[k] = fresh()
                    emit(f"{d[k]} = {a[i]} & {b[j]}")
                else:
                    emit(f"{d[k]} ^= {a[i]} & {b[j]}")
        # reduce z^4=z+1, z^5=z^2+z, z^6=z^3+z^2
        c = []
        for p, extras in enumerate(([4], [4, 5], [5, 6], [6])):
            v = fresh()
            emit(f"{v} = " + " ^ ".join([d[p]] + [d[k] for k in extras]))
            c.append(v)
        return c

    def xor4(a, b):
        out = []
        for i in range(4):
            v = fresh()
            emit(f"{v} = {a[i]} ^ {b[i]}")
            out.append(v)
        return out

    t = linmap(_IN_SRC, [f"a{i}" for i in range(8)])
    lo, hi = t[:4], t[4:]                     # element = hi*Y + lo
    ab = mul16(hi, lo)
    sq_lo = linmap(_SQ16_SRC, lo)
    sqlam_hi = linmap(_SQLAM_SRC, hi)
    delta_in = xor4(xor4(sqlam_hi, ab), sq_lo)  # a^2*lam ^ a*b ^ b^2
    # GF(16) inverse: x^14 = x^2 * x^4 * x^8
    x2 = linmap(_SQ16_SRC, delta_in)
    x4 = linmap(_SQ16_SRC, x2)
    x8 = linmap(_SQ16_SRC, x4)
    delta = mul16(mul16(x2, x4), x8)
    out_hi = mul16(hi, delta)                  # a * delta
    out_lo = mul16(xor4(hi, lo), delta)        # (a ^ b) * delta
    inv = out_lo + out_hi
    outs = []
    for p in range(8):
        v = fresh()
        expr = " ^ ".join(inv[i] for i in _OUT_SRC[p])
        if (0x63 >> p) & 1:
            expr += " ^ ones"
        emit(f"{v} = {expr}")
        outs.append(v)
    emit("return " + ", ".join(outs))
    ns: dict = {}
    exec(compile("\n".join(lines), "<bitsliced-sbox>", "exec"), ns)
    return ns["_sbox"]


_SBOX_PLANES = _compile_sbox()


def _verify_sbox() -> None:
    """Check the derived circuit against the classic S-box, all 256 inputs."""
    from repro.crypto.aes import _SBOX as sbox
    for x in range(256):
        t = _mat_apply(_MINV_COLS, x)
        lo, hi = t & 0xF, t >> 4
        delta = _mul16(_mul16(hi, hi), _LAM) ^ _mul16(hi, lo) ^ _mul16(lo, lo)
        # delta^-1 = delta^14 (0 maps to 0, matching x^254 semantics)
        d2 = _mul16(delta, delta)
        d4 = _mul16(d2, d2)
        inv = _mul16(_mul16(d2, d4), _mul16(d4, d4))
        tower_inv = (_mul16(hi, inv) << 4) | _mul16(hi ^ lo, inv)
        if (_mat_apply(_OUT_COLS, tower_inv) ^ 0x63) != sbox[x]:
            raise AssertionError(f"tower S-box mismatch at {x:#x}")


# --- transpose helpers -----------------------------------------------------

_T8 = ((7, 0x00AA00AA00AA00AA), (14, 0x0000CCCC0000CCCC),
       (28, 0x00000000F0F0F0F0))


def _rep64(m64: int, ngroups: int) -> int:
    v = m64
    width = 64
    total = 64 * ngroups
    while width < total:
        v |= v << width
        width *= 2
    return v & ((1 << total) - 1)


class _Layout:
    """Per-batch-size (N) constants, shared by every key."""

    _cache: dict[int, "_Layout"] = {}

    def __new__(cls, n: int) -> "_Layout":
        layout = cls._cache.get(n)
        if layout is None:
            layout = super().__new__(cls)
            layout._init(n)
            if len(cls._cache) > 16:
                cls._cache.clear()
            cls._cache[n] = layout
        return layout

    def _init(self, n: int) -> None:
        if n % 8:
            raise ValueError("batch size must be a multiple of 8")
        self.n = n
        ones = (1 << n) - 1
        self.field = [ones << (b * n) for b in range(16)]
        self.allones = (1 << (16 * n)) - 1
        # ShiftRows: row r, source col c -> dest (c - r) % 4.
        self.sr = []
        for r in range(1, 4):
            hi = 0
            for c in range(r, 4):
                hi |= self.field[4 * c + r]
            lo = 0
            for c in range(r):
                lo |= self.field[4 * c + r]
            self.sr.append((hi, lo, 4 * r * n, (16 - 4 * r) * n))
        self.row0 = (self.field[0] | self.field[4]
                     | self.field[8] | self.field[12])
        self.not_row0 = self.allones ^ self.row0
        # 8x8 bit-matrix transpose masks for the interleaved plane buffer
        # (8 * 2n bytes = 16n 64-bit groups / 8) and for byte streams.
        self.t8_out = [(d, _rep64(m, 2 * n)) for d, m in _T8]
        self.t8_n = [(d, _rep64(m, n // 8)) for d, m in _T8]
        self.ctr_planes: dict[int, list[int]] = {}


def _transpose8(x: int, masks) -> int:
    for d, m in masks:
        t = ((x >> d) ^ x) & m
        x = x ^ t ^ (t << d)
    return x


def _byte_planes(seq: bytes, layout: _Layout) -> list[int]:
    """Split a byte-per-block sequence into 8 packed bit planes."""
    n = layout.n
    x = _transpose8(int.from_bytes(seq, "little"), layout.t8_n)
    raw = x.to_bytes(n, "little")
    return [int.from_bytes(raw[p::8], "little") for p in range(8)]


def _counter_bytes(c0: int, n: int) -> list[bytes]:
    """Per-position byte sequences of the 32-bit big-endian counter."""
    lows = bytearray()
    highs = [bytearray(), bytearray(), bytearray()]
    j = 0
    while j < n:
        c = (c0 + j) & 0xFFFFFFFF
        run = min(n - j, 256 - (c & 0xFF))
        low = c & 0xFF
        lows += bytes(range(low, low + run))
        for idx, shift in enumerate((24, 16, 8)):
            highs[idx] += bytes([(c >> shift) & 0xFF]) * run
        j += run
    return [bytes(h) for h in highs] + [bytes(lows)]


class BitslicedCtr:
    """Bitsliced CTR keystream engine bound to one expanded AES key."""

    __slots__ = ("_round_keys", "_rounds", "_rk_masks")

    def __init__(self, round_keys: list[int], rounds: int) -> None:
        self._round_keys = round_keys
        self._rounds = rounds
        self._rk_masks: dict[int, list[list[int]]] = {}

    def _round_masks(self, layout: _Layout) -> list[list[int]]:
        masks = self._rk_masks.get(layout.n)
        if masks is None:
            masks = []
            field = layout.field
            for rnd in range(self._rounds + 1):
                planes = [0] * 8
                for c in range(4):
                    word = self._round_keys[4 * rnd + c]
                    for r in range(4):
                        byte = (word >> (24 - 8 * r)) & 0xFF
                        f = field[4 * c + r]
                        for p in range(8):
                            if (byte >> p) & 1:
                                planes[p] |= f
                masks.append(planes)
            if len(self._rk_masks) > 4:
                self._rk_masks.clear()
            self._rk_masks[layout.n] = masks
        return masks

    @staticmethod
    def _input_planes(nonce: bytes, c0: int, layout: _Layout) -> list[int]:
        n = layout.n
        ctr = layout.ctr_planes.get(c0)
        if ctr is None:
            ctr = [0] * 8
            for pos, seq in enumerate(_counter_bytes(c0, n)):
                shift = (12 + pos) * n
                for p, bits in enumerate(_byte_planes(seq, layout)):
                    ctr[p] |= bits << shift
            if len(layout.ctr_planes) > 4:
                layout.ctr_planes.clear()
            layout.ctr_planes[c0] = ctr
        planes = list(ctr)
        field = layout.field
        for b in range(12):
            v = nonce[b]
            for p in range(8):
                if (v >> p) & 1:
                    planes[p] |= field[b]
        return planes

    def keystream(self, nonce: bytes, initial_counter: int,
                  nblocks: int) -> bytes:
        """Keystream for blocks ``nonce || BE32(initial_counter + j)``."""
        if nblocks <= 0:
            return b""
        padded = (nblocks + 7) & ~7
        layout = _Layout(padded)
        n = layout.n
        rkm = self._round_masks(layout)
        sbox = _SBOX_PLANES
        ones = layout.allones
        rk0 = rkm[0]
        planes = self._input_planes(nonce, initial_counter, layout)
        planes = [planes[p] ^ rk0[p] for p in range(8)]
        row0, not_row0 = layout.row0, layout.not_row0
        sr = layout.sr
        n3 = 3 * n
        for rnd in range(1, self._rounds):
            planes = sbox(*planes, ones)
            rk = rkm[rnd]
            out = []
            for p in range(8):
                x = planes[p]
                y = x & row0
                for hi, lo, rs, ls in sr:
                    y |= ((x & hi) >> rs) | ((x & lo) << ls)
                out.append(y & ones)
            # MixColumns: out = xtime(a ^ rot1) ^ rot1 ^ rot2 ^ rot3
            r1 = [(((x & not_row0) >> n) | ((x & row0) << n3)) & ones
                  for x in out]
            r2 = [(((x & not_row0) >> n) | ((x & row0) << n3)) & ones
                  for x in r1]
            r3 = [(((x & not_row0) >> n) | ((x & row0) << n3)) & ones
                  for x in r2]
            t = [out[p] ^ r1[p] for p in range(8)]
            xt = (t[7], t[0] ^ t[7], t[1], t[2] ^ t[7], t[3] ^ t[7],
                  t[4], t[5], t[6])
            planes = [xt[p] ^ r1[p] ^ r2[p] ^ r3[p] ^ rk[p] for p in range(8)]
        planes = sbox(*planes, ones)
        rk = rkm[self._rounds]
        final = []
        for p in range(8):
            x = planes[p]
            y = x & row0
            for hi, lo, rs, ls in sr:
                y |= ((x & hi) >> rs) | ((x & lo) << ls)
            final.append((y & ones) ^ rk[p])
        return self._to_bytes(final, layout)[: 16 * nblocks]

    @staticmethod
    def _to_bytes(planes: list[int], layout: _Layout) -> bytes:
        n = layout.n
        nb = 2 * n  # bytes per plane
        buf = bytearray(8 * nb)
        for p in range(8):
            buf[p::8] = planes[p].to_bytes(nb, "little")
        x = _transpose8(int.from_bytes(buf, "little"), layout.t8_out)
        raw = x.to_bytes(8 * nb, "little")
        out = bytearray(16 * n)
        for b in range(16):
            out[b::16] = raw[b * n:(b + 1) * n]
        return bytes(out)


_verify_sbox()
