"""RSA key generation and PKCS#1 v1.5 signatures/encryption, pure Python.

Key generation uses Miller-Rabin with random bases drawn from the caller's
RNG so the whole library stays deterministic under a seeded DRBG. Signatures
are RSASSA-PKCS1-v1_5 with SHA-256; encryption is RSAES-PKCS1-v1_5 (used by
the RSA key-exchange cipher suites).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import CryptoError

__all__ = ["RSAPublicKey", "RSAPrivateKey", "generate_rsa_key"]

# DigestInfo prefix for SHA-256 (RFC 8017 section 9.2 note 1).
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def is_probable_prime(n: int, rng, rounds: int = 24) -> bool:
    """Miller-Rabin primality test with ``rounds`` random bases."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint_range(2, n - 2)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    while True:
        candidate = rng.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # exact bit length, odd
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key (n, e) with PKCS#1 v1.5 verify/encrypt."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify an RSASSA-PKCS1-v1_5 SHA-256 signature."""
        if len(signature) != self.byte_length:
            return False
        em = pow(int.from_bytes(signature, "big"), self.e, self.n)
        expected = self._encode_digest(message)
        return em == int.from_bytes(expected, "big")

    def encrypt(self, message: bytes, rng) -> bytes:
        """RSAES-PKCS1-v1_5 encryption (EME type 2 padding)."""
        k = self.byte_length
        if len(message) > k - 11:
            raise CryptoError("message too long for RSA modulus")
        padding = bytearray()
        while len(padding) < k - len(message) - 3:
            byte = rng.randbits(8)
            if byte:
                padding.append(byte)
        em = b"\x00\x02" + bytes(padding) + b"\x00" + message
        c = pow(int.from_bytes(em, "big"), self.e, self.n)
        return c.to_bytes(k, "big")

    def _encode_digest(self, message: bytes) -> bytes:
        digest = hashlib.sha256(message).digest()
        t = _SHA256_PREFIX + digest
        ps_len = self.byte_length - len(t) - 3
        if ps_len < 8:
            raise CryptoError("RSA modulus too small for SHA-256 signature")
        return b"\x00\x01" + b"\xff" * ps_len + b"\x00" + t

    def to_bytes(self) -> bytes:
        """Serialize as len(n) || n || len(e) || e (16-bit length prefixes)."""
        nb = self.n.to_bytes(self.byte_length, "big")
        eb = self.e.to_bytes((self.e.bit_length() + 7) // 8, "big")
        return (
            len(nb).to_bytes(2, "big") + nb + len(eb).to_bytes(2, "big") + eb
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RSAPublicKey":
        """Parse the serialization produced by :meth:`to_bytes`."""
        n_len = int.from_bytes(data[:2], "big")
        n = int.from_bytes(data[2 : 2 + n_len], "big")
        offset = 2 + n_len
        e_len = int.from_bytes(data[offset : offset + 2], "big")
        e = int.from_bytes(data[offset + 2 : offset + 2 + e_len], "big")
        if n == 0 or e == 0:
            raise CryptoError("malformed RSA public key encoding")
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key with CRT acceleration for sign/decrypt."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def _private_op(self, value: int) -> int:
        # CRT: roughly 4x faster than a full pow(value, d, n).
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        mp = pow(value % self.p, dp, self.p)
        mq = pow(value % self.q, dq, self.q)
        h = (q_inv * (mp - mq)) % self.p
        return mq + h * self.q

    def sign(self, message: bytes) -> bytes:
        """Produce an RSASSA-PKCS1-v1_5 SHA-256 signature."""
        em = self.public_key._encode_digest(message)
        s = self._private_op(int.from_bytes(em, "big"))
        return s.to_bytes(self.byte_length, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """RSAES-PKCS1-v1_5 decryption; raises CryptoError on bad padding."""
        if len(ciphertext) != self.byte_length:
            raise CryptoError("RSA ciphertext has wrong length")
        em = self._private_op(int.from_bytes(ciphertext, "big"))
        padded = em.to_bytes(self.byte_length, "big")
        if padded[0] != 0 or padded[1] != 2:
            raise CryptoError("invalid PKCS#1 v1.5 padding")
        try:
            separator = padded.index(0, 2)
        except ValueError as exc:
            raise CryptoError("invalid PKCS#1 v1.5 padding") from exc
        if separator < 10:
            raise CryptoError("invalid PKCS#1 v1.5 padding")
        return padded[separator + 1 :]


def generate_rsa_key(bits: int, rng, e: int = 65537) -> RSAPrivateKey:
    """Generate an RSA key pair of ``bits`` modulus bits."""
    if bits < 512:
        raise CryptoError("refusing to generate RSA keys below 512 bits")
    while True:
        p = _generate_prime(bits // 2, rng)
        q = _generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; re-draw primes
        return RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)
