"""Finite-field Diffie-Hellman over the RFC 3526 MODP groups.

The MODP primes are *derived*, not transcribed: RFC 2412 Appendix E defines
each prime as

    p = 2^b - 2^(b-64) - 1 + 2^64 * ( floor(2^(b-130) * pi) + offset )

so we compute pi to the required precision with Machin's formula in integer
arithmetic, rebuild the prime, and then verify with Miller-Rabin that both p
and (p-1)/2 are prime. A transcription typo is therefore impossible: a wrong
constant would fail the safe-prime check at first use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rsa import is_probable_prime
from repro.errors import CryptoError

__all__ = ["DHGroup", "modp_group", "DHPrivateKey"]

# bits -> RFC 2412 / RFC 3526 offset constants.
_MODP_OFFSETS = {768: 149686, 1024: 129093, 1536: 741804, 2048: 124476}

_pi_cache: dict[int, int] = {}
_group_cache: dict[int, "DHGroup"] = {}


def _pi_scaled(precision_bits: int) -> int:
    """floor(pi * 2^precision_bits) via Machin: pi = 16 atan(1/5) - 4 atan(1/239)."""
    if precision_bits in _pi_cache:
        return _pi_cache[precision_bits]
    guard = 64
    scale = 1 << (precision_bits + guard)

    def atan_inverse(x: int) -> int:
        # atan(1/x) = sum (-1)^k / ((2k+1) x^(2k+1)), in fixed point.
        total = 0
        term = scale // x
        x_squared = x * x
        k = 0
        while term:
            total += term // (2 * k + 1) if k % 2 == 0 else -(term // (2 * k + 1))
            term //= x_squared
            k += 1
        return total

    pi = 16 * atan_inverse(5) - 4 * atan_inverse(239)
    result = pi >> guard
    _pi_cache[precision_bits] = result
    return result


@dataclass(frozen=True)
class DHGroup:
    """A Diffie-Hellman group: safe prime ``p`` and generator ``g``."""

    p: int
    g: int

    @property
    def byte_length(self) -> int:
        return (self.p.bit_length() + 7) // 8


class _CheckRng:
    """Minimal deterministic RNG for the one-time primality self-check."""

    def __init__(self) -> None:
        self._state = 0x9E3779B97F4A7C15

    def randint_range(self, low: int, high: int) -> int:
        self._state = (self._state * 6364136223846793005 + 1442695040888963407) % 2**64
        return low + self._state % (high - low + 1)


def modp_group(bits: int) -> DHGroup:
    """Return the RFC 3526/2412 MODP group of the given size (cached).

    Raises:
        CryptoError: if ``bits`` is not a supported group size, or if the
            derived prime fails the safe-prime self-check.
    """
    if bits in _group_cache:
        return _group_cache[bits]
    if bits not in _MODP_OFFSETS:
        raise CryptoError(f"no MODP group of {bits} bits (have {sorted(_MODP_OFFSETS)})")
    pi_part = _pi_scaled(bits - 130)
    p = 2**bits - 2 ** (bits - 64) - 1 + 2**64 * (pi_part + _MODP_OFFSETS[bits])
    rng = _CheckRng()
    if not is_probable_prime(p, rng, rounds=12):
        raise CryptoError(f"derived {bits}-bit MODP prime failed primality check")
    if not is_probable_prime((p - 1) // 2, rng, rounds=12):
        raise CryptoError(f"derived {bits}-bit MODP prime is not a safe prime")
    group = DHGroup(p=p, g=2)
    _group_cache[bits] = group
    return group


class DHPrivateKey:
    """An ephemeral DH private key in a given group."""

    def __init__(self, group: DHGroup, rng) -> None:
        self.group = group
        # Exponent of ~2x the security level of the group is sufficient and
        # much faster than a full-size exponent.
        exponent_bits = max(256, group.p.bit_length() // 4)
        self._x = rng.randbits(exponent_bits) | (1 << (exponent_bits - 1))
        self.public_value = pow(group.g, self._x, group.p)

    def exchange(self, peer_public: int) -> bytes:
        """Derive the shared secret; validates the peer's public value."""
        p = self.group.p
        if not 2 <= peer_public <= p - 2:
            raise CryptoError("invalid DH public value")
        shared = pow(peer_public, self._x, p)
        if shared in (1, p - 1):
            raise CryptoError("degenerate DH shared secret")
        return shared.to_bytes(self.group.byte_length, "big")
