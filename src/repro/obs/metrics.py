"""Process-local metrics: counters, gauges, and exact-bucket histograms.

Zero dependencies and fully deterministic: nothing in this module reads
the wall clock or any other ambient state.  Values are keyed by
``(name, sorted labels)`` so a snapshot of the registry is a pure
function of the sequence of ``inc``/``set``/``observe`` calls, and two
runs that perform the same calls produce byte-identical JSON.

Histograms use *exact* buckets: every observation lands in exactly one
bucket — the first whose upper bound is ``>= value``, with ``+Inf``
catching the rest — and the exact sum/min/max are kept alongside
(cumulative Prometheus-style views are derivable from the snapshot).  Bucket bounds are chosen
by the instrumentation site (sim-time seconds for latencies, record
counts for batch sizes) — there is no global default that could drift.
"""

from __future__ import annotations

import json
from typing import Iterator

#: Version of the snapshot layout emitted by :meth:`MetricsRegistry.snapshot`.
#: Bump whenever the JSON shape changes so downstream diffing (the CI
#: obs-smoke job) can detect incompatible output.
#: v2: the ``pool.tasks`` entries are keyed ``chunk`` (deterministic chunk
#: slot), replacing the misleading ``worker`` key (slots are not PIDs).
SCHEMA_VERSION = 2

#: Default bucket bounds for time-valued histograms, in (sim) seconds.
TIME_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Default bucket bounds for small-count histograms (batch sizes etc.).
COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def add(self, amount: int | float) -> None:
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram with exact sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.count = 0
        self.total = 0
        self.minimum: int | float | None = None
        self.maximum: int | float | None = None

    def observe(self, value: int | float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value


class MetricsRegistry:
    """Holds every metric family; hands out live instruments by labels."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: tuple[float, ...] = TIME_BUCKETS,
                  **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    def counter_value(self, name: str, **labels: str) -> int | float:
        """Read a counter without creating it (0 when absent)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return 0 if instrument is None else instrument.value

    def gauge_value(self, name: str, **labels: str) -> int | float:
        """Read a gauge without creating it (0 when absent)."""
        instrument = self._gauges.get((name, _label_key(labels)))
        return 0 if instrument is None else instrument.value

    def iter_counters(self, name: str) -> Iterator[tuple[dict[str, str], int | float]]:
        """Yield ``(labels, value)`` for every series of one counter family."""
        for (fam, key), instrument in sorted(self._counters.items()):
            if fam == name:
                yield dict(key), instrument.value

    def snapshot(self) -> dict:
        """Deterministic, JSON-ready view of every recorded series."""
        counters: dict[str, list] = {}
        for (name, key), instrument in sorted(self._counters.items()):
            counters.setdefault(name, []).append(
                {"labels": dict(key), "value": instrument.value})
        gauges: dict[str, list] = {}
        for (name, key), instrument in sorted(self._gauges.items()):
            gauges.setdefault(name, []).append(
                {"labels": dict(key), "value": instrument.value})
        histograms: dict[str, list] = {}
        for (name, key), instrument in sorted(self._histograms.items()):
            upper = [str(b) for b in instrument.bounds] + ["+Inf"]
            histograms.setdefault(name, []).append({
                "labels": dict(key),
                "buckets": dict(zip(upper, instrument.bucket_counts)),
                "count": instrument.count,
                "sum": instrument.total,
                "min": instrument.minimum,
                "max": instrument.maximum,
            })
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)
