"""``repro.obs`` — the session-wide observability plane.

One process-local :class:`ObservabilityPlane` bundles a
:class:`~repro.obs.metrics.MetricsRegistry` with a
:class:`~repro.obs.tracing.SpanRecorder` behind a single clock.  Every
instrumented module reads the *current* plane through :func:`plane` at
call time, so scenario runners and tests can swap in a fresh plane
(:func:`scoped`) without threading a handle through every constructor.

Determinism contract: the plane's clock defaults to a constant ``0.0``
and is rebound to virtual time whenever a
:class:`~repro.netsim.sim.Simulator` is created, so the default path
never reads the wall clock.  Wall-time measurements (per-suite AEAD
timings in the record plane) only happen when ``wall_time`` is
explicitly enabled, and are excluded from byte-stable reports.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.metrics import (
    COUNT_BUCKETS,
    SCHEMA_VERSION,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import Span, SpanRecorder

__all__ = [
    "COUNT_BUCKETS",
    "SCHEMA_VERSION",
    "TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityPlane",
    "Span",
    "SpanRecorder",
    "counter",
    "gauge",
    "histogram",
    "install",
    "plane",
    "scoped",
    "tracer",
]


class ObservabilityPlane:
    """Metrics + tracer sharing one (re)bindable deterministic clock."""

    __slots__ = ("metrics", "tracer", "wall_time", "_clock")

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = SpanRecorder(clock=self.now)
        #: Opt-in for wall-clock measurements (AEAD timings).  Off by
        #: default so reports stay byte-identical across runs.
        self.wall_time = False
        self._clock: Callable[[], float] | None = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the plane at a time source (normally ``lambda: sim.now``)."""
        self._clock = clock

    def now(self) -> float:
        return 0.0 if self._clock is None else self._clock()

    def snapshot(self, include_trace: bool = True) -> dict:
        """Schema-versioned, deterministic view of everything recorded."""
        report = {
            "schema_version": SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
        }
        if include_trace:
            report["trace"] = self.tracer.snapshot()
        return report


_current = ObservabilityPlane()


def plane() -> ObservabilityPlane:
    """The process-local plane every instrumentation site reports to."""
    return _current


def install(new_plane: ObservabilityPlane | None = None) -> ObservabilityPlane:
    """Replace the current plane (fresh by default) and return it."""
    global _current
    _current = new_plane if new_plane is not None else ObservabilityPlane()
    return _current


@contextmanager
def scoped(new_plane: ObservabilityPlane | None = None) -> Iterator[ObservabilityPlane]:
    """Temporarily install a plane; restores the previous one on exit."""
    previous = _current
    installed = install(new_plane)
    try:
        yield installed
    finally:
        install(previous)


def counter(name: str, **labels: str) -> Counter:
    return _current.metrics.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    return _current.metrics.gauge(name, **labels)


def histogram(name: str, bounds: tuple[float, ...] = TIME_BUCKETS,
              **labels: str) -> Histogram:
    return _current.metrics.histogram(name, bounds, **labels)


def tracer() -> SpanRecorder:
    return _current.tracer
