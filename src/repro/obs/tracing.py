"""Span tracing keyed on deterministic sim time.

Sans-IO engines cannot hold a ``with`` block open across calls, so the
API is explicit: :meth:`SpanRecorder.begin` returns a live :class:`Span`
the caller stores and later passes to :meth:`SpanRecorder.end`.  Nesting
is expressed by passing ``parent=``; depth is derived from the parent
chain, not from any implicit thread-local stack (interleaved engines
would corrupt one).

Timestamps come from the recorder's ``clock`` callable — bound to a
:class:`~repro.netsim.sim.Simulator` in every scenario — so identical
runs produce identical traces, byte for byte.
"""

from __future__ import annotations

from typing import Callable


class Span:
    """One timed operation; ``end`` stays ``None`` while it is open."""

    __slots__ = ("name", "party", "start", "end", "attrs", "parent", "index", "depth")

    def __init__(self, name: str, party: str, start: float, index: int,
                 parent: "Span | None" = None,
                 attrs: dict[str, object] | None = None) -> None:
        self.name = name
        self.party = party
        self.start = start
        self.end: float | None = None
        self.attrs = dict(attrs or {})
        self.parent = parent
        self.index = index
        self.depth = 0 if parent is None else parent.depth + 1

    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration():.6f}s"
        return f"<Span {self.party}/{self.name} {state}>"


class SpanRecorder:
    """Collects spans and instant marks in deterministic order."""

    __slots__ = ("_clock", "spans", "marks", "_next_index")

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.spans: list[Span] = []
        self.marks: list[tuple[float, int, str, str, dict]] = []
        self._next_index = 0

    def _now(self) -> float:
        return self._clock()

    def begin(self, name: str, party: str = "", parent: Span | None = None,
              **attrs: object) -> Span:
        span = Span(name, party, self._now(), self._next_index, parent, attrs)
        self._next_index += 1
        self.spans.append(span)
        return span

    def end(self, span: Span | None, **attrs: object) -> None:
        """Close *span*; a ``None`` or already-closed span is a no-op so
        engine teardown paths never have to guard their bookkeeping."""
        if span is None or span.end is not None:
            return
        span.end = self._now()
        span.attrs.update(attrs)

    def mark(self, name: str, party: str = "", **attrs: object) -> None:
        """Record an instant event (no duration)."""
        self.marks.append((self._now(), self._next_index, name, party, dict(attrs)))
        self._next_index += 1

    def snapshot(self) -> dict:
        """Deterministic, JSON-ready view of all spans and marks."""
        spans = [
            {
                "name": s.name,
                "party": s.party,
                "start": s.start,
                "end": s.end,
                "depth": s.depth,
                "attrs": {str(k): _jsonable(v) for k, v in sorted(s.attrs.items())},
            }
            for s in sorted(self.spans, key=lambda s: (s.start, s.index))
        ]
        marks = [
            {
                "name": name,
                "party": party,
                "time": time,
                "attrs": {str(k): _jsonable(v) for k, v in sorted(attrs.items())},
            }
            for time, _index, name, party, attrs in sorted(
                self.marks, key=lambda m: (m[0], m[1]))
        ]
        return {"spans": spans, "marks": marks}


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
