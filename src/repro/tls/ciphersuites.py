"""Cipher suite registry for the TLS/mbTLS stack.

We implement the suites the paper's prototype cares about (DHE/ECDHE key
exchange with AES-256-GCM) plus AES-128-GCM and ChaCha20-Poly1305 variants.
One deliberate simplification, documented in DESIGN.md: all suites use the
SHA-256 PRF and a GCM-style record nonce (4-byte fixed IV + 8-byte explicit
nonce), so the record layer has a single shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.crypto.chacha import ChaCha20Poly1305
from repro.crypto.gcm import AESGCM
from repro.errors import HandshakeError

__all__ = ["KeyExchange", "CipherSuite", "CIPHER_SUITES", "DEFAULT_SUITES", "suite_by_code"]


class KeyExchange(Enum):
    ECDHE_RSA = "ECDHE_RSA"
    DHE_RSA = "DHE_RSA"


@dataclass(frozen=True)
class CipherSuite:
    """A negotiable cipher suite."""

    code: int
    name: str
    key_exchange: KeyExchange
    key_length: int
    fixed_iv_length: int
    aead_factory: Callable[[bytes], object]

    def new_aead(self, key: bytes):
        return self.aead_factory(key)


TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 = CipherSuite(
    code=0xC02F,
    name="TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    key_exchange=KeyExchange.ECDHE_RSA,
    key_length=16,
    fixed_iv_length=4,
    aead_factory=AESGCM,
)

TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384 = CipherSuite(
    code=0xC030,
    name="TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    key_exchange=KeyExchange.ECDHE_RSA,
    key_length=32,
    fixed_iv_length=4,
    aead_factory=AESGCM,
)

TLS_DHE_RSA_WITH_AES_128_GCM_SHA256 = CipherSuite(
    code=0x009E,
    name="TLS_DHE_RSA_WITH_AES_128_GCM_SHA256",
    key_exchange=KeyExchange.DHE_RSA,
    key_length=16,
    fixed_iv_length=4,
    aead_factory=AESGCM,
)

TLS_DHE_RSA_WITH_AES_256_GCM_SHA384 = CipherSuite(
    code=0x009F,
    name="TLS_DHE_RSA_WITH_AES_256_GCM_SHA384",
    key_exchange=KeyExchange.DHE_RSA,
    key_length=32,
    fixed_iv_length=4,
    aead_factory=AESGCM,
)

TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256 = CipherSuite(
    code=0xCCA8,
    name="TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    key_exchange=KeyExchange.ECDHE_RSA,
    key_length=32,
    fixed_iv_length=4,
    aead_factory=ChaCha20Poly1305,
)

CIPHER_SUITES: dict[int, CipherSuite] = {
    suite.code: suite
    for suite in (
        TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
        TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
        TLS_DHE_RSA_WITH_AES_128_GCM_SHA256,
        TLS_DHE_RSA_WITH_AES_256_GCM_SHA384,
        TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256,
    )
}

# The paper's prototype only supported AES-256-GCM; our default offer is the
# same, falling back to the AES-128 and ChaCha suites.
DEFAULT_SUITES: tuple[int, ...] = (
    TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384.code,
    TLS_DHE_RSA_WITH_AES_256_GCM_SHA384.code,
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256.code,
    TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256.code,
)


def suite_by_code(code: int) -> CipherSuite:
    """Look up a cipher suite; raises HandshakeError for unknown codes."""
    try:
        return CIPHER_SUITES[code]
    except KeyError as exc:
        raise HandshakeError(
            f"unsupported cipher suite {code:#06x}", alert="illegal_parameter"
        ) from exc
