"""Configuration for TLS engines (client and server roles)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.crypto.drbg import HmacDrbg
from repro.pki.authority import Credential
from repro.pki.store import TrustStore
from repro.tls.ciphersuites import DEFAULT_SUITES
from repro.tls.session import ClientSessionStore, ServerSessionCache, TicketKeeper
from repro.wire.extensions import Extension

__all__ = ["TLSConfig"]


@dataclass
class TLSConfig:
    """Everything a TLS engine needs beyond the byte stream.

    Attributes:
        rng: randomness source (seed it for reproducible handshakes).
        credential: private key + certificate chain (required for the
            server role; optional for clients).
        trust_store: roots used to validate the peer's chain. ``None``
            disables certificate validation (insecure; some tests use it).
        server_name: client role: SNI to send and hostname to validate.
        cipher_suites: offered (client) / acceptable (server) suite codes.
        now: clock used for certificate validation, in simulated seconds.
        session_store / session_cache / ticket_keeper: resumption state.
        offer_resumption: client: offer a stored session/ticket if present.
        request_ticket: client: ask the server for a session ticket.
        enclave: if this engine runs inside a (simulated) SGX enclave, the
            enclave object; enables producing SGXAttestation messages.
        attestation_verifier: verifier for peer quotes.
        require_attestation: client: request an SGXAttestation and fail the
            handshake if the peer does not supply a valid one.
        on_secret: callback(label, secret_bytes) invoked for every piece of
            key material the engine derives — wired to a
            :class:`~repro.sgx.enclave.MemoryArena` in the security tests.
        extra_extensions: additional ClientHello extensions (mbTLS adds
            MiddleboxSupport through this).
        ignore_unknown_records: legacy-endpoint behaviour knob (§3.4): if
            True (the common case the paper verified for Chrome/Firefox
            servers), mbTLS record types arriving at a plain TLS engine are
            skipped; if False the engine aborts the handshake.
        preset_client_hello: (client role, mbTLS secondary sessions) a
            pre-existing encoded ClientHello that serves double duty: it is
            entered into the transcript but not emitted.
        ticket_extra: callable returning opaque bytes folded into tickets
            this server issues (mbTLS stores primary-session keys here).
        session_id_bits: entropy of generated session IDs.
    """

    rng: HmacDrbg
    credential: Credential | None = None
    trust_store: TrustStore | None = None
    server_name: str | None = None
    cipher_suites: tuple[int, ...] = DEFAULT_SUITES
    now: Callable[[], float] = lambda: 0.0
    session_store: ClientSessionStore | None = None
    session_cache: ServerSessionCache | None = None
    ticket_keeper: TicketKeeper | None = None
    offer_resumption: bool = True
    request_ticket: bool = False
    enclave: object | None = None
    attestation_verifier: object | None = None
    require_attestation: bool = False
    on_secret: Callable[[str, bytes], None] | None = None
    extra_extensions: tuple[Extension, ...] = ()
    ignore_unknown_records: bool = True
    preset_client_hello: bytes | None = None
    preset_resume_session: "SessionState | None" = None
    ticket_extra: Callable[[], bytes] | None = None
    dhe_group_bits: int = 1024

    def report_secret(self, label: str, secret: bytes) -> None:
        if self.on_secret is not None:
            self.on_secret(label, secret)
