"""Sans-IO TLS 1.2 engines: the client and server handshake state machines.

The engines never touch a socket. Drivers feed raw bytes in with
:meth:`TLSEngine.receive_bytes` (getting protocol events back) and pump
:meth:`TLSEngine.data_to_send` out to whatever transport exists — a
simulated TCP stream, an in-memory pipe, or an mbTLS subchannel.

Supported: full ECDHE/DHE-RSA handshakes, AEAD record protection, session-ID
and ticket resumption, alerts, and the mbTLS hooks (SGX attestation messages,
preset ClientHellos for secondary sessions, tolerant handling of mbTLS
record types for legacy endpoints).
"""

from __future__ import annotations

import hashlib
from enum import Enum, auto

from repro import obs
from repro.crypto.dh import DHGroup, DHPrivateKey, modp_group
from repro.crypto.x25519 import X25519PrivateKey
from repro.io.record_plane import RecordPlane
from repro.errors import (
    AttestationError,
    CertificateError,
    DecodeError,
    HandshakeError,
    IntegrityError,
    ProtocolError,
    SessionAborted,
)
from repro.pki.certificate import Certificate as PkiCertificate
from repro.tls.ciphersuites import CipherSuite, KeyExchange, suite_by_code
from repro.tls.config import TLSConfig
from repro.tls.events import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    Event,
    HandshakeComplete,
    RawRecordReceived,
    TicketIssued,
)
from repro.tls.keyschedule import (
    KeyBlock,
    derive_key_block,
    derive_master_secret,
    finished_verify_data,
)
from repro.tls.record_layer import ConnectionState
from repro.tls.session import SessionState
from repro.wire.alerts import Alert, AlertDescription
from repro.wire.extensions import (
    AttestationRequestExtension,
    Extension,
    ExtensionType,
    ServerNameExtension,
    SessionTicketExtension,
)
from repro.wire.handshake import (
    Certificate,
    ClientHello,
    ClientKeyExchange,
    Finished,
    Handshake,
    HandshakeBuffer,
    HandshakeType,
    KexAlgorithm,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    ServerKeyExchange,
    SGXAttestation,
)
from repro.wire.records import ContentType, Record

__all__ = ["TLSEngine", "TLSClientEngine", "TLSServerEngine"]

_RANDOM_LEN = 32
_SESSION_ID_LEN = 32
_TICKET_LIFETIME = 3600


class _State(Enum):
    START = auto()
    # client
    WAIT_SERVER_HELLO = auto()
    WAIT_SERVER_FLIGHT = auto()
    WAIT_SERVER_CCS = auto()
    WAIT_SERVER_FINISHED = auto()
    # server
    WAIT_CLIENT_HELLO = auto()
    WAIT_CLIENT_KEX = auto()
    WAIT_CLIENT_CCS = auto()
    WAIT_CLIENT_FINISHED = auto()
    # both
    ESTABLISHED = auto()
    CLOSED = auto()


class TLSEngine:
    """Shared machinery for both TLS roles."""

    is_client: bool

    def __init__(self, config: TLSConfig) -> None:
        self.config = config
        self._plane = RecordPlane()
        self._handshakes = HandshakeBuffer()
        self._transcript: list[bytes] = []
        self._state = _State.START
        self._events: list[Event] = []
        self.suite: CipherSuite | None = None
        self.master_secret: bytes | None = None
        self.key_block: KeyBlock | None = None
        self.client_random: bytes | None = None
        self.server_random: bytes | None = None
        self.session_state: SessionState | None = None
        self.peer_certificate: PkiCertificate | None = None
        self.attested_measurement: bytes | None = None
        self.resumed = False
        self.alert_sent: Alert | None = None
        self.alert_received: Alert | None = None
        # Alert-plane attribution: ``origin_label`` names this party in any
        # fatal alert it originates; ``abort`` records why a fatal alert
        # (sent or received) tore the session down.
        self.origin_label = ""
        self.abort: SessionAborted | None = None
        self._hs_span = None

    @property
    def origin_label(self) -> str:
        return self._origin_label

    @origin_label.setter
    def origin_label(self, value: str) -> None:
        # The origin label doubles as the observability party name for this
        # engine's record plane, so stamping one stamps both.
        self._origin_label = value
        if value:
            self._plane.party = value

    def _obs_party(self) -> str:
        # Prefer the alert origin, then any party stamped on the plane
        # (middlebox secondaries), then the bare role.
        return (self.origin_label or self._plane.party
                or ("client" if self.is_client else "server"))

    def _begin_handshake_span(self) -> None:
        if self._hs_span is None:
            self._hs_span = obs.tracer().begin(
                "handshake.tls", party=self._obs_party())

    # ------------------------------------------------------------------ API

    @property
    def handshake_complete(self) -> bool:
        return self._state == _State.ESTABLISHED

    @property
    def first_transcript_message(self) -> bytes:
        """The first handshake message sent/received (mbTLS reuses the
        primary ClientHello as the preset hello for secondary sessions)."""
        if not self._transcript:
            raise ProtocolError("transcript is empty")
        return self._transcript[0]

    @property
    def closed(self) -> bool:
        return self._state == _State.CLOSED

    def start(self) -> None:
        """Kick off the handshake (client sends its hello; server waits)."""
        raise NotImplementedError

    def data_to_send(self) -> bytes:
        """Drain the pending flight in one coalesced buffer."""
        return self._plane.data_to_send()

    def receive_bytes(self, data: bytes) -> list[Event]:
        """Feed transport bytes; returns the protocol events they caused."""
        if self._state == _State.CLOSED:
            return []
        try:
            self._plane.feed(data)
            self._process_records(self._plane.pop_records())
        except IntegrityError:
            self._fatal(AlertDescription.BAD_RECORD_MAC, "record authentication failed")
        except DecodeError as exc:
            self._fatal(AlertDescription.DECODE_ERROR, str(exc))
        except CertificateError as exc:
            self._fatal(AlertDescription.from_name(exc.alert), str(exc))
        except AttestationError as exc:
            self._fatal(AlertDescription.BAD_CERTIFICATE, str(exc))
        except HandshakeError as exc:
            self._fatal(AlertDescription.from_name(exc.alert), str(exc))
        except ProtocolError as exc:
            self._fatal(AlertDescription.from_name(exc.alert), str(exc))
        events = self._events
        self._events = []
        return events

    def send_application_data(self, data: bytes) -> None:
        """Queue application data (only valid once established)."""
        if self._state == _State.CLOSED:
            raise ProtocolError("cannot send application data on a closed connection")
        if self._state != _State.ESTABLISHED:
            raise ProtocolError("cannot send application data before handshake")
        self._plane.queue_application_data(data)

    def send_raw_record(self, content_type: ContentType, payload: bytes) -> None:
        """Queue a protected record of an arbitrary content type.

        The mbTLS layer sends MBTLSKeyMaterial records through established
        secondary sessions this way.
        """
        if self._state != _State.ESTABLISHED:
            raise ProtocolError("cannot send raw records before handshake")
        self._send_record(content_type, payload)

    def close(self) -> None:
        """Send close_notify and shut the connection down."""
        if self._state not in (_State.CLOSED,):
            alert = Alert.close_notify()
            self._send_record(ContentType.ALERT, alert.encode())
            self.alert_sent = alert
            self._state = _State.CLOSED
            self._emit(ConnectionClosed())

    def send_fatal_alert(
        self, description: AlertDescription, message: str
    ) -> list[Event]:
        """Originate a fatal alert and close.

        Splicing middleboxes (split TLS) use this to propagate a teardown
        from one segment's session onto the other's.
        """
        self._fatal(description, message)
        events = self._events
        self._events = []
        return events

    def export_key_block(self) -> tuple[CipherSuite, KeyBlock]:
        """The primary key block (mbTLS bridge keys)."""
        if self.suite is None or self.key_block is None:
            raise ProtocolError("key block not yet derived")
        return self.suite, self.key_block

    def record_sequences(self) -> tuple[int, int]:
        """(write_seq, read_seq) of the protected record states."""
        return self._plane.sequences()

    def replace_data_states(
        self,
        read_state: ConnectionState | None,
        write_state: ConnectionState | None,
    ) -> None:
        """Swap record-protection states (mbTLS per-hop key installation)."""
        self._plane.replace_states(read_state, write_state)

    def peer_closed(self) -> list[Event]:
        """The transport died under us; returns the resulting events."""
        if self._state == _State.CLOSED:
            return []
        self._state = _State.CLOSED
        self._emit(ConnectionClosed(error="transport closed"))
        events = self._events
        self._events = []
        return events

    # ------------------------------------------------------------ internals

    def _emit(self, event: Event) -> None:
        self._events.append(event)

    def _fatal(self, description: AlertDescription, message: str) -> None:
        if self._state == _State.CLOSED:
            return
        alert = Alert.fatal(description, origin=self.origin_label)
        try:
            self._send_record(ContentType.ALERT, alert.encode())
        except ProtocolError:
            pass
        self.alert_sent = alert
        self._state = _State.CLOSED
        name = description.name.lower()
        obs.counter("alerts_sent", origin=self._obs_party(), alert=name).inc()
        obs.tracer().end(self._hs_span, error=name)
        self.abort = SessionAborted(message, origin=self.origin_label, alert=name)
        self._emit(
            ConnectionClosed(
                error=f"{name}: {message}", alert=name, origin=self.origin_label
            )
        )

    def _send_record(self, content_type: ContentType, payload: bytes) -> None:
        self._plane.queue_record(content_type, payload)

    def _send_handshake(self, message, to_transcript: bool = True) -> None:
        framed = Handshake(msg_type=message.msg_type, body=message.encode_body()).encode()
        if to_transcript:
            self._transcript.append(framed)
        self._send_record(ContentType.HANDSHAKE, framed)

    def _send_ccs(self) -> None:
        self._send_record(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
        self._plane.activate_pending_write()

    def _transcript_hash(self) -> bytes:
        return hashlib.sha256(b"".join(self._transcript)).digest()

    def _process_records(self, records: list[Record]) -> None:
        """Process a flight, batch-decrypting runs of application data.

        Consecutive application-data records share one ``unprotect_many``
        call; on a batch failure we replay that run per record so the
        valid prefix still produces its events before the alert fires.
        """
        total = len(records)
        index = 0
        plane = self._plane
        while index < total:
            record = records[index]
            if (
                record.content_type == ContentType.APPLICATION_DATA
                and hasattr(plane.read_state, "unprotect_many")
            ):
                end = index + 1
                while (
                    end < total
                    and records[end].content_type == ContentType.APPLICATION_DATA
                ):
                    end += 1
                if end - index > 1:
                    batch = records[index:end]
                    try:
                        payloads = plane.unprotect_many(batch)
                    except IntegrityError:
                        for item in batch:
                            self._process_record(item)
                        index = end
                        continue
                    for item, payload in zip(batch, payloads):
                        self._process_record(item, payload)
                    index = end
                    continue
            self._process_record(record)
            index += 1

    def _process_record(self, record: Record, payload: bytes | None = None) -> None:
        if payload is None:
            payload = self._plane.unprotect(record)

        if record.content_type == ContentType.CHANGE_CIPHER_SPEC:
            if payload != b"\x01":
                raise DecodeError("malformed ChangeCipherSpec")
            if self._plane.pending_read is None:
                raise HandshakeError(
                    "unexpected ChangeCipherSpec", alert="unexpected_message"
                )
            self._plane.activate_pending_read()
            return

        if record.content_type == ContentType.HANDSHAKE:
            self._handshakes.feed(payload)
            for message in self._handshakes.pop_messages():
                self._process_handshake(message)
            return

        if record.content_type == ContentType.ALERT:
            alert = Alert.decode(payload)
            self.alert_received = alert
            obs.counter(
                "alerts_received", party=self._obs_party(),
                origin=alert.origin or "unknown",
                alert=alert.description.name.lower(),
            ).inc()
            self._emit(AlertReceived(alert=alert))
            if alert.is_fatal or alert.is_close:
                self._state = _State.CLOSED
                if alert.is_close:
                    self._emit(ConnectionClosed())
                else:
                    name = alert.description.name.lower()
                    self.abort = SessionAborted(
                        f"peer sent fatal {name}", origin=alert.origin, alert=name
                    )
                    self._emit(
                        ConnectionClosed(error=name, alert=name, origin=alert.origin)
                    )
            return

        if record.content_type == ContentType.APPLICATION_DATA:
            if self._state != _State.ESTABLISHED:
                raise HandshakeError(
                    "application data before handshake completion",
                    alert="unexpected_message",
                )
            self._emit(ApplicationData(data=payload))
            return

        # mbTLS content types reaching a plain engine: a legacy endpoint
        # either ignores them or fails, depending on its implementation.
        if record.content_type in (
            ContentType.MBTLS_ENCAPSULATED,
            ContentType.MBTLS_KEY_MATERIAL,
            ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT,
        ):
            self._handle_mbtls_record(record, payload)
            return

        raise DecodeError(f"unhandled content type {record.content_type}")

    def _handle_mbtls_record(self, record: Record, payload: bytes) -> None:
        """Plain TLS engines tolerate or reject mbTLS records (see §3.4)."""
        if self._state == _State.ESTABLISHED and record.content_type == (
            ContentType.MBTLS_KEY_MATERIAL
        ):
            self._emit(RawRecordReceived(record.content_type, payload))
            return
        if record.content_type == ContentType.MBTLS_MIDDLEBOX_ANNOUNCEMENT:
            # Servers that understand announcements override this hook.
            if self.config.ignore_unknown_records:
                return
            raise HandshakeError(
                "middlebox announcement not supported", alert="unexpected_message"
            )
        if self.config.ignore_unknown_records:
            return
        raise HandshakeError("unexpected mbTLS record", alert="unexpected_message")

    def _process_handshake(self, message: Handshake) -> None:
        raise NotImplementedError

    # ------------------------------------------------- shared crypto helpers

    def _install_key_block(self) -> None:
        assert self.suite and self.master_secret
        assert self.client_random and self.server_random
        self.key_block = derive_key_block(
            self.master_secret, self.client_random, self.server_random, self.suite
        )
        self.config.report_secret("master_secret", self.master_secret)
        self.config.report_secret("client_write_key", self.key_block.client_write_key)
        self.config.report_secret("server_write_key", self.key_block.server_write_key)
        if self.is_client:
            write_key, write_iv = (
                self.key_block.client_write_key,
                self.key_block.client_write_iv,
            )
            read_key, read_iv = (
                self.key_block.server_write_key,
                self.key_block.server_write_iv,
            )
        else:
            write_key, write_iv = (
                self.key_block.server_write_key,
                self.key_block.server_write_iv,
            )
            read_key, read_iv = (
                self.key_block.client_write_key,
                self.key_block.client_write_iv,
            )
        self._plane.pending_write = ConnectionState(self.suite, write_key, write_iv)
        self._plane.pending_read = ConnectionState(self.suite, read_key, read_iv)
        obs.counter(
            "key_installs", party=self._obs_party(), kind="session",
            suite=self.suite.name,
        ).inc()

    def _verify_finished(self, message: Handshake, from_client: bool) -> None:
        finished = Finished.decode_body(message.body)
        expected = finished_verify_data(
            self.master_secret, self._transcript_hash(), is_client=from_client
        )
        if finished.verify_data != expected:
            raise HandshakeError("Finished verification failed", alert="decrypt_error")
        self._transcript.append(
            Handshake(msg_type=message.msg_type, body=message.body).encode()
        )

    def _send_finished(self) -> None:
        verify = finished_verify_data(
            self.master_secret, self._transcript_hash(), is_client=self.is_client
        )
        self._send_handshake(Finished(verify_data=verify))

    def _complete(self) -> None:
        self._state = _State.ESTABLISHED
        obs.tracer().end(self._hs_span, resumed=self.resumed)
        self._emit(
            HandshakeComplete(
                cipher_suite=self.suite.code,
                resumed=self.resumed,
                peer_certificate=self.peer_certificate,
                attested_measurement=self.attested_measurement,
            )
        )


class TLSClientEngine(TLSEngine):
    """The TLS 1.2 client state machine."""

    is_client = True

    def __init__(self, config: TLSConfig) -> None:
        super().__init__(config)
        self._offered_session: SessionState | None = None
        self._offered_ticket: bytes | None = None
        self._kex_private: object | None = None
        self._attestation_required = config.require_attestation
        self._attestation_seen = False
        self._pending_ticket: bytes | None = None

    def start(self) -> None:
        if self._state != _State.START:
            raise ProtocolError("handshake already started")
        self._begin_handshake_span()
        if self.config.preset_client_hello is not None:
            self._start_from_preset()
            return
        hello = self._build_client_hello()
        self.client_random = hello.random
        self._send_handshake(hello)
        self._state = _State.WAIT_SERVER_HELLO

    def _start_from_preset(self) -> None:
        """mbTLS secondary sessions: the primary ClientHello does double duty."""
        framed = self.config.preset_client_hello
        message_body = framed[4:]
        hello = ClientHello.decode_body(message_body)
        self.client_random = hello.random
        # §3.5 resumption: the primary hello's session ID doubles as the
        # secondary session's resumption offer; the mbTLS layer supplies the
        # matching secondary session state if it has one.
        resume = self.config.preset_resume_session
        if resume is not None and resume.session_id == hello.session_id:
            self._offered_session = resume
        self._transcript.append(framed)
        self._state = _State.WAIT_SERVER_HELLO

    def _build_client_hello(self) -> ClientHello:
        config = self.config
        extensions: list[Extension] = []
        if config.server_name:
            extensions.append(ServerNameExtension(config.server_name).to_extension())
        session_id = b""
        if config.offer_resumption and config.session_store and config.server_name:
            stored = config.session_store.lookup(config.server_name)
            ticket = config.session_store.lookup_ticket(config.server_name)
            if ticket is not None:
                self._offered_ticket = ticket
                session_id = hashlib.sha256(ticket).digest()[:_SESSION_ID_LEN]
                extensions.append(SessionTicketExtension(ticket).to_extension())
            elif stored is not None:
                self._offered_session = stored
                session_id = stored.session_id
        if config.request_ticket and self._offered_ticket is None:
            extensions.append(SessionTicketExtension(b"").to_extension())
        if config.require_attestation:
            extensions.append(AttestationRequestExtension().to_extension())
        extensions.extend(config.extra_extensions)
        return ClientHello(
            random=config.rng.random_bytes(_RANDOM_LEN),
            session_id=session_id,
            cipher_suites=tuple(config.cipher_suites),
            extensions=tuple(extensions),
        )

    def _process_handshake(self, message: Handshake) -> None:
        handler = {
            _State.WAIT_SERVER_HELLO: self._on_wait_server_hello,
            _State.WAIT_SERVER_FLIGHT: self._on_wait_server_flight,
            _State.WAIT_SERVER_CCS: self._on_wait_server_finished,
            _State.WAIT_SERVER_FINISHED: self._on_wait_server_finished,
            _State.ESTABLISHED: self._on_established_handshake,
        }.get(self._state)
        if handler is None:
            raise HandshakeError(
                f"handshake message in state {self._state.name}",
                alert="unexpected_message",
            )
        handler(message)

    def _on_wait_server_hello(self, message: Handshake) -> None:
        if message.msg_type != HandshakeType.SERVER_HELLO:
            raise HandshakeError(
                f"expected ServerHello, got {message.msg_type.name}",
                alert="unexpected_message",
            )
        hello = ServerHello.decode_body(message.body)
        self._transcript.append(message.encode())
        self.server_random = hello.random
        self.suite = suite_by_code(hello.cipher_suite)
        if hello.cipher_suite not in self.config.cipher_suites:
            raise HandshakeError(
                "server selected a suite we did not offer", alert="illegal_parameter"
            )
        self._server_session_id = hello.session_id

        offered_id = None
        resumable: SessionState | None = None
        if self._offered_ticket is not None:
            offered_id = hashlib.sha256(self._offered_ticket).digest()[:_SESSION_ID_LEN]
            stored = (
                self.config.session_store.lookup(self.config.server_name or "")
                if self.config.session_store
                else None
            )
            resumable = stored
        elif self._offered_session is not None:
            offered_id = self._offered_session.session_id
            resumable = self._offered_session

        if (
            offered_id
            and hello.session_id == offered_id
            and resumable is not None
            and resumable.cipher_suite == hello.cipher_suite
        ):
            # Abbreviated handshake: server accepted our session.
            self.resumed = True
            self.master_secret = resumable.master_secret
            self._install_key_block()
            self._state = _State.WAIT_SERVER_CCS
        else:
            self._state = _State.WAIT_SERVER_FLIGHT

    def _on_wait_server_flight(self, message: Handshake) -> None:
        if message.msg_type == HandshakeType.SGX_ATTESTATION:
            self._handle_attestation(message)
            return
        if message.msg_type == HandshakeType.CERTIFICATE:
            self._transcript.append(message.encode())
            self._handle_certificate(Certificate.decode_body(message.body))
            return
        if message.msg_type == HandshakeType.SERVER_KEY_EXCHANGE:
            self._transcript.append(message.encode())
            self._server_kex = ServerKeyExchange.decode_body(message.body)
            return
        if message.msg_type == HandshakeType.SERVER_HELLO_DONE:
            ServerHelloDone.decode_body(message.body)
            self._transcript.append(message.encode())
            self._handle_server_done()
            return
        raise HandshakeError(
            f"unexpected {message.msg_type.name} in server flight",
            alert="unexpected_message",
        )

    def _handle_certificate(self, certificate: Certificate) -> None:
        chain = []
        for encoded in certificate.chain:
            chain.append(PkiCertificate.decode(encoded))
        if not chain:
            raise CertificateError("server sent an empty certificate chain")
        if self.config.trust_store is not None:
            leaf = self.config.trust_store.validate_chain(
                chain, self.config.server_name, self.config.now()
            )
        else:
            leaf = chain[0]
        self.peer_certificate = leaf

    def _handle_attestation(self, message: Handshake) -> None:
        attestation = SGXAttestation.decode_body(message.body)
        verifier = self.config.attestation_verifier
        if verifier is None:
            raise AttestationError("no attestation verifier configured")
        # report_data binds the transcript up to (not including) this message.
        quote = verifier.verify(attestation.quote, self._transcript_hash())
        self.attested_measurement = quote.measurement
        self._attestation_seen = True
        self._transcript.append(message.encode())

    def _handle_server_done(self) -> None:
        if self.peer_certificate is None:
            raise HandshakeError("server never sent a certificate")
        if getattr(self, "_server_kex", None) is None:
            raise HandshakeError("server never sent a key exchange")
        if self._attestation_required and not self._attestation_seen:
            raise AttestationError("server did not attest and attestation is required")

        kex = self._server_kex
        signed = self.client_random + self.server_random + kex.params
        if not self.peer_certificate.public_key.verify(signed, kex.signature):
            raise HandshakeError(
                "ServerKeyExchange signature invalid", alert="decrypt_error"
            )

        if kex.algorithm == KexAlgorithm.ECDHE_X25519:
            server_public = kex.parse_ecdhe_public()
            private = X25519PrivateKey(self.config.rng.random_bytes(32))
            pre_master = private.exchange(server_public)
            exchange_data = private.public_bytes
        else:
            p, g, server_public = kex.parse_dhe_params()
            group = DHGroup(p=p, g=g)
            private = DHPrivateKey(group, self.config.rng)
            pre_master = private.exchange(server_public)
            exchange_data = private.public_value.to_bytes(group.byte_length, "big")

        self.config.report_secret("pre_master_secret", pre_master)
        self.master_secret = derive_master_secret(
            pre_master, self.client_random, self.server_random
        )
        self._send_handshake(ClientKeyExchange(exchange_data=exchange_data))
        self._install_key_block()
        self._send_ccs()
        self._send_finished()
        self._state = _State.WAIT_SERVER_CCS

    def _on_wait_server_finished(self, message: Handshake) -> None:
        if message.msg_type == HandshakeType.NEW_SESSION_TICKET:
            ticket_msg = NewSessionTicket.decode_body(message.body)
            self._transcript.append(message.encode())
            self._pending_ticket = ticket_msg.ticket
            self._emit(
                TicketIssued(
                    ticket=ticket_msg.ticket,
                    lifetime_seconds=ticket_msg.lifetime_seconds,
                )
            )
            return
        if message.msg_type != HandshakeType.FINISHED:
            raise HandshakeError(
                f"expected Finished, got {message.msg_type.name}",
                alert="unexpected_message",
            )
        self._verify_finished(message, from_client=False)
        if self.resumed:
            # Abbreviated: now send our CCS + Finished.
            self._send_ccs()
            self._send_finished()
        self._finish_client()

    def _finish_client(self) -> None:
        session_id = getattr(self, "_server_session_id", b"")
        self.session_state = SessionState(
            session_id=session_id,
            master_secret=self.master_secret,
            cipher_suite=self.suite.code,
            server_name=self.config.server_name or "",
        )
        store = self.config.session_store
        if store is not None and self.config.server_name:
            if self._pending_ticket is not None:
                store.remember_ticket(self.config.server_name, self._pending_ticket)
            if session_id:
                store.remember(self.config.server_name, self.session_state)
        self._complete()

    def _on_established_handshake(self, message: Handshake) -> None:
        raise HandshakeError(
            "renegotiation is not supported", alert="no_renegotiation"
        )


class TLSServerEngine(TLSEngine):
    """The TLS 1.2 server state machine."""

    is_client = False

    def __init__(self, config: TLSConfig) -> None:
        super().__init__(config)
        if config.credential is None:
            raise ProtocolError("server role requires a credential")
        self._client_requested_ticket = False
        self._client_requested_attestation = False
        self._session_id: bytes = b""
        self._announcement_seen = False

    def start(self) -> None:
        if self._state != _State.START:
            raise ProtocolError("handshake already started")
        self._begin_handshake_span()
        self._state = _State.WAIT_CLIENT_HELLO

    def _process_handshake(self, message: Handshake) -> None:
        handler = {
            _State.WAIT_CLIENT_HELLO: self._on_client_hello,
            _State.WAIT_CLIENT_KEX: self._on_client_kex,
            _State.WAIT_CLIENT_CCS: self._on_client_finished,
            _State.WAIT_CLIENT_FINISHED: self._on_client_finished,
            _State.ESTABLISHED: self._on_established_handshake,
        }.get(self._state)
        if handler is None:
            raise HandshakeError(
                f"handshake message in state {self._state.name}",
                alert="unexpected_message",
            )
        handler(message)

    def _on_client_hello(self, message: Handshake) -> None:
        if message.msg_type != HandshakeType.CLIENT_HELLO:
            raise HandshakeError(
                f"expected ClientHello, got {message.msg_type.name}",
                alert="unexpected_message",
            )
        hello = ClientHello.decode_body(message.body)
        self._transcript.append(message.encode())
        self.client_hello = hello
        self.client_random = hello.random
        self.server_random = self.config.rng.random_bytes(_RANDOM_LEN)

        suite_code = self._negotiate_suite(hello)
        self.suite = suite_by_code(suite_code)

        ticket_ext = hello.find_extension(int(ExtensionType.SESSION_TICKET))
        self._client_requested_ticket = ticket_ext is not None
        self._client_requested_attestation = (
            hello.find_extension(int(ExtensionType.ATTESTATION_REQUEST)) is not None
        )

        resumed_state = self._try_resume(hello, ticket_ext, suite_code)
        if resumed_state is not None:
            self._do_abbreviated(resumed_state, hello)
        else:
            self._do_full_flight(hello, suite_code)

    def _negotiate_suite(self, hello: ClientHello) -> int:
        for code in self.config.cipher_suites:
            if code in hello.cipher_suites:
                return code
        raise HandshakeError("no cipher suite in common", alert="handshake_failure")

    def _try_resume(self, hello, ticket_ext, suite_code) -> SessionState | None:
        if ticket_ext is not None and ticket_ext.data and self.config.ticket_keeper:
            state = self.config.ticket_keeper.unseal(ticket_ext.data)
            if state is not None and state.cipher_suite == suite_code:
                expected_id = hashlib.sha256(ticket_ext.data).digest()[:_SESSION_ID_LEN]
                if hello.session_id == expected_id:
                    return state
        if hello.session_id and self.config.session_cache is not None:
            state = self.config.session_cache.lookup(hello.session_id)
            if state is not None and state.cipher_suite == suite_code:
                return state
        return None

    def _do_abbreviated(self, state: SessionState, hello: ClientHello) -> None:
        self.resumed = True
        self.master_secret = state.master_secret
        self._session_id = hello.session_id
        server_hello = ServerHello(
            random=self.server_random,
            cipher_suite=state.cipher_suite,
            session_id=hello.session_id,  # echo = resumption accepted
        )
        self._send_handshake(server_hello)
        self._install_key_block()
        if self._client_requested_ticket and self.config.ticket_keeper is not None:
            self._issue_ticket()
        self._send_ccs()
        self._send_finished()
        self._state = _State.WAIT_CLIENT_CCS

    def _do_full_flight(self, hello: ClientHello, suite_code: int) -> None:
        self._session_id = self.config.rng.random_bytes(_SESSION_ID_LEN)
        server_hello = ServerHello(
            random=self.server_random,
            cipher_suite=suite_code,
            session_id=self._session_id,
        )
        self._send_handshake(server_hello)
        self._send_handshake(
            Certificate(chain=self.config.credential.encoded_chain())
        )

        if self.suite.key_exchange == KeyExchange.ECDHE_RSA:
            private = X25519PrivateKey(self.config.rng.random_bytes(32))
            params = ServerKeyExchange.encode_ecdhe_params(private.public_bytes)
            self._kex_private = private
        else:
            group = modp_group(self.config.dhe_group_bits)
            private = DHPrivateKey(group, self.config.rng)
            params = ServerKeyExchange.encode_dhe_params(
                group.p, group.g, private.public_value
            )
            self._kex_private = private
        signed = self.client_random + self.server_random + params
        signature = self.config.credential.private_key.sign(signed)
        self._send_handshake(
            ServerKeyExchange(
                algorithm=(
                    KexAlgorithm.ECDHE_X25519
                    if self.suite.key_exchange == KeyExchange.ECDHE_RSA
                    else KexAlgorithm.DHE
                ),
                params=params,
                signature=signature,
            )
        )
        if self._client_requested_attestation and self.config.enclave is not None:
            quote = self.config.enclave.quote(self._transcript_hash())
            self._send_handshake(SGXAttestation(quote=quote))
        self._send_handshake(ServerHelloDone())
        self._state = _State.WAIT_CLIENT_KEX

    def _on_client_kex(self, message: Handshake) -> None:
        if message.msg_type != HandshakeType.CLIENT_KEY_EXCHANGE:
            raise HandshakeError(
                f"expected ClientKeyExchange, got {message.msg_type.name}",
                alert="unexpected_message",
            )
        kex = ClientKeyExchange.decode_body(message.body)
        self._transcript.append(message.encode())
        if self.suite.key_exchange == KeyExchange.ECDHE_RSA:
            pre_master = self._kex_private.exchange(kex.exchange_data)
        else:
            peer_public = int.from_bytes(kex.exchange_data, "big")
            pre_master = self._kex_private.exchange(peer_public)
        self.config.report_secret("pre_master_secret", pre_master)
        self.master_secret = derive_master_secret(
            pre_master, self.client_random, self.server_random
        )
        self._install_key_block()
        self._state = _State.WAIT_CLIENT_CCS

    def _on_client_finished(self, message: Handshake) -> None:
        if message.msg_type != HandshakeType.FINISHED:
            raise HandshakeError(
                f"expected Finished, got {message.msg_type.name}",
                alert="unexpected_message",
            )
        self._verify_finished(message, from_client=True)
        if self.resumed:
            self._finish_server()
            return
        if self._client_requested_ticket and self.config.ticket_keeper is not None:
            self._issue_ticket()
        self._send_ccs()
        self._send_finished()
        self._finish_server()

    def _issue_ticket(self) -> None:
        extra = self.config.ticket_extra() if self.config.ticket_extra else b""
        state = SessionState(
            session_id=self._session_id,
            master_secret=self.master_secret,
            cipher_suite=self.suite.code,
            extra=extra,
        )
        ticket = self.config.ticket_keeper.seal(state)
        self._send_handshake(
            NewSessionTicket(lifetime_seconds=_TICKET_LIFETIME, ticket=ticket)
        )

    def _finish_server(self) -> None:
        self.session_state = SessionState(
            session_id=self._session_id,
            master_secret=self.master_secret,
            cipher_suite=self.suite.code,
        )
        if self.config.session_cache is not None and self._session_id:
            self.config.session_cache.store(self.session_state)
        self._complete()

    def _on_established_handshake(self, message: Handshake) -> None:
        raise HandshakeError(
            "renegotiation is not supported", alert="no_renegotiation"
        )
