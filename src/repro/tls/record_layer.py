"""Record protection: TLS 1.2 AEAD with explicit nonces and sequence numbers.

One :class:`ConnectionState` protects one direction of one hop. The AAD
binds the receiver's sequence number, content type, version, and plaintext
length — so replayed, reordered, or cross-hop-spliced records fail the tag
check. This is the mechanism behind the paper's P2 (data authentication)
and, combined with unique per-hop keys, P4 (path integrity).
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.crypto import pool as aead_pool
from repro.errors import CryptoError, IntegrityError, ProtocolError
from repro.tls.ciphersuites import CipherSuite
from repro.wire.records import ContentType, MAX_FRAGMENT, Record, TLS12_VERSION

__all__ = [
    "ConnectionState",
    "EXPLICIT_NONCE_LENGTH",
    "aead_for",
    "aead_cache_capacity",
    "reset_aead_cache",
]

EXPLICIT_NONCE_LENGTH = 8

_AEAD_CACHE: OrderedDict[tuple[int, bytes], object] = OrderedDict()
# Sized for fleet runs, not single scenarios: a full mbTLS session keeps
# one context per hop direction live (client/server read+write plus two per
# middlebox), so ~6 per session with a middlebox chain and 10^4 concurrent
# sessions needs ~6e4 contexts resident before the LRU starts thrashing.
# Contexts are a few KiB each (key schedule + lazily built GHASH tables),
# so the ceiling is tens of MiB — cheap next to re-deriving schedules in
# the hot path.  Fleet runs watch the ``aead_cache.evictions`` counter to
# see thrash instead of silently re-deriving.
_AEAD_CACHE_MAX = 65_536


def aead_cache_capacity(capacity: int | None = None) -> int:
    """Read (and optionally set) the AEAD-context cache capacity.

    Returns the previous capacity; tests shrink it to force evictions and
    restore the old value afterwards.  Shrinking evicts immediately.
    """
    global _AEAD_CACHE_MAX
    previous = _AEAD_CACHE_MAX
    if capacity is not None:
        if capacity < 1:
            raise ValueError("AEAD cache capacity must be positive")
        _AEAD_CACHE_MAX = capacity
        while len(_AEAD_CACHE) > _AEAD_CACHE_MAX:
            _AEAD_CACHE.popitem(last=False)
            obs.counter("aead_cache.evictions").inc()
        obs.gauge("aead_cache.size").set(len(_AEAD_CACHE))
    return previous


def reset_aead_cache() -> None:
    """Drop every cached context (not counted as evictions).

    Reproducible benchmarks call this up front: eviction counts depend on
    what earlier scenarios left in the process-global cache, so a clean
    start is what makes same-seed runs report identical cache behavior.
    """
    _AEAD_CACHE.clear()
    obs.gauge("aead_cache.size").set(0)


def aead_for(suite: CipherSuite, key: bytes):
    """A shared AEAD context for ``(suite, key)``.

    Expanding an AES key schedule — and, on the fast path, its bitsliced
    round-key masks and GHASH byte tables — is far more expensive than a
    single record seal, yet each hop direction keeps using the same key
    for the life of the session (and again after resumption, and again
    when hop keys are re-derived for a middlebox joining mid-stream).
    The AEAD objects are stateless (the nonce arrives per call), so one
    instance per key can safely serve every ConnectionState that shares
    that key, including clones at new sequence numbers.
    """
    cache_key = (suite.code, key)
    aead = _AEAD_CACHE.get(cache_key)
    if aead is None:
        aead = suite.new_aead(key)
        _AEAD_CACHE[cache_key] = aead
        if len(_AEAD_CACHE) > _AEAD_CACHE_MAX:
            _AEAD_CACHE.popitem(last=False)
            obs.counter("aead_cache.evictions").inc()
    else:
        _AEAD_CACHE.move_to_end(cache_key)
    # Set on hits too: the cache outlives obs planes (it is process-global,
    # planes are per-scenario), so a warm-cache run must still report size.
    obs.gauge("aead_cache.size").set(len(_AEAD_CACHE))
    return aead


class ConnectionState:
    """AEAD state for one direction: suite, key, fixed IV, sequence number."""

    def __init__(
        self, suite: CipherSuite, key: bytes, fixed_iv: bytes, sequence: int = 0
    ) -> None:
        if len(key) != suite.key_length:
            raise ProtocolError("record key has wrong length for suite")
        if len(fixed_iv) != suite.fixed_iv_length:
            raise ProtocolError("record fixed IV has wrong length for suite")
        self.suite = suite
        self.key = key
        self.fixed_iv = fixed_iv
        self.sequence = sequence
        self._aead = aead_for(suite, key)

    def _aad(self, content_type: ContentType, length: int, sequence: int) -> bytes:
        return (
            sequence.to_bytes(8, "big")
            + bytes([int(content_type)])
            + TLS12_VERSION.to_bytes(2, "big")
            + length.to_bytes(2, "big")
        )

    def protect(self, content_type: ContentType, plaintext: bytes) -> Record:
        """Encrypt a plaintext fragment into a record."""
        if len(plaintext) > MAX_FRAGMENT:
            raise ProtocolError("plaintext fragment exceeds maximum size")
        explicit_nonce = self.sequence.to_bytes(EXPLICIT_NONCE_LENGTH, "big")
        nonce = self.fixed_iv + explicit_nonce
        aad = self._aad(content_type, len(plaintext), self.sequence)
        ciphertext = self._aead.encrypt(nonce, plaintext, aad)
        self.sequence += 1
        return Record(content_type=content_type, payload=explicit_nonce + ciphertext)

    def unprotect(self, record: Record) -> bytes:
        """Decrypt a record; raises IntegrityError on any tampering."""
        payload = record.payload
        if len(payload) < EXPLICIT_NONCE_LENGTH + self._aead.tag_length:
            raise IntegrityError("protected record too short")
        # bytes() tolerates memoryview payloads from the zero-copy
        # receive path (bytes + memoryview doesn't concatenate).
        explicit_nonce = bytes(payload[:EXPLICIT_NONCE_LENGTH])
        ciphertext = payload[EXPLICIT_NONCE_LENGTH:]
        nonce = self.fixed_iv + explicit_nonce
        plaintext_length = len(ciphertext) - self._aead.tag_length
        aad = self._aad(record.content_type, plaintext_length, self.sequence)
        plaintext = self._aead.decrypt(nonce, ciphertext, aad)
        self.sequence += 1
        return plaintext

    def _seal_batch(self, batch: list[tuple[bytes, bytes, bytes]]) -> list[bytes]:
        """Seal a prepared batch, via the process pool when configured.

        Each record is a pure function of its tuple, and the pool merges
        results in submission order, so pooled output is byte-identical
        to the serial path; pool-infrastructure failures fall back to
        serial for the batch.
        """
        pool = aead_pool.active()
        if pool is not None and pool.eligible(batch):
            try:
                return pool.seal_many(self.suite, self.key, batch)
            except CryptoError:
                raise
            except Exception:
                pass
        return self._aead.seal_many(batch)

    def _open_batch(self, batch: list[tuple[bytes, bytes, bytes]]) -> list[bytes]:
        """Open a prepared batch, via the process pool when configured.

        IntegrityError (a CryptoError) propagates from workers untouched
        — a tag failure is a verdict, not a pool malfunction — keeping
        unprotect_many's all-or-nothing contract.
        """
        pool = aead_pool.active()
        if pool is not None and pool.eligible(batch):
            try:
                return pool.open_many(self.suite, self.key, batch)
            except CryptoError:
                raise
            except Exception:
                pass
        return self._aead.open_many(batch)

    def protect_many(
        self, items: list[tuple[ContentType, bytes]]
    ) -> list[Record]:
        """Encrypt a flight of fragments in one call.

        Byte-identical to sequential :meth:`protect` calls — sequence
        numbers advance per record exactly as before.
        """
        batch = []
        sequence = self.sequence
        fixed_iv = self.fixed_iv
        for content_type, plaintext in items:
            if len(plaintext) > MAX_FRAGMENT:
                raise ProtocolError("plaintext fragment exceeds maximum size")
            explicit_nonce = sequence.to_bytes(EXPLICIT_NONCE_LENGTH, "big")
            batch.append((
                fixed_iv + explicit_nonce,
                plaintext,
                self._aad(content_type, len(plaintext), sequence),
            ))
            sequence += 1
        sealed = self._seal_batch(batch)
        self.sequence = sequence
        return [
            Record(
                content_type=items[i][0],
                payload=batch[i][0][len(fixed_iv):] + sealed[i],
            )
            for i in range(len(items))
        ]

    def unprotect_many(self, records: list[Record]) -> list[bytes]:
        """Decrypt a flight of records in one call (all-or-nothing).

        On success the result and sequence advancement are byte-identical
        to sequential :meth:`unprotect` calls.  On any failure an
        IntegrityError is raised with *no* sequence number consumed, so
        the caller can re-run per record to recover the valid prefix with
        exact sequential semantics.
        """
        tag_length = self._aead.tag_length
        batch = []
        sequence = self.sequence
        fixed_iv = self.fixed_iv
        for record in records:
            payload = record.payload
            if len(payload) < EXPLICIT_NONCE_LENGTH + tag_length:
                raise IntegrityError("protected record too short")
            ciphertext = payload[EXPLICIT_NONCE_LENGTH:]
            batch.append((
                fixed_iv + bytes(payload[:EXPLICIT_NONCE_LENGTH]),
                ciphertext,
                self._aad(record.content_type,
                          len(ciphertext) - tag_length, sequence),
            ))
            sequence += 1
        plaintexts = self._open_batch(batch)
        self.sequence = sequence
        return plaintexts

    def clone_at(self, sequence: int) -> "ConnectionState":
        """A copy of this state starting at a given sequence number.

        Used when hop keys are handed to a middlebox mid-stream: the
        MBTLSKeyMaterial message carries the sequence numbers to resume from.
        """
        return ConnectionState(self.suite, self.key, self.fixed_iv, sequence)
