"""Record protection: TLS 1.2 AEAD with explicit nonces and sequence numbers.

One :class:`ConnectionState` protects one direction of one hop. The AAD
binds the receiver's sequence number, content type, version, and plaintext
length — so replayed, reordered, or cross-hop-spliced records fail the tag
check. This is the mechanism behind the paper's P2 (data authentication)
and, combined with unique per-hop keys, P4 (path integrity).
"""

from __future__ import annotations

from repro.errors import IntegrityError, ProtocolError
from repro.tls.ciphersuites import CipherSuite
from repro.wire.records import ContentType, MAX_FRAGMENT, Record, TLS12_VERSION

__all__ = ["ConnectionState", "EXPLICIT_NONCE_LENGTH"]

EXPLICIT_NONCE_LENGTH = 8


class ConnectionState:
    """AEAD state for one direction: suite, key, fixed IV, sequence number."""

    def __init__(
        self, suite: CipherSuite, key: bytes, fixed_iv: bytes, sequence: int = 0
    ) -> None:
        if len(key) != suite.key_length:
            raise ProtocolError("record key has wrong length for suite")
        if len(fixed_iv) != suite.fixed_iv_length:
            raise ProtocolError("record fixed IV has wrong length for suite")
        self.suite = suite
        self.key = key
        self.fixed_iv = fixed_iv
        self.sequence = sequence
        self._aead = suite.new_aead(key)

    def _aad(self, content_type: ContentType, length: int, sequence: int) -> bytes:
        return (
            sequence.to_bytes(8, "big")
            + bytes([int(content_type)])
            + TLS12_VERSION.to_bytes(2, "big")
            + length.to_bytes(2, "big")
        )

    def protect(self, content_type: ContentType, plaintext: bytes) -> Record:
        """Encrypt a plaintext fragment into a record."""
        if len(plaintext) > MAX_FRAGMENT:
            raise ProtocolError("plaintext fragment exceeds maximum size")
        explicit_nonce = self.sequence.to_bytes(EXPLICIT_NONCE_LENGTH, "big")
        nonce = self.fixed_iv + explicit_nonce
        aad = self._aad(content_type, len(plaintext), self.sequence)
        ciphertext = self._aead.encrypt(nonce, plaintext, aad)
        self.sequence += 1
        return Record(content_type=content_type, payload=explicit_nonce + ciphertext)

    def unprotect(self, record: Record) -> bytes:
        """Decrypt a record; raises IntegrityError on any tampering."""
        payload = record.payload
        if len(payload) < EXPLICIT_NONCE_LENGTH + self._aead.tag_length:
            raise IntegrityError("protected record too short")
        explicit_nonce = payload[:EXPLICIT_NONCE_LENGTH]
        ciphertext = payload[EXPLICIT_NONCE_LENGTH:]
        nonce = self.fixed_iv + explicit_nonce
        plaintext_length = len(ciphertext) - self._aead.tag_length
        aad = self._aad(record.content_type, plaintext_length, self.sequence)
        plaintext = self._aead.decrypt(nonce, ciphertext, aad)
        self.sequence += 1
        return plaintext

    def clone_at(self, sequence: int) -> "ConnectionState":
        """A copy of this state starting at a given sequence number.

        Used when hop keys are handed to a middlebox mid-stream: the
        MBTLSKeyMaterial message carries the sequence numbers to resume from.
        """
        return ConnectionState(self.suite, self.key, self.fixed_iv, sequence)
