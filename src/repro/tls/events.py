"""Events emitted by the sans-IO protocol engines.

Drivers call ``engine.receive_bytes(...)`` and react to the returned events;
this is the only channel through which engines report what happened.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire.alerts import Alert
from repro.wire.records import ContentType

__all__ = [
    "Event",
    "HandshakeComplete",
    "ApplicationData",
    "AlertReceived",
    "ConnectionClosed",
    "TicketIssued",
    "RawRecordReceived",
    "MiddleboxJoined",
    "MiddleboxKeysInstalled",
    "AnnouncementReceived",
]


class Event:
    """Base class for engine events."""


@dataclass(frozen=True)
class HandshakeComplete(Event):
    """The handshake finished and application data may flow.

    Attributes:
        cipher_suite: negotiated suite code.
        resumed: whether this was an abbreviated (resumption) handshake.
        peer_certificate: the validated peer leaf certificate, if any.
        attested_measurement: the peer's verified enclave measurement, if
            attestation was performed.
    """

    cipher_suite: int
    resumed: bool = False
    peer_certificate: object | None = None
    attested_measurement: bytes | None = None


@dataclass(frozen=True)
class ApplicationData(Event):
    """Decrypted application bytes."""

    data: bytes


@dataclass(frozen=True)
class AlertReceived(Event):
    """The peer sent an alert."""

    alert: Alert


@dataclass(frozen=True)
class ConnectionClosed(Event):
    """The session ended (close_notify or fatal alert).

    Attributes:
        error: human-readable cause; ``None`` for a clean close.
        alert: alert description name when a fatal alert caused the close.
        origin: name of the hop that originated the fatal alert, when known.
    """

    error: str | None = None
    alert: str = ""
    origin: str = ""


@dataclass(frozen=True)
class TicketIssued(Event):
    """The server issued a session ticket (client-side event)."""

    ticket: bytes
    lifetime_seconds: int


@dataclass(frozen=True)
class RawRecordReceived(Event):
    """A protected record of a non-core content type arrived post-handshake.

    The mbTLS layer uses this for MBTLSKeyMaterial (ContentType 31) records
    riding inside established secondary sessions.
    """

    content_type: ContentType
    payload: bytes


@dataclass(frozen=True)
class MiddleboxJoined(Event):
    """(mbTLS) a middlebox completed its secondary handshake with us."""

    subchannel_id: int
    name: str
    certificate: object | None = None
    measurement: bytes | None = None


@dataclass(frozen=True)
class MiddleboxKeysInstalled(Event):
    """(mbTLS middlebox) key material arrived; the data plane is live."""

    toward_client_suite: int
    toward_server_suite: int


@dataclass(frozen=True)
class AnnouncementReceived(Event):
    """(mbTLS server) a server-side middlebox announced itself."""

    subchannel_id: int
