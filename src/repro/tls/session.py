"""Session resumption state: server-side caches, tickets, client sessions.

Both RFC 5246 session-ID resumption and RFC 5077 ticket resumption are
supported. For mbTLS, tickets additionally carry the primary session's keys
for middleboxes (§3.5, "Session Resumption") — see
:mod:`repro.core.resumption`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.gcm import AESGCM
from repro.errors import DecodeError, IntegrityError
from repro.wire.codec import Reader, Writer

__all__ = ["SessionState", "ClientSessionStore", "ServerSessionCache", "TicketKeeper"]


@dataclass(frozen=True)
class SessionState:
    """What both sides must remember to resume a session."""

    session_id: bytes
    master_secret: bytes
    cipher_suite: int
    server_name: str = ""
    extra: bytes = b""  # protocol-specific payload (mbTLS stores hop keys here)

    def encode(self) -> bytes:
        return (
            Writer()
            .write_vector(self.session_id, 1)
            .write_vector(self.master_secret, 1)
            .write_u16(self.cipher_suite)
            .write_vector(self.server_name.encode(), 2)
            .write_vector(self.extra, 3)
            .getvalue()
        )

    @classmethod
    def decode(cls, data: bytes) -> "SessionState":
        reader = Reader(data)
        session_id = reader.read_vector(1)
        master_secret = reader.read_vector(1)
        cipher_suite = reader.read_u16()
        server_name = reader.read_vector(2).decode()
        extra = reader.read_vector(3)
        reader.expect_end()
        return cls(
            session_id=session_id,
            master_secret=master_secret,
            cipher_suite=cipher_suite,
            server_name=server_name,
            extra=extra,
        )


class ClientSessionStore:
    """Client-side session memory, keyed by server name."""

    def __init__(self, capacity: int = 256) -> None:
        self._capacity = capacity
        self._sessions: OrderedDict[str, SessionState] = OrderedDict()
        self._tickets: OrderedDict[str, bytes] = OrderedDict()

    def remember(self, server_name: str, session: SessionState) -> None:
        self._sessions[server_name] = session
        self._sessions.move_to_end(server_name)
        while len(self._sessions) > self._capacity:
            self._sessions.popitem(last=False)

    def remember_ticket(self, server_name: str, ticket: bytes) -> None:
        self._tickets[server_name] = ticket
        self._tickets.move_to_end(server_name)
        while len(self._tickets) > self._capacity:
            self._tickets.popitem(last=False)

    def lookup(self, server_name: str) -> SessionState | None:
        return self._sessions.get(server_name)

    def lookup_ticket(self, server_name: str) -> bytes | None:
        return self._tickets.get(server_name)

    def forget(self, server_name: str) -> None:
        self._sessions.pop(server_name, None)
        self._tickets.pop(server_name, None)


class ServerSessionCache:
    """Server-side session-ID cache with LRU eviction."""

    def __init__(self, capacity: int = 4096) -> None:
        self._capacity = capacity
        self._sessions: OrderedDict[bytes, SessionState] = OrderedDict()

    def store(self, session: SessionState) -> None:
        self._sessions[session.session_id] = session
        self._sessions.move_to_end(session.session_id)
        while len(self._sessions) > self._capacity:
            self._sessions.popitem(last=False)

    def lookup(self, session_id: bytes) -> SessionState | None:
        return self._sessions.get(session_id)

    def __len__(self) -> int:
        return len(self._sessions)


class TicketKeeper:
    """Seals/unseals session tickets under a server-held AEAD key.

    The ticket is opaque to the client: AES-GCM over the session state with
    a random nonce. Only a holder of the ticket key (the issuing server, or
    for mbTLS middlebox tickets, code inside the enclave) can open it —
    which is why the paper notes "a new attestation is not required, because
    only the enclave knows the key needed to decrypt the session ticket".
    """

    def __init__(self, key: bytes, rng) -> None:
        if len(key) not in (16, 32):
            raise ValueError("ticket key must be 16 or 32 bytes")
        self._aead = AESGCM(key)
        self._rng = rng

    def seal(self, session: SessionState) -> bytes:
        nonce = self._rng.random_bytes(12)
        return nonce + self._aead.encrypt(nonce, session.encode(), b"ticket")

    def unseal(self, ticket: bytes) -> SessionState | None:
        """Open a ticket; returns None (not an error) if invalid."""
        if len(ticket) < 12 + 16:
            return None
        nonce, sealed = ticket[:12], ticket[12:]
        try:
            return SessionState.decode(self._aead.decrypt(nonce, sealed, b"ticket"))
        except (IntegrityError, DecodeError):
            return None
