"""TLS 1.2 key schedule (RFC 5246 §8): master secret and key block."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import prf
from repro.tls.ciphersuites import CipherSuite

__all__ = ["KeyBlock", "derive_master_secret", "derive_key_block", "finished_verify_data"]

MASTER_SECRET_LENGTH = 48
VERIFY_DATA_LENGTH = 12


@dataclass(frozen=True)
class KeyBlock:
    """Directional record-protection keys derived from the master secret."""

    client_write_key: bytes
    server_write_key: bytes
    client_write_iv: bytes
    server_write_iv: bytes


def derive_master_secret(
    pre_master_secret: bytes, client_random: bytes, server_random: bytes
) -> bytes:
    """master_secret = PRF(pms, "master secret", client_random + server_random)."""
    return prf(
        pre_master_secret,
        b"master secret",
        client_random + server_random,
        MASTER_SECRET_LENGTH,
    )


def derive_key_block(
    master_secret: bytes,
    client_random: bytes,
    server_random: bytes,
    suite: CipherSuite,
) -> KeyBlock:
    """key_block = PRF(master, "key expansion", server_random + client_random).

    For AEAD suites the block is two write keys followed by two fixed IVs
    (the 4-byte implicit nonce salts).
    """
    total = 2 * suite.key_length + 2 * suite.fixed_iv_length
    block = prf(master_secret, b"key expansion", server_random + client_random, total)
    offset = 0
    client_write_key = block[offset : offset + suite.key_length]
    offset += suite.key_length
    server_write_key = block[offset : offset + suite.key_length]
    offset += suite.key_length
    client_write_iv = block[offset : offset + suite.fixed_iv_length]
    offset += suite.fixed_iv_length
    server_write_iv = block[offset : offset + suite.fixed_iv_length]
    return KeyBlock(
        client_write_key=client_write_key,
        server_write_key=server_write_key,
        client_write_iv=client_write_iv,
        server_write_iv=server_write_iv,
    )


def finished_verify_data(
    master_secret: bytes, transcript_hash: bytes, is_client: bool
) -> bytes:
    """verify_data = PRF(master, "client/server finished", Hash(transcript))."""
    label = b"client finished" if is_client else b"server finished"
    return prf(master_secret, label, transcript_hash, VERIFY_DATA_LENGTH)
