"""From-scratch, sans-IO TLS 1.2 engine (the substrate mbTLS extends)."""

from repro.tls.ciphersuites import (
    CIPHER_SUITES,
    DEFAULT_SUITES,
    CipherSuite,
    KeyExchange,
    suite_by_code,
)
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSEngine, TLSServerEngine
from repro.tls.events import (
    AlertReceived,
    AnnouncementReceived,
    ApplicationData,
    ConnectionClosed,
    Event,
    HandshakeComplete,
    MiddleboxJoined,
    MiddleboxKeysInstalled,
    RawRecordReceived,
    TicketIssued,
)
from repro.tls.keyschedule import (
    KeyBlock,
    derive_key_block,
    derive_master_secret,
    finished_verify_data,
)
from repro.tls.record_layer import ConnectionState
from repro.tls.session import (
    ClientSessionStore,
    ServerSessionCache,
    SessionState,
    TicketKeeper,
)

__all__ = [
    "CIPHER_SUITES",
    "DEFAULT_SUITES",
    "CipherSuite",
    "KeyExchange",
    "suite_by_code",
    "TLSConfig",
    "TLSClientEngine",
    "TLSEngine",
    "TLSServerEngine",
    "AlertReceived",
    "AnnouncementReceived",
    "ApplicationData",
    "ConnectionClosed",
    "Event",
    "HandshakeComplete",
    "MiddleboxJoined",
    "MiddleboxKeysInstalled",
    "RawRecordReceived",
    "TicketIssued",
    "KeyBlock",
    "derive_key_block",
    "derive_master_secret",
    "finished_verify_data",
    "ConnectionState",
    "ClientSessionStore",
    "ServerSessionCache",
    "SessionState",
    "TicketKeeper",
]
