"""Trust stores and certificate-chain validation.

Validation walks the presented chain leaf-first, checking signatures,
validity windows, CA flags, and finally anchoring in a trusted root. The
"custom root certificate" deployment trick behind split TLS is literally
``store.add_root(interceptor_ca.certificate)``.
"""

from __future__ import annotations

from repro.errors import CertificateError
from repro.pki.certificate import Certificate

__all__ = ["TrustStore"]


class TrustStore:
    """A set of trusted root certificates plus the validation algorithm."""

    def __init__(self, roots: list[Certificate] | None = None) -> None:
        self._roots: dict[str, Certificate] = {}
        for root in roots or []:
            self.add_root(root)

    def add_root(self, root: Certificate) -> None:
        """Trust ``root`` as an anchor (the split-TLS provisioning step)."""
        self._roots[root.subject] = root

    def remove_root(self, subject: str) -> None:
        self._roots.pop(subject, None)

    @property
    def roots(self) -> tuple[Certificate, ...]:
        return tuple(self._roots.values())

    def validate_chain(
        self,
        chain: tuple[Certificate, ...] | list[Certificate],
        hostname: str | None,
        now: float,
    ) -> Certificate:
        """Validate a leaf-first chain; returns the verified leaf.

        Raises:
            CertificateError: on any failure, with an alert name matching
                the TLS alert a real stack would send (``certificate_expired``,
                ``unknown_ca``, ``bad_certificate``).
        """
        if not chain:
            raise CertificateError("empty certificate chain")
        leaf = chain[0]
        if hostname is not None and not leaf.matches_hostname(hostname):
            raise CertificateError(
                f"certificate subject {leaf.subject!r} does not match "
                f"hostname {hostname!r}"
            )
        for index, cert in enumerate(chain):
            if not cert.valid_at(now):
                raise CertificateError(
                    f"certificate {cert.subject!r} outside validity window",
                    alert="certificate_expired",
                )
            if index > 0 and not cert.is_ca:
                raise CertificateError(
                    f"non-CA certificate {cert.subject!r} used as issuer"
                )
            issuer = self._find_issuer(cert, chain[index + 1 :])
            if issuer is None:
                raise CertificateError(
                    f"no trusted issuer for {cert.subject!r}", alert="unknown_ca"
                )
            if not issuer.public_key.verify(cert.tbs_bytes(), cert.signature):
                raise CertificateError(
                    f"bad signature on certificate {cert.subject!r}"
                )
            if issuer.subject in self._roots:
                anchor = self._roots[issuer.subject]
                if anchor.public_key == issuer.public_key:
                    return leaf
        raise CertificateError("certificate chain does not reach a trusted root",
                               alert="unknown_ca")

    def _find_issuer(
        self, cert: Certificate, rest: tuple[Certificate, ...] | list[Certificate]
    ) -> Certificate | None:
        if cert.issuer in self._roots:
            return self._roots[cert.issuer]
        for candidate in rest:
            if candidate.subject == cert.issuer and candidate.is_ca:
                return candidate
        if cert.is_self_signed:
            # Self-signed leaf not in the store: signature is checkable but
            # it will not anchor; report unknown CA.
            return None
        return None
