"""PKI substrate: simplified certificates, authorities, and trust stores."""

from repro.pki.authority import DEFAULT_KEY_BITS, CertificateAuthority, Credential
from repro.pki.certificate import Certificate
from repro.pki.store import TrustStore

__all__ = [
    "DEFAULT_KEY_BITS",
    "CertificateAuthority",
    "Credential",
    "Certificate",
    "TrustStore",
]
