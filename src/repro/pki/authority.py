"""Certificate authorities: issuance, chains, and credentials.

A :class:`CertificateAuthority` signs leaf or intermediate certificates;
:class:`Credential` bundles a private key with its certificate chain —
what a TLS server (or an mbTLS middlebox) presents in its handshake.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rsa import RSAPrivateKey, generate_rsa_key
from repro.pki.certificate import Certificate

__all__ = ["CertificateAuthority", "Credential", "DEFAULT_KEY_BITS"]

# 1024-bit keys keep pure-Python handshakes quick while exercising the real
# sign/verify code paths; the size is a parameter everywhere it matters.
DEFAULT_KEY_BITS = 1024

_FAR_FUTURE = 10 * 365 * 24 * 3600.0


@dataclass
class Credential:
    """A private key plus the certificate chain proving its ownership."""

    private_key: RSAPrivateKey
    chain: tuple[Certificate, ...]

    @property
    def certificate(self) -> Certificate:
        """The leaf certificate."""
        return self.chain[0]

    def encoded_chain(self) -> tuple[bytes, ...]:
        return tuple(cert.encode() for cert in self.chain)


class CertificateAuthority:
    """A certificate authority that can issue leaves and intermediates.

    Args:
        name: the CA's subject name.
        rng: randomness source for key generation.
        key_bits: RSA modulus size for the CA key.
        parent: if given, this CA is an intermediate signed by ``parent``;
            otherwise it is a self-signed root.
    """

    def __init__(
        self,
        name: str,
        rng,
        key_bits: int = DEFAULT_KEY_BITS,
        parent: "CertificateAuthority | None" = None,
        now: float = 0.0,
    ) -> None:
        self.name = name
        self._rng = rng
        self._key = generate_rsa_key(key_bits, rng)
        self._serial = 0
        self._parent = parent
        if parent is None:
            self.certificate = self._self_sign(now)
            self._chain_suffix: tuple[Certificate, ...] = (self.certificate,)
        else:
            self.certificate = parent.issue(
                name, self._key.public_key, is_ca=True, now=now
            )
            self._chain_suffix = (self.certificate,) + parent._chain_suffix

    def _self_sign(self, now: float) -> Certificate:
        unsigned = Certificate(
            subject=self.name,
            issuer=self.name,
            public_key=self._key.public_key,
            serial=0,
            not_before=now,
            not_after=now + _FAR_FUTURE,
            is_ca=True,
            signature=b"",
        )
        return self._attach_signature(unsigned)

    def _attach_signature(self, unsigned: Certificate) -> Certificate:
        signature = self._key.sign(unsigned.tbs_bytes())
        return Certificate(
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            public_key=unsigned.public_key,
            serial=unsigned.serial,
            not_before=unsigned.not_before,
            not_after=unsigned.not_after,
            is_ca=unsigned.is_ca,
            signature=signature,
        )

    def issue(
        self,
        subject: str,
        public_key,
        is_ca: bool = False,
        now: float = 0.0,
        lifetime: float = 365 * 24 * 3600.0,
        not_before: float | None = None,
    ) -> Certificate:
        """Issue a certificate for ``subject`` over ``public_key``."""
        self._serial += 1
        start = now if not_before is None else not_before
        unsigned = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            serial=self._serial,
            not_before=start,
            not_after=start + lifetime,
            is_ca=is_ca,
            signature=b"",
        )
        return self._attach_signature(unsigned)

    def issue_credential(
        self,
        subject: str,
        rng=None,
        key_bits: int = DEFAULT_KEY_BITS,
        now: float = 0.0,
        lifetime: float = 365 * 24 * 3600.0,
        not_before: float | None = None,
    ) -> Credential:
        """Generate a key pair and issue a full credential for ``subject``."""
        key_rng = rng if rng is not None else self._rng
        private_key = generate_rsa_key(key_bits, key_rng)
        leaf = self.issue(
            subject,
            private_key.public_key,
            now=now,
            lifetime=lifetime,
            not_before=not_before,
        )
        return Credential(private_key=private_key, chain=(leaf,) + self._chain_suffix)
