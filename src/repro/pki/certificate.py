"""Simplified certificates: X.509 semantics without the ASN.1 encoding.

A certificate binds a subject name to an RSA public key, carries a validity
window and CA flag, and is signed by its issuer over the TBS ("to be
signed") serialization. This keeps chain building, expiry, hostname
matching, and signature validation — everything the paper's protocol logic
touches — while dropping the encoding bureaucracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rsa import RSAPublicKey
from repro.errors import DecodeError
from repro.wire.codec import Reader, Writer

__all__ = ["Certificate"]


@dataclass(frozen=True)
class Certificate:
    """A signed certificate.

    Attributes:
        subject: the entity's name; for servers, the hostname clients match.
        issuer: the signing CA's subject name (== subject if self-signed).
        public_key: the subject's RSA public key.
        serial: issuer-unique serial number.
        not_before / not_after: validity window in simulated epoch seconds.
        is_ca: whether this certificate may sign other certificates.
        signature: issuer's signature over :meth:`tbs_bytes`.
    """

    subject: str
    issuer: str
    public_key: RSAPublicKey
    serial: int
    not_before: float
    not_after: float
    is_ca: bool
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The byte string the issuer signs."""
        writer = Writer()
        writer.write_vector(self.subject.encode(), 2)
        writer.write_vector(self.issuer.encode(), 2)
        writer.write_vector(self.public_key.to_bytes(), 2)
        writer.write_u64(self.serial)
        writer.write_u64(int(self.not_before * 1000))
        writer.write_u64(int(self.not_after * 1000))
        writer.write_u8(1 if self.is_ca else 0)
        return writer.getvalue()

    def encode(self) -> bytes:
        """Full wire encoding: TBS bytes plus the signature."""
        return (
            Writer()
            .write_vector(self.tbs_bytes(), 2)
            .write_vector(self.signature, 2)
            .getvalue()
        )

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        outer = Reader(data)
        tbs = outer.read_vector(2)
        signature = outer.read_vector(2)
        outer.expect_end()
        reader = Reader(tbs)
        subject = reader.read_vector(2).decode()
        issuer = reader.read_vector(2).decode()
        public_key = RSAPublicKey.from_bytes(reader.read_vector(2))
        serial = reader.read_u64()
        not_before = reader.read_u64() / 1000
        not_after = reader.read_u64() / 1000
        is_ca = reader.read_u8() == 1
        reader.expect_end()
        if not_after < not_before:
            raise DecodeError("certificate validity window is inverted")
        return cls(
            subject=subject,
            issuer=issuer,
            public_key=public_key,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            signature=signature,
        )

    @property
    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def matches_hostname(self, hostname: str) -> bool:
        """Exact match, or wildcard match for a single left-most label."""
        if self.subject == hostname:
            return True
        if self.subject.startswith("*."):
            suffix = self.subject[1:]  # ".example.com"
            if hostname.endswith(suffix):
                prefix = hostname[: -len(suffix)]
                return bool(prefix) and "." not in prefix
        return False

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after
