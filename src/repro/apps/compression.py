"""Compression-proxy middleboxes (the Flywheel-style use case from §1).

Deployed as a *pair* of cooperating middleboxes: a compressor near the
server shrinks server-to-client traffic, and a decompressor near the client
restores it — exactly the kind of arbitrary-computation middlebox that
BlindBox's searchable encryption cannot support (§2.2) and mbTLS can.

Chunks are framed (length-prefixed) so the peer can decompress a stream
that TCP re-segmented arbitrarily.
"""

from __future__ import annotations

import zlib

from repro.apps.base import AppApi, MiddleboxApp

__all__ = ["Compressor", "Decompressor"]

_HEADER = 4


class Compressor(MiddleboxApp):
    """Compresses one direction of the stream into framed zlib chunks."""

    def __init__(self, direction: str = "s2c", level: int = 6) -> None:
        self.direction = direction
        self.level = level
        self.bytes_in = 0
        self.bytes_out = 0

    def on_data(self, direction: str, data: bytes, api: AppApi) -> bytes | None:
        if direction != self.direction:
            return data
        compressed = zlib.compress(data, self.level)
        self.bytes_in += len(data)
        self.bytes_out += len(compressed) + _HEADER
        return len(compressed).to_bytes(_HEADER, "big") + compressed

    @property
    def ratio(self) -> float:
        return self.bytes_out / self.bytes_in if self.bytes_in else 1.0


class Decompressor(MiddleboxApp):
    """Reverses :class:`Compressor` framing on the same direction."""

    def __init__(self, direction: str = "s2c") -> None:
        self.direction = direction
        self._buffer = bytearray()

    def on_data(self, direction: str, data: bytes, api: AppApi) -> bytes | None:
        if direction != self.direction:
            return data
        self._buffer += data
        out = bytearray()
        while len(self._buffer) >= _HEADER:
            length = int.from_bytes(self._buffer[:_HEADER], "big")
            if len(self._buffer) < _HEADER + length:
                break
            chunk = bytes(self._buffer[_HEADER : _HEADER + length])
            del self._buffer[: _HEADER + length]
            out += zlib.decompress(chunk)
        return bytes(out) if out else None
