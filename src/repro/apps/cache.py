"""A caching middlebox (web cache) — and the state-poisoning caveat of §4.2.

On a cache hit the middlebox answers the client from local state and
consumes the request; on a miss it forwards the request and remembers the
response. Because an mbTLS *client* knows every hop key on its side of the
session, a malicious client can inject a forged response on the
cache-to-server hop and poison entries served to other clients — the paper
documents this as an inherent limitation for client-side shared-state
middleboxes, and ``tests/test_security_properties.py`` reproduces it.
"""

from __future__ import annotations

from repro.apps.base import AppApi, MiddleboxApp
from repro.apps.http import HttpParser, HttpResponse

__all__ = ["CacheApp", "SharedCacheStore"]


class SharedCacheStore:
    """Cache state shared across connections (and therefore across clients)."""

    def __init__(self) -> None:
        self.entries: dict[str, HttpResponse] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> HttpResponse | None:
        response = self.entries.get(key)
        if response is not None:
            self.hits += 1
        return response

    def put(self, key: str, response: HttpResponse) -> None:
        self.entries[key] = response


class CacheApp(MiddleboxApp):
    """Per-connection cache logic over a shared store."""

    def __init__(self, store: SharedCacheStore) -> None:
        self.store = store
        self._request_parser = HttpParser(parse_requests=True)
        self._response_parser = HttpParser(parse_requests=False)
        self._awaiting: list[str] = []  # cache keys of forwarded requests

    @staticmethod
    def _key(request) -> str:
        return f"{request.header('host') or ''}{request.path}"

    def on_data(self, direction: str, data: bytes, api: AppApi) -> bytes | None:
        if direction == "c2s":
            out = bytearray()
            for request in self._request_parser.feed(data):
                key = self._key(request)
                cached = self.store.get(key)
                if cached is not None and request.method == "GET":
                    served = HttpResponse(
                        status=cached.status,
                        reason=cached.reason,
                        headers=list(cached.headers) + [("X-Cache", "HIT")],
                        body=cached.body,
                    )
                    api.send_to_client(served.encode())
                else:
                    self.store.misses += 1
                    self._awaiting.append(key)
                    out += request.encode()
            return bytes(out) if out else None
        # Server-to-client: fill the cache as responses stream past.
        out = bytearray()
        for response in self._response_parser.feed(data):
            if self._awaiting:
                key = self._awaiting.pop(0)
                if response.status == 200:
                    self.store.put(key, response)
            out += response.encode()
        return bytes(out) if out else None
