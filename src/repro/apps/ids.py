"""A pattern-matching intrusion detection middlebox.

The IDS scans both directions of the plaintext stream for signatures
(matching across chunk boundaries), and either logs matches or blocks the
offending chunk. This is the middlebox class BlindBox targets with
searchable encryption; under mbTLS the IDS simply sees plaintext inside its
enclave.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppApi, MiddleboxApp

__all__ = ["Signature", "IntrusionDetector"]


@dataclass(frozen=True)
class Signature:
    """One detection rule."""

    name: str
    pattern: bytes
    block: bool = False  # True: drop the chunk; False: log only


@dataclass
class Alert:
    signature: str
    direction: str
    offset_hint: int


class IntrusionDetector(MiddleboxApp):
    """Signature matcher with cross-chunk carryover."""

    def __init__(self, signatures: list[Signature]) -> None:
        self.signatures = list(signatures)
        self.alerts: list[Alert] = []
        self.blocked_chunks = 0
        self._carry = {"c2s": b"", "s2c": b""}
        self._max_pattern = max((len(s.pattern) for s in signatures), default=1)

    def on_data(self, direction: str, data: bytes, api: AppApi) -> bytes | None:
        window = self._carry[direction] + data
        blocked = False
        for signature in self.signatures:
            index = window.find(signature.pattern)
            if index >= 0:
                self.alerts.append(
                    Alert(signature=signature.name, direction=direction,
                          offset_hint=index)
                )
                if signature.block:
                    blocked = True
        self._carry[direction] = window[-(self._max_pattern - 1):] if self._max_pattern > 1 else b""
        if blocked:
            self.blocked_chunks += 1
            return None
        return data
