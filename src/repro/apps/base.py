"""Middlebox application interface.

A middlebox application processes the plaintext stream a joined mbTLS
middlebox exposes. Two shapes are supported by
:class:`~repro.core.middlebox.MbTLSMiddlebox`:

* a plain callable ``process(direction, data) -> data`` for pure
  transformations (header rewriting, compression, ...);
* a :class:`MiddleboxApp` subclass for applications that need to drop
  traffic or originate their own (caches answering from local state,
  IDSes killing flows).
"""

from __future__ import annotations

__all__ = ["MiddleboxApp", "AppApi"]


class AppApi:
    """What an application may do besides transforming the current chunk.

    Handed to :meth:`MiddleboxApp.on_data`; backed by the middlebox's
    per-hop record states, so injected data is properly encrypted for the
    adjacent hop.
    """

    def __init__(self, send_to_client, send_to_server) -> None:
        self.send_to_client = send_to_client
        self.send_to_server = send_to_server


class MiddleboxApp:
    """Base class for stateful middlebox applications."""

    def on_data(self, direction: str, data: bytes, api: AppApi) -> bytes | None:
        """Handle one plaintext chunk.

        Args:
            direction: ``"c2s"`` or ``"s2c"``.
            data: the decrypted application bytes.
            api: side-channel for originating or redirecting traffic.

        Returns:
            Bytes to forward onward (possibly transformed), or ``None`` to
            consume the chunk (forward nothing).
        """
        return data

    def __call__(self, direction: str, data: bytes) -> bytes:
        """Allow use where a plain process callable is expected."""
        result = self.on_data(direction, data, AppApi(lambda _: None, lambda _: None))
        return result if result is not None else b""
