"""The paper's prototype middlebox application: an HTTP header-inserting
proxy (§5, "Prototype Implementation").

Buffers the client-to-server stream, parses each HTTP request, inserts
proxy headers (``Via`` and ``X-Forwarded-For``-style), and forwards the
re-serialized request. Responses pass through untouched.
"""

from __future__ import annotations

from repro.apps.base import AppApi, MiddleboxApp
from repro.apps.http import HttpParser

__all__ = ["HeaderInsertingProxy"]


class HeaderInsertingProxy(MiddleboxApp):
    """Inserts headers into HTTP requests passing through the middlebox."""

    def __init__(
        self,
        via: str = "1.1 mbtls-proxy",
        extra_headers: list[tuple[str, str]] | None = None,
    ) -> None:
        self._via = via
        self._extra = extra_headers or []
        self._parser = HttpParser(parse_requests=True)
        self.requests_seen = 0

    def on_data(self, direction: str, data: bytes, api: AppApi) -> bytes | None:
        if direction != "c2s":
            return data
        out = bytearray()
        for request in self._parser.feed(data):
            self.requests_seen += 1
            request.set_header("Via", self._via)
            for name, value in self._extra:
                request.set_header(name, value)
            out += request.encode()
        # Forward only complete, rewritten requests; partial requests stay
        # buffered until their remainder arrives.
        return bytes(out) if out else None
