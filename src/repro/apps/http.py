"""Minimal HTTP/1.1: messages, incremental parsing, and server/client helpers.

The paper's prototype middlebox is "a simple HTTP proxy that performs HTTP
header insertion"; the examples and benchmarks drive HTTP over TLS/mbTLS,
so a small but real HTTP substrate is required. Supported: request/response
framing with Content-Length bodies, header manipulation, and incremental
parsing over a byte stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodeError

__all__ = ["HttpRequest", "HttpResponse", "HttpParser", "HttpServerApp", "HttpClient"]

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"


def _render_headers(headers: list[tuple[str, str]]) -> bytes:
    return b"".join(
        f"{name}: {value}\r\n".encode() for name, value in headers
    )


def _parse_headers(block: bytes) -> list[tuple[str, str]]:
    headers = []
    for line in block.split(_CRLF):
        if not line:
            continue
        name, _, value = line.partition(b":")
        if not _:
            raise DecodeError(f"malformed header line: {line!r}")
        headers.append((name.decode().strip(), value.decode().strip()))
    return headers


@dataclass
class HttpRequest:
    """An HTTP/1.1 request."""

    method: str
    path: str
    headers: list[tuple[str, str]] = field(default_factory=list)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str) -> str | None:
        for header_name, value in self.headers:
            if header_name.lower() == name.lower():
                return value
        return None

    def set_header(self, name: str, value: str) -> None:
        self.headers = [
            (header_name, header_value)
            for header_name, header_value in self.headers
            if header_name.lower() != name.lower()
        ]
        self.headers.append((name, value))

    def encode(self) -> bytes:
        headers = list(self.headers)
        if self.body and self.header("content-length") is None:
            headers.append(("Content-Length", str(len(self.body))))
        return (
            f"{self.method} {self.path} {self.version}\r\n".encode()
            + _render_headers(headers)
            + _CRLF
            + self.body
        )


@dataclass
class HttpResponse:
    """An HTTP/1.1 response."""

    status: int
    reason: str = "OK"
    headers: list[tuple[str, str]] = field(default_factory=list)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str) -> str | None:
        for header_name, value in self.headers:
            if header_name.lower() == name.lower():
                return value
        return None

    def set_header(self, name: str, value: str) -> None:
        self.headers = [
            (header_name, header_value)
            for header_name, header_value in self.headers
            if header_name.lower() != name.lower()
        ]
        self.headers.append((name, value))

    def encode(self) -> bytes:
        headers = list(self.headers)
        if self.header("content-length") is None:
            headers.append(("Content-Length", str(len(self.body))))
        return (
            f"{self.version} {self.status} {self.reason}\r\n".encode()
            + _render_headers(headers)
            + _CRLF
            + self.body
        )


class HttpParser:
    """Incremental parser for a stream of HTTP messages (one direction)."""

    def __init__(self, parse_requests: bool) -> None:
        self._requests = parse_requests
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        """Feed bytes; returns complete messages parsed so far."""
        self._buffer += data
        messages = []
        while True:
            end = self._buffer.find(_HEADER_END)
            if end < 0:
                break
            head = bytes(self._buffer[:end])
            lines = head.split(_CRLF, 1)
            start_line = lines[0]
            headers = _parse_headers(lines[1]) if len(lines) > 1 else []
            length = 0
            for name, value in headers:
                if name.lower() == "content-length":
                    length = int(value)
            total = end + len(_HEADER_END) + length
            if len(self._buffer) < total:
                break
            body = bytes(self._buffer[end + len(_HEADER_END) : total])
            del self._buffer[:total]
            messages.append(self._build(start_line, headers, body))
        return messages

    def _build(self, start_line: bytes, headers, body: bytes):
        parts = start_line.decode().split(" ", 2)
        if self._requests:
            if len(parts) != 3:
                raise DecodeError(f"malformed request line: {start_line!r}")
            method, path, version = parts
            return HttpRequest(
                method=method, path=path, headers=headers, body=body, version=version
            )
        if len(parts) < 2:
            raise DecodeError(f"malformed status line: {start_line!r}")
        version, status = parts[0], parts[1]
        reason = parts[2] if len(parts) > 2 else ""
        return HttpResponse(
            status=int(status), reason=reason, headers=headers, body=body,
            version=version,
        )


class HttpServerApp:
    """Serves HTTP over any engine driver (TLS or mbTLS).

    Args:
        handler: ``handler(request) -> HttpResponse``.
    """

    def __init__(self, handler) -> None:
        self._handler = handler
        self._parser = HttpParser(parse_requests=True)
        self.requests_served = 0

    def on_data(self, data: bytes, send) -> None:
        """Feed received plaintext; ``send(bytes)`` transmits responses."""
        for request in self._parser.feed(data):
            response = self._handler(request)
            self.requests_served += 1
            send(response.encode())


class HttpClient:
    """Collects responses for requests sent over an established session."""

    def __init__(self) -> None:
        self._parser = HttpParser(parse_requests=False)
        self.responses: list[HttpResponse] = []

    def on_data(self, data: bytes) -> list[HttpResponse]:
        fresh = self._parser.feed(data)
        self.responses.extend(fresh)
        return fresh

    @staticmethod
    def get(path: str, host: str, headers: list[tuple[str, str]] | None = None) -> bytes:
        request = HttpRequest(method="GET", path=path, headers=[("Host", host)])
        for name, value in headers or []:
            request.set_header(name, value)
        return request.encode()
