"""Middlebox applications and the HTTP substrate they operate on."""

from repro.apps.base import AppApi, MiddleboxApp
from repro.apps.cache import CacheApp, SharedCacheStore
from repro.apps.compression import Compressor, Decompressor
from repro.apps.http import (
    HttpClient,
    HttpParser,
    HttpRequest,
    HttpResponse,
    HttpServerApp,
)
from repro.apps.ids import IntrusionDetector, Signature
from repro.apps.proxy import HeaderInsertingProxy

__all__ = [
    "AppApi",
    "MiddleboxApp",
    "CacheApp",
    "SharedCacheStore",
    "Compressor",
    "Decompressor",
    "HttpClient",
    "HttpParser",
    "HttpRequest",
    "HttpResponse",
    "HttpServerApp",
    "IntrusionDetector",
    "Signature",
    "HeaderInsertingProxy",
]
