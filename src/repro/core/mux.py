"""Subchannel multiplexing helpers for mbTLS secondary sessions.

Secondary TLS sessions ride inside Encapsulated records (ContentType 30) on
the primary TCP stream; each complete record produced by a secondary engine
is wrapped with its 1-byte subchannel ID, and inner records are unwrapped
and fed back to the owning engine.
"""

from __future__ import annotations

from repro.wire.mbtls import EncapsulatedRecord
from repro.wire.records import Record, RecordBuffer

__all__ = ["wrap_engine_output", "Subchannel"]


def wrap_engine_output(engine, subchannel_id: int, buffer: RecordBuffer) -> bytes:
    """Drain an engine's outbox, wrapping each record for the subchannel.

    ``buffer`` must be dedicated to this engine: engines emit whole records,
    but we parse defensively in case output is drained mid-record.
    """
    data = engine.data_to_send()
    if not data:
        return b""
    buffer.feed(data)
    out = bytearray()
    for record in buffer.pop_records():
        out += EncapsulatedRecord(subchannel_id=subchannel_id, inner=record).to_record().encode()
    return bytes(out)


class Subchannel:
    """One secondary session: its engine plus mux state and join status."""

    def __init__(self, subchannel_id: int, engine) -> None:
        self.subchannel_id = subchannel_id
        self.engine = engine
        self._out_buffer = RecordBuffer()
        self.complete = False
        self.rejected = False
        self.reject_reason = ""
        self.keys_sent = False

    def feed_inner(self, inner: Record) -> list:
        """Feed one unwrapped inner record to the secondary engine."""
        return self.engine.receive_bytes(inner.encode())

    def drain(self) -> bytes:
        """Wrapped bytes ready for the primary stream."""
        return wrap_engine_output(self.engine, self.subchannel_id, self._out_buffer)
