"""The mbTLS middlebox engine (§3.4).

A middlebox sits between two TCP segments — *down* faces the client, *up*
faces the server — and plays one of three parts per session:

* **client-side**: the ClientHello carries MiddleboxSupport, so the
  middlebox joins the client's session: it claims a subchannel, answers the
  (double-duty) ClientHello with its own secondary ServerHello *before*
  forwarding the primary ServerHello, completes the secondary handshake,
  receives per-hop keys, and then re-encrypts the data stream hop to hop.
* **server-side**: the middlebox optimistically announces itself toward the
  server with a MiddleboxAnnouncement; if the server speaks mbTLS it opens
  a secondary handshake (server as TLS client), otherwise the middlebox
  notices the primary handshake completing without it, demotes itself to a
  transparent relay, and caches the server as non-mbTLS (§3.4).
* **relay**: forwards bytes verbatim (non-mbTLS traffic, or after rejection).

The engine is sans-IO: drivers feed ``receive_down``/``receive_up`` and
drain ``data_to_send_down``/``data_to_send_up``.
"""

from __future__ import annotations

from repro.core.config import MiddleboxConfig, MiddleboxRole
from repro import obs
from repro.errors import (
    CryptoError,
    DecodeError,
    IntegrityError,
    ProtocolError,
    SessionAborted,
)
from repro.io.record_plane import MAX_BUFFERED_BYTES, RecordPlane
from repro.tls.ciphersuites import suite_by_code
from repro.tls.engine import TLSServerEngine
from repro.tls.events import (
    ConnectionClosed,
    Event,
    HandshakeComplete,
    MiddleboxKeysInstalled,
    RawRecordReceived,
)
from repro.core.keys import states_from_hop_keys
from repro.core.mux import wrap_engine_output
from repro.wire.alerts import Alert, AlertDescription
from repro.wire.extensions import ExtensionType, MiddleboxSupportExtension, ServerNameExtension
from repro.wire.handshake import ClientHello, HandshakeBuffer, HandshakeType
from repro.wire.mbtls import EncapsulatedRecord, KeyMaterial, MiddleboxAnnouncement
from repro.wire.records import ContentType, Record, RecordBuffer

__all__ = ["MbTLSMiddlebox"]

_DOWN, _UP = 0, 1


class MbTLSMiddlebox:
    """One middlebox instance handling one client connection."""

    MODE_WAITING = "waiting"
    MODE_CLIENT_SIDE = "client-side"
    MODE_SERVER_SIDE = "server-side"
    MODE_RELAY = "relay"

    def __init__(
        self,
        config: MiddleboxConfig,
        destination: str | None = None,
        port: int = 443,
    ) -> None:
        self.config = config
        self.destination = destination
        self.port = port
        self.mode = self.MODE_WAITING
        self.dial_target: tuple[str, int] | None = None
        # One plane per segment. The hop states are *crossed*: c2s records
        # are read on the down plane and re-protected on the up plane (and
        # vice versa), so each plane's read/write states belong to the
        # segment it faces.
        self._planes = [RecordPlane(), RecordPlane()]
        # Party labels: ``<name>:down`` faces the client-side segment,
        # ``<name>:up`` the server-side one, so per-hop sealed/opened
        # counters attribute to the exact plane that did the work.
        self._planes[_DOWN].party = f"{config.name}:down"
        self._planes[_UP].party = f"{config.name}:up"
        self._started = False
        self._events: list[Event] = []
        # Secondary session (we are the TLS server toward our endpoint).
        self._secondary: TLSServerEngine | None = None
        self._secondary_out = RecordBuffer()
        self.my_subchannel: int | None = None
        self._claimed = False
        self._client_hello_record: Record | None = None
        self._seen_subchannels: set[int] = set()
        # Server-side subchannel translation (down id -> up id).
        self._subchannel_map: dict[int, int] = {}
        self._used_up_subchannels: set[int] = set()
        # Data plane.
        self.keys_installed = False
        self.rejected = False
        self.gave_up = False
        self._pending: tuple[list[Record], list[Record]] = ([], [])
        self.records_processed = 0
        self.records_dropped = 0
        self._primary_session_id: bytes = b""
        self.closed = False
        # Alert-plane attribution (see DESIGN.md §9).
        self.abort: SessionAborted | None = None

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        """A middlebox only reacts to traffic; start just arms the engine."""
        if self._started:
            raise ProtocolError("middlebox already started")
        self._started = True

    def receive_down(self, data: bytes) -> list[Event]:
        return self._receive(_DOWN, data)

    def receive_up(self, data: bytes) -> list[Event]:
        return self._receive(_UP, data)

    def data_to_send_down(self) -> bytes:
        return self._planes[_DOWN].data_to_send()

    def data_to_send_up(self) -> bytes:
        return self._planes[_UP].data_to_send()

    @property
    def joined(self) -> bool:
        """Whether this middlebox is an authenticated session member."""
        return self.keys_installed and not self.rejected

    @property
    def outbox_fill(self) -> float:
        """Fullest outbound buffer as a fraction of the 4 MiB bound.

        The backpressure signal: past ~1.0 the next queued record raises
        ``record_overflow``, so admission controllers stop dialing new
        sessions through this middlebox well before that.
        """
        fullest = max(plane.pending_outbound_bytes for plane in self._planes)
        return fullest / MAX_BUFFERED_BYTES

    # Hop-state views (the planes own them; see the crossing note above).

    @property
    def _c2s_read(self):
        return self._planes[_DOWN].read_state

    @property
    def _c2s_write(self):
        return self._planes[_UP].write_state

    @property
    def _s2c_read(self):
        return self._planes[_UP].read_state

    @property
    def _s2c_write(self):
        return self._planes[_DOWN].write_state

    def peer_closed_down(self) -> list[Event]:
        """The client-facing segment closed; tear down toward the server."""
        return self._handle_close(_DOWN)

    def peer_closed_up(self) -> list[Event]:
        """The server-facing segment closed; tear down toward the client."""
        return self._handle_close(_UP)

    def _handle_close(self, from_side: int) -> list[Event]:
        """Half-open teardown: one side of the split TCP connection closed.

        A joined middlebox owes the surviving side a ``close_notify`` under
        the hop keys (so the endpoint sees a clean TLS close, not a bare
        TCP reset), and its secondary session — if it faces the surviving
        side — is closed too so the subchannel dies with the connection.
        """
        if self.closed:
            return []
        self.closed = True
        surviving = 1 - from_side
        if self.joined:
            plane = self._planes[surviving]
            if plane.write_state is not None:
                plane.queue_record(ContentType.ALERT, Alert.close_notify().encode())
        if self._secondary is not None and not self._secondary.closed:
            secondary_side = _DOWN if self.mode == self.MODE_CLIENT_SIDE else _UP
            if secondary_side == surviving:
                self._secondary.close()
                self._drain_secondary()
        self._events.append(ConnectionClosed())
        events = self._events
        self._events = []
        return events

    # ------------------------------------------------------------ internals

    def _receive(self, side: int, data: bytes) -> list[Event]:
        if self.closed:
            return []
        if self.mode == self.MODE_RELAY:
            try:
                self._planes[1 - side].queue_raw(data)
            except ProtocolError as exc:
                # Outbox overflow: the relay target stopped draining.
                self.closed = True
                self._events.append(
                    ConnectionClosed(
                        error=str(exc), alert=exc.alert, origin=self.config.name
                    )
                )
        else:
            plane = self._planes[side]
            try:
                plane.feed(data)
                records = plane.pop_records()
            except DecodeError:
                # Not TLS framing: become a transparent relay.
                self._demote_to_relay(flush_side=side)
                records = []
            except ProtocolError as exc:
                # A mutated length field starved the parser until the
                # buffer bound tripped: abort rather than buffer forever.
                self._abort(AlertDescription.from_name(exc.alert), str(exc))
                records = []
            index = 0
            total = len(records)
            while index < total:
                if self.closed:
                    break
                record = records[index]
                if self.mode == self.MODE_RELAY:
                    self._planes[1 - side].queue_encoded(record)
                    index += 1
                    continue
                if (
                    record.content_type == ContentType.APPLICATION_DATA
                    and self._can_batch_data()
                ):
                    # A run of application data in the steady state shares
                    # one unprotect_many (batched AEAD, pool-eligible).
                    end = index + 1
                    while (
                        end < total
                        and records[end].content_type
                        == ContentType.APPLICATION_DATA
                    ):
                        end += 1
                    if end - index > 1:
                        try:
                            self._data_plane_many(side, records[index:end])
                        except (DecodeError, IntegrityError, CryptoError):
                            pass
                        except ProtocolError as exc:
                            self._abort(
                                AlertDescription.from_name(exc.alert), str(exc)
                            )
                        index = end
                        continue
                try:
                    self._process(side, record)
                except (DecodeError, IntegrityError, CryptoError):
                    # A corrupted record inside otherwise-valid framing
                    # (malformed Encapsulated wrapper, garbage key
                    # material): drop it. Endpoint AEAD/timers catch what
                    # the path mangled; a middlebox must never crash its
                    # driver over hostile bytes.
                    pass
                except ProtocolError as exc:
                    self._abort(AlertDescription.from_name(exc.alert), str(exc))
                index += 1
        events = self._events
        self._events = []
        return events

    def _abort(self, description: AlertDescription, message: str) -> None:
        """Originate a fatal alert toward both segments and shut down.

        Used for faults this hop detects itself (buffer overflow, or AEAD
        failure under ``tamper_policy="abort"``); both endpoints receive an
        alert attributed to this middlebox by name.
        """
        if self.closed:
            return
        name = description.name.lower()
        obs.counter("alerts_sent", origin=self.config.name, alert=name).inc()
        alert = Alert.fatal(description, origin=self.config.name)
        for plane in self._planes:
            try:
                plane.queue_record(ContentType.ALERT, alert.encode())
            except ProtocolError:
                pass
        if self._secondary is not None and not self._secondary.closed:
            self._secondary.close()
            self._drain_secondary()
        self.closed = True
        self.abort = SessionAborted(message, origin=self.config.name, alert=name)
        self._events.append(
            ConnectionClosed(
                error=f"{name}: {message}", alert=name, origin=self.config.name
            )
        )

    def _demote_to_relay(self, flush_side: int | None = None) -> None:
        self.mode = self.MODE_RELAY
        # Flush any buffered data-phase records verbatim, preserving direction.
        for record in self._pending[0]:
            self._planes[_UP].queue_encoded(record)
        for record in self._pending[1]:
            self._planes[_DOWN].queue_encoded(record)
        self._pending = ([], [])
        for side in (_DOWN, _UP):
            raw = self._planes[side].drain_inbound_raw()
            if raw:
                self._planes[1 - side].queue_raw(raw)

    def _forward(self, from_side: int, record: Record) -> None:
        self._planes[1 - from_side].queue_encoded(record)

    def _process(self, side: int, record: Record) -> None:
        if self.mode == self.MODE_WAITING:
            self._process_waiting(side, record)
        elif self.mode == self.MODE_CLIENT_SIDE:
            if side == _DOWN:
                self._client_side_down(record)
            else:
                self._client_side_up(record)
        elif self.mode == self.MODE_SERVER_SIDE:
            if side == _DOWN:
                self._server_side_down(record)
            else:
                self._server_side_up(record)

    # ----------------------------------------------------------- role choice

    def _process_waiting(self, side: int, record: Record) -> None:
        if side != _DOWN or record.content_type != ContentType.HANDSHAKE:
            # Anything else before a ClientHello: not our protocol; relay.
            self._demote_to_relay()
            self._planes[1 - side].queue_encoded(record)
            return
        buffer = HandshakeBuffer()
        buffer.feed(record.payload)
        try:
            messages = buffer.pop_messages()
        except DecodeError:
            self._demote_to_relay()
            self._planes[_UP].queue_encoded(record)
            return
        if not messages or messages[0].msg_type != HandshakeType.CLIENT_HELLO:
            self._demote_to_relay()
            self._planes[_UP].queue_encoded(record)
            return
        hello = ClientHello.decode_body(messages[0].body)
        self._decide_role(hello, record)

    def _decide_role(self, hello: ClientHello, record: Record) -> None:
        support_ext = hello.find_extension(int(ExtensionType.MIDDLEBOX_SUPPORT))
        sni_ext = hello.find_extension(int(ExtensionType.SERVER_NAME))
        sni = (
            ServerNameExtension.from_extension(sni_ext).host_name if sni_ext else None
        )
        destination = self.destination or sni or ""
        self._session_destination = destination
        self.dial_target = (self._next_hop(support_ext, destination), self.port)

        role = self.config.role
        client_side = support_ext is not None and role in (
            MiddleboxRole.AUTO,
            MiddleboxRole.CLIENT_SIDE,
        )
        server_side = (
            not client_side
            and role in (MiddleboxRole.AUTO, MiddleboxRole.SERVER_SIDE)
            and self.config.serves(destination)
            and destination not in self.config.non_mbtls_servers
        )
        if client_side:
            self.mode = self.MODE_CLIENT_SIDE
            self._client_hello_record = record
            self._forward(_DOWN, record)
        elif server_side:
            self.mode = self.MODE_SERVER_SIDE
            self._forward(_DOWN, record)
            self._announce()
        else:
            self._forward(_DOWN, record)
            self._demote_to_relay()

    def _next_hop(self, support_ext, destination: str) -> str:
        """Preconfigured middleboxes dial the next listed hop; otherwise
        (interception) continue toward the original destination."""
        if support_ext is not None:
            try:
                listed = MiddleboxSupportExtension.from_extension(support_ext).middleboxes
            except DecodeError:
                return destination
            if self.config.name in listed:
                index = listed.index(self.config.name)
                if index + 1 < len(listed):
                    return listed[index + 1]
        return destination

    # ----------------------------------------------------------- client side

    def _client_side_down(self, record: Record) -> None:
        if record.content_type == ContentType.MBTLS_ENCAPSULATED:
            encap = EncapsulatedRecord.from_record(record)
            self._seen_subchannels.add(encap.subchannel_id)
            if self._claimed and encap.subchannel_id == self.my_subchannel:
                self._feed_secondary(encap.inner)
            else:
                self._forward(_DOWN, record)
            return
        if record.content_type == ContentType.APPLICATION_DATA or (
            self.keys_installed and record.content_type == ContentType.ALERT
        ):
            self._data_plane(_DOWN, record)
            return
        self._forward(_DOWN, record)

    def _client_side_up(self, record: Record) -> None:
        if record.content_type == ContentType.MBTLS_ENCAPSULATED:
            encap = EncapsulatedRecord.from_record(record)
            self._seen_subchannels.add(encap.subchannel_id)
            self._forward(_UP, record)
            return
        if record.content_type == ContentType.HANDSHAKE and not self._claimed:
            # First handshake record from the server: the primary ServerHello.
            # Claim the next subchannel and inject our secondary ServerHello
            # *before* forwarding it (the paper's ordering).
            self._note_primary_server_hello(record)
            self._claim_subchannel()
            self._forward(_UP, record)
            return
        if record.content_type == ContentType.APPLICATION_DATA or (
            self.keys_installed and record.content_type == ContentType.ALERT
        ):
            self._data_plane(_UP, record)
            return
        self._forward(_UP, record)

    def _note_primary_server_hello(self, record: Record) -> None:
        """Extract the primary session ID: the key under which we cache our
        secondary session for §3.5 resumption."""
        try:
            buffer = HandshakeBuffer()
            buffer.feed(record.payload)
            messages = buffer.pop_messages()
        except DecodeError:
            return
        if messages and messages[0].msg_type == HandshakeType.SERVER_HELLO:
            from repro.wire.handshake import ServerHello

            try:
                hello = ServerHello.decode_body(messages[0].body)
            except DecodeError:
                return
            self._primary_session_id = hello.session_id

    def _cache_secondary_session(self) -> None:
        """Cache the secondary session under the PRIMARY session ID, so a
        resumed primary hello (which reuses that ID) finds it (§3.5)."""
        cache = self.config.tls.session_cache
        if (
            cache is None
            or not self._primary_session_id
            or self._secondary is None
            or self._secondary.master_secret is None
        ):
            return
        from repro.tls.session import SessionState

        cache.store(
            SessionState(
                session_id=self._primary_session_id,
                master_secret=self._secondary.master_secret,
                cipher_suite=self._secondary.suite.code,
            )
        )

    def _claim_subchannel(self) -> None:
        self.my_subchannel = (max(self._seen_subchannels) + 1) if self._seen_subchannels else 1
        self._claimed = True
        self._secondary = TLSServerEngine(self.config.tls)
        self._secondary._plane.party = f"{self.config.name}:secondary"
        self._secondary.start()
        assert self._client_hello_record is not None
        self._feed_secondary(
            Record(
                content_type=ContentType.HANDSHAKE,
                payload=self._client_hello_record.payload,
            )
        )

    # ----------------------------------------------------------- server side

    def _announce(self) -> None:
        self.my_subchannel = 1
        self._claimed = True
        self._used_up_subchannels.add(1)
        self._secondary = TLSServerEngine(self.config.tls)
        self._secondary._plane.party = f"{self.config.name}:secondary"
        self._secondary.start()
        announcement = EncapsulatedRecord(
            subchannel_id=self.my_subchannel,
            inner=MiddleboxAnnouncement().to_record(),
        )
        self._planes[_UP].queue_encoded(announcement.to_record())

    def _translate_up(self, down_id: int) -> int:
        if down_id in self._subchannel_map:
            return self._subchannel_map[down_id]
        up_id = down_id
        while up_id in self._used_up_subchannels:
            up_id = (up_id % 255) + 1
        self._subchannel_map[down_id] = up_id
        self._used_up_subchannels.add(up_id)
        return up_id

    def _translate_down(self, up_id: int) -> int | None:
        for down_id, mapped in self._subchannel_map.items():
            if mapped == up_id:
                return down_id
        return None

    def _server_side_down(self, record: Record) -> None:
        if record.content_type == ContentType.MBTLS_ENCAPSULATED:
            encap = EncapsulatedRecord.from_record(record)
            up_id = self._translate_up(encap.subchannel_id)
            rewrapped = EncapsulatedRecord(subchannel_id=up_id, inner=encap.inner)
            self._planes[_UP].queue_encoded(rewrapped.to_record())
            return
        if record.content_type == ContentType.APPLICATION_DATA or (
            self.keys_installed and record.content_type == ContentType.ALERT
        ):
            self._data_plane(_DOWN, record)
            return
        self._forward(_DOWN, record)

    def _server_side_up(self, record: Record) -> None:
        if record.content_type == ContentType.MBTLS_ENCAPSULATED:
            encap = EncapsulatedRecord.from_record(record)
            if encap.subchannel_id == self.my_subchannel:
                self._feed_secondary(encap.inner)
                return
            down_id = self._translate_down(encap.subchannel_id)
            if down_id is not None:
                record = EncapsulatedRecord(
                    subchannel_id=down_id, inner=encap.inner
                ).to_record()
            self._planes[_DOWN].queue_encoded(record)
            return
        if record.content_type == ContentType.CHANGE_CIPHER_SPEC and not self._secondary_started():
            # The server is finishing the primary handshake without having
            # opened a secondary session with us: it does not speak mbTLS
            # (or rejected us — or an on-path attacker suppressed our
            # announcement; the wire looks identical). Give up, relay, and
            # remember (§3.4). The fallback counter is the only footprint
            # this silent downgrade leaves, so it is load-bearing.
            self.gave_up = True
            obs.counter(
                "session.fallback",
                party=self.config.name,
                reason="announcement_unanswered",
            ).inc()
            self.config.non_mbtls_servers.add(self._session_destination)
            self._flush_pending_verbatim()
            self._forward(_UP, record)
            return
        if record.content_type == ContentType.APPLICATION_DATA or (
            self.keys_installed and record.content_type == ContentType.ALERT
        ):
            self._data_plane(_UP, record)
            return
        self._forward(_UP, record)

    def _secondary_started(self) -> bool:
        """Whether the server engaged us (sent its secondary ClientHello)."""
        if self._secondary is None:
            return False
        return self._secondary.client_random is not None

    def _flush_pending_verbatim(self) -> None:
        for record in self._pending[0]:
            self._planes[_UP].queue_encoded(record)
        for record in self._pending[1]:
            self._planes[_DOWN].queue_encoded(record)
        self._pending = ([], [])

    # ------------------------------------------------------ secondary session

    def _feed_secondary(self, inner: Record) -> None:
        events = self._secondary.receive_bytes(inner.encode())
        self._drain_secondary()
        for event in events:
            if isinstance(event, RawRecordReceived) and event.content_type == (
                ContentType.MBTLS_KEY_MATERIAL
            ):
                self._install_keys(KeyMaterial.from_payload(event.payload))
            elif isinstance(event, HandshakeComplete):
                # Endpoint verified us; keys arrive next. Remember the
                # secondary session for future abbreviated handshakes.
                self._cache_secondary_session()
            elif isinstance(event, ConnectionClosed):
                # The endpoint rejected us: carry traffic verbatim.
                self.rejected = True
                self._flush_pending_verbatim()

    def _drain_secondary(self) -> None:
        side = _DOWN if self.mode == self.MODE_CLIENT_SIDE else _UP
        self._planes[side].queue_raw(
            wrap_engine_output(self._secondary, self.my_subchannel, self._secondary_out)
        )

    def _install_keys(self, material: KeyMaterial) -> None:
        suite_down = suite_by_code(material.toward_client.cipher_suite)
        suite_up = suite_by_code(material.toward_server.cipher_suite)
        c2s_read, s2c_write = states_from_hop_keys(suite_down, material.toward_client)
        c2s_write, s2c_read = states_from_hop_keys(suite_up, material.toward_server)
        self._planes[_DOWN].replace_states(c2s_read, s2c_write)
        self._planes[_UP].replace_states(s2c_read, c2s_write)
        self.keys_installed = True
        obs.counter(
            "key_installs", party=self.config.name, kind="hop",
            suite=suite_down.name,
        ).inc()
        obs.tracer().mark("keys.installed", party=self.config.name)
        self._events.append(
            MiddleboxKeysInstalled(
                toward_client_suite=suite_down.code,
                toward_server_suite=suite_up.code,
            )
        )
        # Flush data that arrived before our keys (the False-Start case).
        pending_down, pending_up = self._pending
        self._pending = ([], [])
        for record in pending_down:
            self._data_plane(_DOWN, record)
        for record in pending_up:
            self._data_plane(_UP, record)

    # -------------------------------------------------------------- data path

    def _can_batch_data(self) -> bool:
        """Whether application data can take the batched decrypt path:
        steady-state forwarding with hop keys installed (every special
        case — pending keys, rejected, gave up — goes per record)."""
        return (
            self.mode in (self.MODE_CLIENT_SIDE, self.MODE_SERVER_SIDE)
            and self.keys_installed
            and not self.rejected
            and not self.gave_up
        )

    def _data_plane_many(self, from_side: int, records: list[Record]) -> None:
        """Decrypt a run of application data in one batched call.

        ``unprotect_many`` is all-or-nothing — on any failure no sequence
        number is consumed, so replaying the run through the per-record
        path reproduces the serial semantics exactly (valid prefix
        forwarded, the bad record dropped or aborted per policy).
        """
        plane = self._planes[from_side]
        try:
            plaintexts = plane.unprotect_many(records)
        except (IntegrityError, CryptoError):
            for record in records:
                if self.closed:
                    return
                try:
                    self._data_plane(from_side, record)
                except (DecodeError, IntegrityError, CryptoError):
                    continue  # same per-record drop as the serial loop
            return
        direction = "c2s" if from_side == _DOWN else "s2c"
        counted = obs.counter(
            "records_processed", party=self.config.name, direction=direction
        )
        out_plane = self._planes[1 - from_side]
        for plaintext in plaintexts:
            if self.closed:
                return
            plaintext = self._run_app(direction, plaintext)
            self.records_processed += 1
            counted.inc()
            if plaintext is None:
                continue  # the application consumed the chunk
            out_plane.queue_record(ContentType.APPLICATION_DATA, plaintext)

    def _data_plane(self, from_side: int, record: Record) -> None:
        if self.rejected or self.gave_up:
            self._forward(from_side, record)
            return
        if not self.keys_installed:
            self._pending[0 if from_side == _DOWN else 1].append(record)
            return
        direction = "c2s" if from_side == _DOWN else "s2c"
        try:
            plaintext = self._planes[from_side].unprotect(record)
        except IntegrityError as exc:
            if self.config.tamper_policy == "abort":
                self._abort(AlertDescription.BAD_RECORD_MAC, str(exc))
            else:
                # Tampered or out-of-path record: drop it (P2/P4).
                self.records_dropped += 1
                obs.counter("records_dropped", party=self.config.name).inc()
            return
        if record.content_type == ContentType.ALERT:
            self._propagate_alert(from_side, plaintext)
            return
        if record.content_type == ContentType.APPLICATION_DATA:
            plaintext = self._run_app(direction, plaintext)
            self.records_processed += 1
            obs.counter(
                "records_processed", party=self.config.name, direction=direction
            ).inc()
            if plaintext is None:
                return  # the application consumed the chunk
        self._planes[1 - from_side].queue_record(record.content_type, plaintext)

    def _propagate_alert(self, from_side: int, plaintext: bytes) -> None:
        """Re-protect an authenticated alert onto the next hop, and on a
        fatal (non-close) alert tear this hop down too, so the abort sweeps
        the whole path instead of leaving middleboxes half-open."""
        self._planes[1 - from_side].queue_record(ContentType.ALERT, plaintext)
        try:
            alert = Alert.decode(plaintext)
        except DecodeError:
            return  # forwarded verbatim; the endpoints will judge it
        if alert.is_fatal and not alert.is_close:
            name = alert.description.name.lower()
            if self._secondary is not None and not self._secondary.closed:
                self._secondary.close()
                self._drain_secondary()
            self.closed = True
            self.abort = SessionAborted(
                f"fatal {name} passed through", origin=alert.origin, alert=name
            )
            self._events.append(
                ConnectionClosed(error=name, alert=name, origin=alert.origin)
            )

    def _run_app(self, direction: str, plaintext: bytes) -> bytes | None:
        """Invoke the middlebox application, rich or plain-callable."""
        on_data = getattr(self.config.process, "on_data", None)
        if on_data is None:
            return self.config.process(direction, plaintext)
        from repro.apps.base import AppApi

        def send_to_client(data: bytes) -> None:
            self._planes[_DOWN].queue_record(ContentType.APPLICATION_DATA, data)

        def send_to_server(data: bytes) -> None:
            self._planes[_UP].queue_record(ContentType.APPLICATION_DATA, data)

        return on_data(direction, plaintext, AppApi(send_to_client, send_to_server))
