"""Per-hop key generation and installation (Figure 4).

Each hop of an mbTLS session is protected by its own symmetric keys:

    Client --H0-- M1 --H1-- M2 ... Mk --BRIDGE-- S1 ... Sm --Gm-- Server

The client generates fresh keys for the hops on its side, the server for
its side, and the primary TLS session's key block is the *bridge* between
them. Middlebox ``i`` receives exactly the keys for its two adjacent hops
in an MBTLSKeyMaterial message. Unique per-hop keys are what give mbTLS
path integrity (P4) and value-change secrecy (P1C).
"""

from __future__ import annotations

from repro.tls.ciphersuites import CipherSuite
from repro.tls.keyschedule import KeyBlock
from repro.tls.record_layer import ConnectionState, aead_for
from repro.wire.mbtls import HopKeys

__all__ = [
    "generate_hop_keys",
    "bridge_hop_keys",
    "hop_states_for_endpoint",
    "states_from_hop_keys",
    "build_hop_chain",
    "warm_aead_contexts",
]

# The primary session's Finished messages each consumed sequence number 0,
# so data over the bridge hop starts at sequence 1 in both directions.
BRIDGE_START_SEQUENCE = 1


def generate_hop_keys(suite: CipherSuite, rng) -> HopKeys:
    """Fresh, independent keys for one hop (both directions)."""
    return HopKeys(
        cipher_suite=suite.code,
        client_write_key=rng.random_bytes(suite.key_length),
        client_write_iv=rng.random_bytes(suite.fixed_iv_length),
        server_write_key=rng.random_bytes(suite.key_length),
        server_write_iv=rng.random_bytes(suite.fixed_iv_length),
    )


def bridge_hop_keys(suite: CipherSuite, key_block: KeyBlock) -> HopKeys:
    """The primary session's key block, expressed as a hop."""
    return HopKeys(
        cipher_suite=suite.code,
        client_write_key=key_block.client_write_key,
        client_write_iv=key_block.client_write_iv,
        server_write_key=key_block.server_write_key,
        server_write_iv=key_block.server_write_iv,
        client_to_server_seq=BRIDGE_START_SEQUENCE,
        server_to_client_seq=BRIDGE_START_SEQUENCE,
    )


def warm_aead_contexts(suite: CipherSuite, hops: list[HopKeys]) -> None:
    """Pre-derive the AEAD contexts for every direction of every hop.

    :class:`ConnectionState` construction goes through the same
    :func:`aead_for` cache, so warming is never required for
    correctness — but an endpoint that already knows its hop chain can
    pay the AES key schedule and GHASH table derivation up front, here,
    instead of on the first record each hop protects.
    """
    for keys in hops:
        aead_for(suite, keys.client_write_key)
        aead_for(suite, keys.server_write_key)


def states_from_hop_keys(
    suite: CipherSuite, keys: HopKeys
) -> tuple[ConnectionState, ConnectionState]:
    """(client_to_server_state, server_to_client_state) for one hop."""
    c2s = ConnectionState(
        suite, keys.client_write_key, keys.client_write_iv, keys.client_to_server_seq
    )
    s2c = ConnectionState(
        suite, keys.server_write_key, keys.server_write_iv, keys.server_to_client_seq
    )
    return c2s, s2c


def hop_states_for_endpoint(
    suite: CipherSuite, keys: HopKeys, is_client: bool
) -> tuple[ConnectionState, ConnectionState]:
    """(read_state, write_state) for an *endpoint* adjacent to this hop."""
    c2s, s2c = states_from_hop_keys(suite, keys)
    if is_client:
        return s2c, c2s  # client reads server-to-client, writes client-to-server
    return c2s, s2c


def build_hop_chain(
    suite: CipherSuite,
    middlebox_count: int,
    rng,
    bridge: HopKeys,
    client_side: bool,
) -> list[HopKeys]:
    """The ordered hop list for one endpoint's side of the session.

    For the client side the list is ``[H0, H1, ..., H_{k-1}, bridge]`` where
    H0 is the client-adjacent hop; middlebox ``i`` (0-based, client-nearest
    first) uses hops ``i`` (toward client) and ``i+1`` (toward server).

    For the server side it is ``[bridge, G1, ..., Gm]`` where Gm is the
    server-adjacent hop; middlebox ``i`` (0-based, client-nearest first)
    uses hops ``i`` (toward client) and ``i+1`` (toward server).
    """
    fresh = [generate_hop_keys(suite, rng) for _ in range(middlebox_count)]
    chain = fresh + [bridge] if client_side else [bridge] + fresh
    warm_aead_contexts(suite, chain)
    return chain
