"""The mbTLS client endpoint (§3.4).

Wraps a primary TLS client engine and adds:

* the ``MiddleboxSupport`` ClientHello extension (in-band discovery signal
  plus the list of preconfigured middleboxes);
* demultiplexing of Encapsulated records into per-middlebox secondary TLS
  sessions, where the primary ClientHello did double duty as the secondary
  hello (so discovery adds no round trip);
* authentication/approval of each middlebox (certificate, and optionally an
  SGX attestation bound to the handshake transcript);
* per-hop key generation and distribution (MBTLSKeyMaterial), and the
  client-side data plane under the client-adjacent hop keys.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxInfo,
    MiddleboxRejected,
    SessionEstablished,
)
from repro.core.keys import build_hop_chain, bridge_hop_keys, hop_states_for_endpoint
from repro.core.mux import Subchannel
from repro.core.resumption import RememberedMiddlebox
from repro import obs
from repro.errors import DecodeError, IntegrityError, ProtocolError, SessionAborted
from repro.io.record_plane import RecordPlane
from repro.tls.ciphersuites import suite_by_code
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine
from repro.tls.events import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    Event,
    HandshakeComplete,
    MiddleboxJoined,
)
from repro.wire.alerts import Alert, AlertDescription
from repro.wire.extensions import (
    AttestationRequestExtension,
    MiddleboxSupportExtension,
)
from repro.wire.mbtls import EncapsulatedRecord, KeyMaterial
from repro.wire.records import ContentType, Record

__all__ = ["MbTLSClientEngine"]


class MbTLSClientEngine:
    """Sans-IO mbTLS client."""

    is_client = True

    def __init__(self, config: MbTLSEndpointConfig) -> None:
        self.config = config
        extra = list(config.tls.extra_extensions)
        extra.append(
            MiddleboxSupportExtension(
                middleboxes=tuple(config.preconfigured_middleboxes)
            ).to_extension()
        )
        if config.require_middlebox_attestation and not config.tls.require_attestation:
            # The primary hello doubles as every secondary hello, so the
            # attestation request must ride in it even when only middlebox
            # (not server) attestation is demanded.
            extra.append(AttestationRequestExtension().to_extension())
        self._primary_config = replace(config.tls, extra_extensions=tuple(extra))
        self.primary = TLSClientEngine(self._primary_config)
        # The plane's read/write states are the client-adjacent hop keys,
        # installed at establishment; before that everything is forwarded raw.
        self._plane = RecordPlane()
        self._events: list[Event] = []
        self._secondaries: dict[int, Subchannel] = {}
        self._arrival_order: list[int] = []
        self.established = False
        self._middlebox_infos: dict[int, MiddleboxInfo] = {}
        self.closed = False
        self.records_dropped = 0
        # Alert-plane attribution (see DESIGN.md §9).
        self.origin_label = "client"
        self.primary.origin_label = self.origin_label
        self._plane.party = self.origin_label
        self._session_span = None
        self.abort: SessionAborted | None = None
        # Subchannels abandoned because their middlebox stalled or died
        # mid-handshake (graceful degradation, not rejection-by-policy).
        self.bypassed_subchannels: list[int] = []
        # Every decision to proceed without a path member, as
        # (subchannel_id, reason) — the downgrade-visibility ledger.
        self.fallback_decisions: list[tuple[int, str]] = []
        # §3.5 resumption: remembered secondary sessions, by arrival order.
        self._resume_candidates: list[RememberedMiddlebox] = []
        if config.middlebox_session_store is not None and config.tls.server_name:
            self._resume_candidates = config.middlebox_session_store.lookup(
                config.tls.server_name
            )

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        """Send the primary ClientHello (with the MiddleboxSupport extension)."""
        self._session_span = obs.tracer().begin(
            "handshake.mbtls", party=self.origin_label)
        self.primary.start()
        self._drain_primary()

    def data_to_send(self) -> bytes:
        return self._plane.data_to_send()

    def receive_bytes(self, data: bytes) -> list[Event]:
        if self.closed:
            return []
        try:
            self._plane.feed(data)
            records = self._plane.pop_records()
            index = 0
            total = len(records)
            while index < total:
                record = records[index]
                if (
                    record.content_type == ContentType.APPLICATION_DATA
                    and self.established
                    and self._plane.write_state is not None
                ):
                    # Batch the run of application data through one
                    # unprotect_many (batched AEAD, pool-eligible).
                    end = index + 1
                    while (
                        end < total
                        and records[end].content_type
                        == ContentType.APPLICATION_DATA
                    ):
                        end += 1
                    if end - index > 1:
                        self._process_data_batch(records[index:end])
                        index = end
                        continue
                self._process_record(record)
                index += 1
            self._check_established()
        except (IntegrityError, ProtocolError) as exc:
            # Unparseable or forged input on the primary stream: answer with
            # a fatal alert on whatever plane is live, then shut down.
            self._abort(exc)
        events = self._events
        self._events = []
        return events

    def send_application_data(self, data: bytes) -> None:
        if self.closed:
            raise ProtocolError("cannot send application data on a closed connection")
        if not self.established:
            raise ProtocolError("mbTLS session not yet established")
        if self._plane.write_state is not None:
            self._plane.queue_application_data(data)
        else:
            self.primary.send_application_data(data)
            self._drain_primary()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        alert = Alert.close_notify()
        if self._plane.write_state is not None:
            self._plane.queue_record(ContentType.ALERT, alert.encode())
        else:
            self.primary.close()
            self._drain_primary()
        self._events.append(ConnectionClosed())

    @property
    def middleboxes(self) -> tuple[MiddleboxInfo, ...]:
        """Joined middleboxes in path order from the client."""
        ordered = list(reversed(self._arrival_order))
        return tuple(
            self._middlebox_infos[sub]
            for sub in ordered
            if sub in self._middlebox_infos and not self._secondaries[sub].rejected
        )

    def bypass_pending_middleboxes(
        self, reason: str = "secondary handshake timed out"
    ) -> list[Event]:
        """Give up on middleboxes whose secondary handshakes never finished.

        The paper's middleboxes join *optimistically*; the mirror image is
        that an endpoint must not wait forever for one that stalled or died
        mid-handshake. Each pending subchannel is closed with a fatal alert
        and excluded from the session, and if the primary handshake is done
        the session establishes without them (degraded to the surviving
        path members). Driven by the driver's handshake timer.
        """
        if self.established or self.closed:
            return []
        for sub in self._secondaries.values():
            if sub.complete:
                continue
            sub.complete = True
            sub.rejected = True
            sub.reject_reason = reason
            self.bypassed_subchannels.append(sub.subchannel_id)
            self._note_fallback(sub.subchannel_id, "middlebox_bypassed")
            obs.counter("middleboxes_bypassed", party=self.origin_label).inc()
            obs.tracer().mark(
                "middlebox.bypassed", party=self.origin_label,
                subchannel=sub.subchannel_id, reason=reason,
            )
            self._send_subchannel_alert(sub.subchannel_id)
            self._events.append(
                MiddleboxRejected(subchannel_id=sub.subchannel_id, reason=reason)
            )
        self._check_established()
        events = self._events
        self._events = []
        return events

    def peer_closed(self) -> list[Event]:
        """The TCP stream died under us (crash, reset): report cleanly."""
        if self.closed:
            return []
        self.closed = True
        self._events.append(ConnectionClosed(error="transport closed"))
        events = self._events
        self._events = []
        return events

    # Back-compat alias for pre-contract callers.
    handle_transport_close = peer_closed

    @property
    def resumed(self) -> bool:
        return self.primary.resumed

    @property
    def _data_read(self):
        """The client-adjacent hop read state (None until established)."""
        return self._plane.read_state

    @property
    def _data_write(self):
        """The client-adjacent hop write state (None until established)."""
        return self._plane.write_state

    # ------------------------------------------------------------ internals

    def _drain_primary(self) -> None:
        self._plane.queue_raw(self.primary.data_to_send())

    def _drain_secondary(self, sub: Subchannel) -> None:
        self._plane.queue_raw(sub.drain())

    def _emit_primary_events(self, events: list[Event]) -> None:
        for event in events:
            if isinstance(event, (ApplicationData, AlertReceived, ConnectionClosed)):
                self._events.append(event)
                if isinstance(event, ConnectionClosed):
                    self.closed = True
                    if self.abort is None:
                        self.abort = self.primary.abort
            # HandshakeComplete is folded into SessionEstablished.

    def _abort(self, exc: Exception) -> None:
        """Send a fatal alert for ``exc`` and close (the abort invariant)."""
        if self.closed:
            return
        if isinstance(exc, IntegrityError):
            description = AlertDescription.BAD_RECORD_MAC
        else:
            description = AlertDescription.from_name(
                getattr(exc, "alert", "internal_error")
            )
        name = description.name.lower()
        alert = Alert.fatal(description, origin=self.origin_label)
        try:
            if self._plane.write_state is not None:
                self._plane.queue_record(ContentType.ALERT, alert.encode())
            else:
                # Pre-establishment: the alert travels on the primary stream
                # under whatever protection the primary currently has.
                self.primary._plane.queue_record(ContentType.ALERT, alert.encode())
                self._drain_primary()
        except ProtocolError:
            pass
        self.closed = True
        obs.counter("alerts_sent", origin=self.origin_label, alert=name).inc()
        obs.tracer().end(self._session_span, error=name)
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        self._events.append(
            ConnectionClosed(
                error=f"{name}: {exc}", alert=name, origin=self.origin_label
            )
        )

    def _process_record(self, record: Record) -> None:
        if record.content_type == ContentType.MBTLS_ENCAPSULATED:
            self._process_encapsulated(EncapsulatedRecord.from_record(record))
            return
        if self.established and self._plane.write_state is not None and record.content_type in (
            ContentType.APPLICATION_DATA,
            ContentType.ALERT,
        ):
            self._process_data_record(record)
            return
        events = self.primary.receive_bytes(record.encode())
        self._drain_primary()
        self._emit_primary_events(events)

    def _process_data_batch(self, records: list[Record]) -> None:
        """Decrypt a run of application data in one batched call.

        ``unprotect_many`` is all-or-nothing — no sequence number is
        consumed on failure — so replaying the run per record reproduces
        the serial tamper semantics (drop or abort per policy) exactly.
        """
        try:
            plaintexts = self._plane.unprotect_many(records)
        except IntegrityError:
            for record in records:
                if self.closed:
                    return
                self._process_data_record(record)
            return
        for plaintext in plaintexts:
            if self.closed:
                return
            self._events.append(ApplicationData(data=plaintext))

    def _process_data_record(self, record: Record) -> None:
        try:
            plaintext = self._plane.unprotect(record)
        except IntegrityError as exc:
            if self.config.tamper_policy == "abort":
                self._abort(exc)
            else:
                # Tampered, replayed, or cross-hop record: discard it (P2/P4).
                self.records_dropped += 1
            return
        if record.content_type == ContentType.APPLICATION_DATA:
            self._events.append(ApplicationData(data=plaintext))
        else:
            alert = Alert.decode(plaintext)
            self._events.append(AlertReceived(alert=alert))
            if alert.is_fatal or alert.is_close:
                self.closed = True
                if alert.is_close:
                    self._events.append(ConnectionClosed())
                else:
                    name = alert.description.name.lower()
                    self.abort = SessionAborted(
                        f"peer sent fatal {name}", origin=alert.origin, alert=name
                    )
                    self._events.append(
                        ConnectionClosed(error=name, alert=name, origin=alert.origin)
                    )

    def _process_encapsulated(self, encap: EncapsulatedRecord) -> None:
        sub = self._secondaries.get(encap.subchannel_id)
        if sub is None:
            self._admit_middlebox(encap)
            return
        events = sub.feed_inner(encap.inner)
        self._drain_secondary(sub)
        self._handle_secondary_events(sub, events)

    def _admit_middlebox(self, encap: EncapsulatedRecord) -> None:
        """A middlebox opened a new subchannel with its secondary ServerHello."""
        if self.established or self.primary.handshake_complete:
            # Too late to join; ignore the straggler.
            return
        if len(self._secondaries) >= self.config.max_middleboxes:
            self._send_subchannel_alert(encap.subchannel_id)
            return
        position = len(self._arrival_order)
        candidate = (
            self._resume_candidates[position]
            if position < len(self._resume_candidates)
            else None
        )
        secondary_config = TLSConfig(
            rng=self.config.tls.rng.fork(b"secondary-%d" % encap.subchannel_id),
            trust_store=self.config.secondary_trust_store(),
            server_name=None,
            cipher_suites=self.config.tls.cipher_suites,
            now=self.config.tls.now,
            require_attestation=self.config.require_middlebox_attestation,
            attestation_verifier=self.config.middlebox_attestation_verifier,
            on_secret=self.config.tls.on_secret,
            preset_client_hello=self.primary.first_transcript_message,
            preset_resume_session=candidate.session if candidate else None,
        )
        engine = TLSClientEngine(secondary_config)
        # Metrics attribution only — origin_label stays unset so the
        # wire-visible alert plane is untouched.
        engine._plane.party = f"client:sub{encap.subchannel_id}"
        engine.start()  # enters the preset hello into the transcript
        sub = Subchannel(encap.subchannel_id, engine)
        sub.resume_candidate = candidate
        self._secondaries[encap.subchannel_id] = sub
        self._arrival_order.append(encap.subchannel_id)
        events = sub.feed_inner(encap.inner)
        self._drain_secondary(sub)
        self._handle_secondary_events(sub, events)

    def _handle_secondary_events(self, sub: Subchannel, events: list[Event]) -> None:
        for event in events:
            if isinstance(event, HandshakeComplete):
                sub.complete = True
                measurement = sub.engine.attested_measurement
                candidate = getattr(sub, "resume_candidate", None)
                if measurement is None and sub.engine.resumed and candidate:
                    # §3.5: no fresh attestation on resumption — possession
                    # of the cached secondary master proves it is the same
                    # attested enclave; carry the measurement forward.
                    measurement = candidate.measurement
                info = MiddleboxInfo(
                    subchannel_id=sub.subchannel_id,
                    certificate=sub.engine.peer_certificate,
                    measurement=measurement,
                    discovered=True,
                    known_name=(
                        candidate.name if sub.engine.resumed and candidate else None
                    ),
                )
                self._middlebox_infos[sub.subchannel_id] = info
                if not self.config.approve_middlebox(info):
                    self._reject(sub, "application policy rejected the middlebox")
                else:
                    self._events.append(
                        MiddleboxJoined(
                            subchannel_id=sub.subchannel_id,
                            name=info.name,
                            certificate=info.certificate,
                            measurement=info.measurement,
                        )
                    )
            elif isinstance(event, ConnectionClosed) and not sub.complete:
                sub.rejected = True
                sub.complete = True
                self._note_fallback(sub.subchannel_id, "secondary_failed")
                self._events.append(
                    MiddleboxRejected(
                        subchannel_id=sub.subchannel_id,
                        reason=event.error or "secondary handshake failed",
                    )
                )

    def _reject(self, sub: Subchannel, reason: str) -> None:
        sub.rejected = True
        sub.reject_reason = reason
        self._note_fallback(sub.subchannel_id, "policy_rejected")
        self._send_subchannel_alert(sub.subchannel_id)
        self._events.append(
            MiddleboxRejected(subchannel_id=sub.subchannel_id, reason=reason)
        )

    def _note_fallback(self, subchannel_id: int, reason: str) -> None:
        """Ledger + counter: the session will proceed without this member."""
        self.fallback_decisions.append((subchannel_id, reason))
        obs.counter(
            "session.fallback", party=self.origin_label, reason=reason
        ).inc()

    def _send_subchannel_alert(self, subchannel_id: int) -> None:
        alert = Alert.fatal(AlertDescription.ACCESS_DENIED)
        inner = Record(content_type=ContentType.ALERT, payload=alert.encode())
        self._plane.queue_encoded(
            EncapsulatedRecord(subchannel_id=subchannel_id, inner=inner).to_record()
        )

    def _check_established(self) -> None:
        if self.established or not self.primary.handshake_complete:
            return
        pending = [
            sub for sub in self._secondaries.values() if not sub.complete
        ]
        if pending:
            return
        self._establish()

    def _establish(self) -> None:
        if self.fallback_decisions and not self.config.allow_fallback:
            # Fail closed: an on-path attacker who broke a middlebox's
            # secondary handshake must not be able to force a session on
            # the weakened party set (forced-fallback downgrade).
            reasons = sorted({reason for _, reason in self.fallback_decisions})
            self._abort(
                ProtocolError(
                    "refusing fallback to a degraded path "
                    f"({len(self.fallback_decisions)} middlebox(es) excluded: "
                    f"{', '.join(reasons)})",
                    alert="insufficient_security",
                )
            )
            return
        suite = suite_by_code(self.primary.suite.code)
        active_order = [
            sub_id
            for sub_id in reversed(self._arrival_order)
            if not self._secondaries[sub_id].rejected
        ]
        _, key_block = self.primary.export_key_block()
        bridge = bridge_hop_keys(suite, key_block)
        if active_order:
            hops = build_hop_chain(
                suite,
                len(active_order),
                self.config.tls.rng,
                bridge,
                client_side=True,
            )
            for index, sub_id in enumerate(active_order):
                sub = self._secondaries[sub_id]
                material = KeyMaterial(
                    toward_client=hops[index], toward_server=hops[index + 1]
                )
                sub.engine.send_raw_record(
                    ContentType.MBTLS_KEY_MATERIAL, material.encode_payload()
                )
                sub.keys_sent = True
                self._drain_secondary(sub)
            data_read, data_write = hop_states_for_endpoint(
                suite, hops[0], is_client=True
            )
            self._plane.replace_states(data_read, data_write)
            obs.counter(
                "key_installs", party=self.origin_label, kind="hop",
                suite=suite.name,
            ).inc()
            for hop in hops[:-1]:
                self.config.tls.report_secret("hop_key", hop.client_write_key)
                self.config.tls.report_secret("hop_key", hop.server_write_key)
        self.established = True
        obs.tracer().end(
            self._session_span,
            middleboxes=len(self.middleboxes), resumed=self.primary.resumed,
        )
        self._remember_middlebox_sessions()
        self._events.append(
            SessionEstablished(
                cipher_suite=suite.code,
                middleboxes=self.middleboxes,
                resumed=self.primary.resumed,
            )
        )

    def _remember_middlebox_sessions(self) -> None:
        """Store secondary sessions for §3.5 resumption (arrival order)."""
        store = self.config.middlebox_session_store
        server_name = self.config.tls.server_name
        if store is None or not server_name or self.primary.session_state is None:
            return
        primary_id = self.primary.session_state.session_id
        if not primary_id:
            return
        from repro.tls.session import SessionState

        remembered = []
        for sub_id in self._arrival_order:
            sub = self._secondaries[sub_id]
            if sub.rejected or sub.engine.master_secret is None:
                continue
            info = self._middlebox_infos.get(sub_id)
            remembered.append(
                RememberedMiddlebox(
                    session=SessionState(
                        session_id=primary_id,
                        master_secret=sub.engine.master_secret,
                        cipher_suite=sub.engine.suite.code,
                    ),
                    name=info.name if info else "",
                    measurement=info.measurement if info else None,
                )
            )
        store.remember(server_name, remembered)
