"""mbTLS — the paper's primary contribution.

Endpoints (:class:`MbTLSClientEngine`, :class:`MbTLSServerEngine`) extend
plain TLS 1.2 with in-band middlebox discovery, per-middlebox secondary
handshakes multiplexed over subchannels, optional SGX attestation of
middlebox code, and unique per-hop data keys. :class:`MbTLSMiddlebox` is the
in-path element joining sessions on either the client or the server side.
"""

from repro.core.client import MbTLSClientEngine
from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxConfig,
    MiddleboxInfo,
    MiddleboxRejected,
    MiddleboxRole,
    SessionEstablished,
)
from repro.core.drivers import MiddleboxDriver, MiddleboxService, open_mbtls, serve_mbtls
from repro.core.keys import (
    bridge_hop_keys,
    build_hop_chain,
    generate_hop_keys,
    hop_states_for_endpoint,
    states_from_hop_keys,
)
from repro.core.middlebox import MbTLSMiddlebox
from repro.core.neighbor import KeyDistribution, endpoint_keyed, neighbor_keyed
from repro.core.resumption import MiddleboxSessionStore, RememberedMiddlebox
from repro.core.server import MbTLSServerEngine

__all__ = [
    "MbTLSClientEngine",
    "MbTLSEndpointConfig",
    "MiddleboxConfig",
    "MiddleboxInfo",
    "MiddleboxRejected",
    "MiddleboxRole",
    "SessionEstablished",
    "MiddleboxDriver",
    "MiddleboxService",
    "open_mbtls",
    "serve_mbtls",
    "bridge_hop_keys",
    "build_hop_chain",
    "generate_hop_keys",
    "hop_states_for_endpoint",
    "states_from_hop_keys",
    "MbTLSMiddlebox",
    "KeyDistribution",
    "endpoint_keyed",
    "neighbor_keyed",
    "MiddleboxSessionStore",
    "RememberedMiddlebox",
    "MbTLSServerEngine",
]
