"""Fleet-scale session orchestration: sharded supervisor pools on one clock.

The paper evaluates mbTLS where middleboxes actually live — CDN edges and
enterprise proxies terminating enormous session populations — so the stack
needs to drive far more than one supervised session per scenario.  This
module turns the :class:`~repro.core.drivers.SessionSupervisor` state
machine into a population: a :class:`SessionOrchestrator` owns one
:class:`~repro.netsim.sim.Simulator` (the timer wheel makes 10^5+ live
timers cheap) and splits the fleet into independent **shards**.

Sharding is the determinism boundary, not a threading construct:

* each shard derives its RNG as ``HmacDrbg(seed, personalization=
  b"fleet/shard/<id>")`` — *splitting*, not forking, so the derivation is
  order-independent and any shard's stream can be reconstructed from
  ``(seed, shard_id)`` alone;
* each shard gets its own :class:`~repro.netsim.network.Network` on the
  shared simulator, its own resumption stores (client, middlebox,
  server-side), and its own session ledger;
* shards never exchange state, and admission control is per-shard, so a
  shard replayed alone is byte-identical to the same shard inside a full
  fleet run (the cross-shard event interleaving on the shared clock cannot
  be observed from inside a shard).

Admission control and backpressure: sessions are *submitted* (queued) and
then *admitted* — started — only while the shard has handshake slots free
and no registered middlebox outbox sits above the high watermark of its
4 MiB bound.  Deferred admissions retry on a short timer, so a drained
outbox reopens the gate deterministically.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.core.config import SessionEstablished
from repro.core.drivers import MiddleboxService, SessionSupervisor
from repro.core.resumption import MiddleboxSessionStore
from repro.crypto.drbg import HmacDrbg
from repro.errors import SimulationError
from repro.netsim.network import Network
from repro.netsim.sim import Simulator
from repro.tls.session import ClientSessionStore, ServerSessionCache

__all__ = [
    "CircuitBreaker",
    "FailoverGroup",
    "ResiliencePolicy",
    "RetryBudget",
    "SessionOrchestrator",
    "Shard",
    "shard_rng",
]

#: A supervisor factory: builds a deferred (``start=False``) supervisor
#: wired to the orchestrator's state hook.  The orchestrator starts it
#: once admission control lets it through.
SessionFactory = Callable[
    ["Shard", Callable[[SessionSupervisor, str], None]], SessionSupervisor
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Anti-amplification knobs for a shard's admission and retry path.

    The defaults are the *production-style* policy the chaos bench runs
    under: tight enough that a retry storm against a crashed server is
    cut off within a handful of redials.  They are **not** loose enough
    for an inelastic load generator — a congested churn ramp produces
    legitimate redial bursts that a consecutive-failure breaker cannot
    tell apart from a storm (it has no notion of offered load).  Callers
    replaying fixed arrival plans that must all succeed, like the clean
    ``BENCH_fleet.json`` bench, should pass :meth:`permissive` instead.

    Attributes:
        breaker_failure_threshold: consecutive failures against one
            ``(shard, server)`` before the breaker opens.
        breaker_cooldown: virtual seconds an open breaker waits before
            letting half-open probes through.
        breaker_half_open_probes: concurrent probes allowed while
            half-open; one success closes the breaker, one failure
            re-opens it.
        retry_budget_capacity: token-bucket size for redials against one
            ``(shard, server)``.
        retry_budget_refill_per_sec: tokens regained per virtual second.
        shed_ceiling: admission is *shed* (rejected outright, not
            deferred) while ``inflight/max_inflight + outbox_fill``
            meets this ceiling — deferring under combined overload only
            grows the queue the next fault wave will amplify.
    """

    breaker_failure_threshold: int = 5
    breaker_cooldown: float = 2.0
    breaker_half_open_probes: int = 2
    retry_budget_capacity: float = 6.0
    retry_budget_refill_per_sec: float = 2.0
    shed_ceiling: float = 1.5

    @classmethod
    def permissive(cls) -> "ResiliencePolicy":
        """A policy whose retry gate never denies.

        Backpressure deferral and overload shedding stay armed (they key
        off real queue state, not failure counts); only the breaker and
        budget thresholds are pushed out of reach.  This is what a clean
        churn bench wants: every planned arrival must eventually land,
        so congestion-induced redials are legitimate work, not a storm.
        """
        return cls(
            breaker_failure_threshold=10**9,
            retry_budget_capacity=float("inf"),
        )


class CircuitBreaker:
    """A closed/open/half-open breaker on the virtual clock.

    State machine (transitions counted in ``fleet.breaker_state``):

    * ``closed`` — normal; ``breaker_failure_threshold`` *consecutive*
      failures open it.
    * ``open`` — :meth:`allow` refuses everything until ``breaker_cooldown``
      virtual seconds have passed since opening.
    * ``half_open`` — up to ``breaker_half_open_probes`` calls are let
      through; the first success closes the breaker, the first failure
      re-opens it (and restarts the cooldown).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        clock: Callable[[], float],
        policy: ResiliencePolicy,
        **labels: str,
    ) -> None:
        self._clock = clock
        self._policy = policy
        self._labels = labels
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self._probes = 0
        self.transitions: list[tuple[float, str]] = []

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions.append((self._clock(), state))
        obs.counter("fleet.breaker_state", state=state, **self._labels).inc()

    def _service(self) -> None:
        """Clock-driven transition: open -> half_open after the cooldown."""
        if (
            self.state == self.OPEN
            and self._clock() >= self.opened_at + self._policy.breaker_cooldown
        ):
            self._probes = 0
            self._transition(self.HALF_OPEN)

    def allow(self) -> bool:
        """May another attempt be sent toward this server right now?"""
        self._service()
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            return False
        if self._probes < self._policy.breaker_half_open_probes:
            self._probes += 1
            return True
        return False

    def record_success(self) -> None:
        self._service()
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self._service()
        if self.state == self.HALF_OPEN:
            self.opened_at = self._clock()
            self._transition(self.OPEN)
            return
        if self.state == self.OPEN:
            return  # straggler reports from attempts predating the trip
        self.consecutive_failures += 1
        if self.consecutive_failures >= self._policy.breaker_failure_threshold:
            self.opened_at = self._clock()
            self._transition(self.OPEN)


class RetryBudget:
    """A token bucket on the virtual clock bounding redials per server."""

    def __init__(self, clock: Callable[[], float], policy: ResiliencePolicy) -> None:
        self._clock = clock
        self._capacity = float(policy.retry_budget_capacity)
        self._refill = float(policy.retry_budget_refill_per_sec)
        self.tokens = self._capacity
        self._last = clock()

    def take(self) -> bool:
        """Spend one token; ``False`` means the budget is exhausted."""
        now = self._clock()
        self.tokens = min(
            self._capacity, self.tokens + (now - self._last) * self._refill
        )
        self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class FailoverGroup:
    """A primary/standby middlebox pair sharing identity and session cache.

    The standby is a :class:`~repro.core.drivers.MiddleboxService` built
    with ``active=False`` on a separate host along the same path, using
    the *same* credential and the *same* shard-wide session cache, so
    abbreviated secondary handshakes survive the failover.  On the
    primary's crash the controller drains the primary's dead connections
    and activates the standby; on restart it fails back.
    """

    def __init__(
        self,
        shard_label: str,
        primary: MiddleboxService,
        standby: MiddleboxService,
    ) -> None:
        self.shard_label = shard_label
        self.primary = primary
        self.standby = standby
        self.failovers = 0
        self.failbacks = 0
        self.sessions_drained = 0

    def fail_over(self) -> None:
        """Primary crashed: drain its sessions, promote the standby."""
        if self.standby.active:
            return
        self.sessions_drained += self.primary.drain_sessions()
        self.primary.active = False
        self.standby.reinstall()
        self.failovers += 1
        obs.counter(
            "fleet.failover", shard=self.shard_label, event="activate"
        ).inc()

    def fail_back(self) -> None:
        """Primary restarted: re-register it, demote the standby.

        Sessions split at the standby keep running (uninstall only stops
        new SYNs); new arrivals go through the primary again.
        """
        if not self.standby.active:
            self.primary.reinstall()
            return
        self.primary.reinstall()
        self.standby.uninstall()
        self.failbacks += 1
        obs.counter(
            "fleet.failover", shard=self.shard_label, event="restore"
        ).inc()


def shard_rng(seed: bytes, shard_id: int) -> HmacDrbg:
    """The shard's RNG from ``(seed, shard_id)`` alone.

    Personalization-based *splitting* (unlike :meth:`HmacDrbg.fork`, which
    consumes parent state in call order) keeps the derivation independent
    of how many shards exist or when they are built — the replay property
    the per-shard determinism tests pin.
    """
    return HmacDrbg(seed, personalization=b"fleet/shard/%d" % shard_id)


class Shard:
    """One independent slice of the fleet: network, stores, pool, ledger."""

    def __init__(self, shard_id: int, seed: bytes, sim: Simulator,
                 store_capacity: int = 4096,
                 resilience: ResiliencePolicy | None = None) -> None:
        self.id = shard_id
        self.label = str(shard_id)
        self.rng = shard_rng(seed, shard_id)
        self.network = Network(sim)
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        # Resumption state is shard-wide: every client in the shard shares
        # the stores, so one cold full handshake per server seeds
        # abbreviated handshakes for the rest of the shard's population.
        self.client_sessions = ClientSessionStore(capacity=store_capacity)
        self.middlebox_sessions = MiddleboxSessionStore(
            capacity=store_capacity, shard=self.label
        )
        self.server_cache = ServerSessionCache(capacity=store_capacity)
        self.middlebox_cache = ServerSessionCache(capacity=store_capacity)
        #: Middlebox services watched for outbox backpressure.
        self.services: list[MiddleboxService] = []
        self.failover_groups: list[FailoverGroup] = []
        self.pending: deque[tuple[SessionFactory, dict]] = deque()
        self.inflight = 0  # supervisors between start() and a settled outcome
        self.live = 0  # established sessions not yet closed
        self.peak_live = 0
        self.ledger: list[dict] = []
        self._retry_scheduled = False
        # Anti-amplification state, lazily created per destination server.
        self._breakers: dict[str, CircuitBreaker] = {}
        self._budgets: dict[str, RetryBudget] = {}

    def watch_service(self, service: MiddleboxService) -> None:
        """Register a middlebox service for admission backpressure."""
        self.services.append(service)

    def register_failover(self, group: FailoverGroup) -> None:
        """Adopt a primary/standby pair; both sides feed backpressure."""
        self.failover_groups.append(group)
        for service in (group.primary, group.standby):
            if service not in self.services:
                self.watch_service(service)

    # ------------------------------------------------- anti-amplification

    def breaker(self, server: str) -> CircuitBreaker:
        """The circuit breaker guarding this ``(shard, server)`` pair."""
        instance = self._breakers.get(server)
        if instance is None:
            instance = self._breakers[server] = CircuitBreaker(
                lambda: self.network.sim.now, self.resilience,
                shard=self.label, server=server,
            )
        return instance

    def retry_budget(self, server: str) -> RetryBudget:
        instance = self._budgets.get(server)
        if instance is None:
            instance = self._budgets[server] = RetryBudget(
                lambda: self.network.sim.now, self.resilience
            )
        return instance

    def allow_retry(self, server: str) -> bool:
        """The supervisor retry gate for this shard.

        A redial request *is* a failure report (the previous attempt
        died), so it feeds the breaker before consulting it; then the
        token bucket bounds how fast even a closed breaker lets redials
        through.
        """
        breaker = self.breaker(server)
        breaker.record_failure()
        if not breaker.allow():
            obs.counter(
                "fleet.retry_denied", shard=self.label, reason="breaker"
            ).inc()
            return False
        if not self.retry_budget(server).take():
            obs.counter(
                "fleet.retry_denied", shard=self.label, reason="budget"
            ).inc()
            return False
        return True

    def record_outcome(self, server: str, ok: bool) -> None:
        """Feed a terminal session outcome into the server's breaker."""
        if ok:
            self.breaker(server).record_success()
        else:
            self.breaker(server).record_failure()

    def outbox_fill(self) -> float:
        """Fullest middlebox outbound buffer across the shard (fraction)."""
        return max(
            (service.max_outbox_fill() for service in self.services),
            default=0.0,
        )

    def digest(self) -> str:
        """Canonical hash of this shard's session ledger.

        Derived only from shard-local state (never the global obs plane),
        so it is identical between a full-fleet run and a solo replay of
        this shard from ``(seed, shard_id)``.
        """
        canonical = json.dumps(self.ledger, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


class SessionOrchestrator:
    """Drives sharded supervisor pools with admission control.

    Args:
        seed: fleet master seed; shard RNGs split from it.
        num_shards: independent determinism domains.
        sim: shared simulator (a fresh one with the default timer wheel
            when omitted).
        max_inflight_per_shard: handshake-concurrency cap — how many
            supervisors per shard may sit between dial and outcome.
        outbox_high_watermark: fraction of the 4 MiB middlebox outbox
            bound above which admissions are deferred.
        admission_retry: virtual seconds between admission retries while
            backpressured.
        store_capacity: capacity of each per-shard resumption store.
        resilience: anti-amplification policy shared by every shard
            (breakers, retry budgets, the shed ceiling).
    """

    def __init__(
        self,
        seed: bytes,
        num_shards: int = 4,
        sim: Simulator | None = None,
        max_inflight_per_shard: int = 64,
        outbox_high_watermark: float = 0.75,
        admission_retry: float = 0.005,
        store_capacity: int = 4096,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.seed = seed
        self.sim = sim if sim is not None else Simulator()
        self.max_inflight_per_shard = max_inflight_per_shard
        self.outbox_high_watermark = outbox_high_watermark
        self.admission_retry = admission_retry
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        self.shards = [
            Shard(i, seed, self.sim, store_capacity=store_capacity,
                  resilience=self.resilience)
            for i in range(num_shards)
        ]
        # Supervisor -> (shard, open ledger entry).  Keyed by the object
        # (identity hash) so the supervisor stays alive until it settles.
        self._active: dict[SessionSupervisor, tuple[Shard, dict]] = {}
        #: Highest number of simultaneously-live sessions across the whole
        #: fleet (a true instantaneous maximum, unlike the sum of per-shard
        #: peaks, which may have occurred at different times).
        self.peak_concurrent = 0

    # ------------------------------------------------------------------ API

    def submit(self, shard_id: int, factory: SessionFactory,
               info: dict | None = None) -> None:
        """Queue a session for admission on ``shard_id``.

        ``factory(shard, on_state)`` must return a supervisor built with
        ``start=False`` and the given ``on_state`` hook; the orchestrator
        starts it when a handshake slot is free and backpressure allows.
        ``info`` labels the session in the shard ledger (site, server, …).
        """
        shard = self.shards[shard_id]
        shard.pending.append((factory, dict(info or {})))
        self._admit(shard)

    @property
    def live_sessions(self) -> int:
        return sum(shard.live for shard in self.shards)

    @property
    def peak_live_sessions(self) -> int:
        return sum(shard.peak_live for shard in self.shards)

    def annotate(self, supervisor: SessionSupervisor, **fields) -> None:
        """Attach extra fields to a still-open ledger entry.

        No-op once the session has settled — annotations race only
        against the entry's own close, never corrupt settled history.
        """
        active = self._active.get(supervisor)
        if active is not None:
            active[1].update(fields)

    def drain(self, timeout: float = 600.0) -> None:
        """Run the clock until every submitted session has settled.

        Raises :class:`~repro.errors.SimulationError` carrying per-shard
        stuck-session diagnostics if the fleet has not settled within
        ``timeout`` virtual seconds.
        """

        def settled() -> bool:
            return all(
                not shard.pending and shard.inflight == 0 and shard.live == 0
                for shard in self.shards
            )

        if self.sim.run_until(settled, timeout=timeout) or settled():
            return
        report = self.stuck_report()
        lines = [
            f"fleet drain timed out after {timeout} virtual seconds "
            f"({report['stuck_sessions']} stuck sessions, "
            f"{report['pending_events']} pending events):"
        ]
        for shard_report in report["shards"]:
            lines.append(
                "  shard %s: pending=%d inflight=%d live=%d" % (
                    shard_report["shard"], shard_report["pending"],
                    shard_report["inflight"], shard_report["live"],
                )
            )
            for sup in shard_report["supervisors"]:
                lines.append(
                    "    %s state=%s attempt=%d timers=%d" % (
                        sup["destination"], sup["state"],
                        sup["attempt"], sup["pending_timers"],
                    )
                )
        error = SimulationError("\n".join(lines))
        error.diagnostics = report
        raise error

    def stuck_report(self) -> dict:
        """Per-shard diagnostics for sessions that refuse to settle."""
        shards = []
        stuck = 0
        for shard in self.shards:
            supervisors = []
            for supervisor, (owner, entry) in self._active.items():
                if owner is not shard:
                    continue
                driver = getattr(supervisor, "driver", None)
                timers = 0 if driver is None else driver.pending_timer_count
                supervisors.append({
                    "destination": getattr(supervisor, "destination", "?"),
                    "state": getattr(supervisor, "state", "?"),
                    "attempt": getattr(supervisor, "attempt", 0),
                    "pending_timers": timers,
                    "server": entry.get("server"),
                })
                if len(supervisors) >= 8:
                    break
            stuck += shard.inflight + shard.live + len(shard.pending)
            shards.append({
                "shard": shard.id,
                "pending": len(shard.pending),
                "inflight": shard.inflight,
                "live": shard.live,
                "supervisors": supervisors,
            })
        return {
            "stuck_sessions": stuck,
            "pending_events": self.sim.pending_events,
            "shards": shards,
        }

    def digests(self) -> dict[str, str]:
        """Per-shard ledger digests plus the combined fleet digest."""
        per_shard = {shard.label: shard.digest() for shard in self.shards}
        combined = hashlib.sha256(
            "".join(per_shard[label] for label in sorted(per_shard)).encode()
        ).hexdigest()
        return {"shards": per_shard, "fleet": combined}

    # ------------------------------------------------------------ internals

    def _admit(self, shard: Shard) -> None:
        while shard.pending:
            fill = shard.outbox_fill()
            overload = shard.inflight / self.max_inflight_per_shard + fill
            if overload >= shard.resilience.shed_ceiling:
                # Combined overload: deferring would only grow a queue the
                # next fault wave amplifies, so reject outright.
                factory, info = shard.pending.popleft()
                self._shed(shard, info, reason="overload")
                continue
            if shard.inflight >= self.max_inflight_per_shard:
                break
            if fill >= self.outbox_high_watermark:
                obs.counter(
                    "fleet.admission_deferred", shard=shard.label,
                    reason="backpressure",
                ).inc()
                self._schedule_retry(shard)
                return
            factory, info = shard.pending.popleft()
            server = info.get("server")
            if server is not None and not shard.breaker(server).allow():
                self._shed(shard, info, reason="breaker_open")
                continue
            supervisor = factory(shard, self._on_state)
            if getattr(supervisor, "retry_gate", None) is None:
                supervisor.retry_gate = shard.allow_retry
            entry = {
                **info,
                "shard": shard.id,
                "submitted_at": round(self.sim.now, 9),
            }
            shard.inflight += 1
            self._active[supervisor] = (shard, entry)
            obs.counter("fleet.sessions_admitted", shard=shard.label).inc()
            supervisor.start()
        if shard.pending:
            obs.counter(
                "fleet.admission_deferred", shard=shard.label, reason="capacity"
            ).inc()

    def _shed(self, shard: Shard, info: dict, reason: str) -> None:
        """Reject a submission without admitting it (counted, ledgered)."""
        shard.ledger.append({
            **info,
            "shard": shard.id,
            "submitted_at": round(self.sim.now, 9),
            "outcome": "shed",
            "shed_reason": reason,
        })
        obs.counter("fleet.shed", shard=shard.label, reason=reason).inc()

    def _schedule_retry(self, shard: Shard) -> None:
        if shard._retry_scheduled:
            return
        shard._retry_scheduled = True

        def retry() -> None:
            shard._retry_scheduled = False
            self._admit(shard)

        self.sim.schedule(self.admission_retry, retry)

    def _on_state(self, supervisor: SessionSupervisor, state: str) -> None:
        active = self._active.get(supervisor)
        if active is None:
            return
        shard, entry = active
        if state in ("established", "degraded"):
            shard.inflight -= 1
            shard.live += 1
            if shard.live > shard.peak_live:
                shard.peak_live = shard.live
            total_live = self.live_sessions
            if total_live > self.peak_concurrent:
                self.peak_concurrent = total_live
            entry["outcome"] = state
            entry["attempts"] = supervisor.attempt
            entry["resumed"] = self._resumed(supervisor)
            latency = supervisor.handshake_latency
            entry["handshake_seconds"] = (
                None if latency is None else round(latency, 9)
            )
            obs.gauge("fleet.live_sessions", shard=shard.label).set(shard.live)
            obs.histogram("fleet.handshake_seconds", shard=shard.label).observe(
                latency if latency is not None else 0.0
            )
            server = entry.get("server")
            if server is not None:
                shard.record_outcome(server, ok=True)
            self._admit(shard)
        elif state in ("failed", "aborted"):
            shard.inflight -= 1
            entry.setdefault("outcome", state)
            entry["attempts"] = supervisor.attempt
            entry["failure"] = supervisor.failure
            server = entry.get("server")
            if server is not None:
                shard.record_outcome(server, ok=False)
            self._settle(shard, supervisor, entry)
            self._admit(shard)
        elif state == "closed":
            shard.live -= 1
            entry["closed_at"] = round(self.sim.now, 9)
            obs.gauge("fleet.live_sessions", shard=shard.label).set(shard.live)
            self._settle(shard, supervisor, entry)

    @staticmethod
    def _resumed(supervisor: SessionSupervisor) -> bool:
        for event in reversed(supervisor.events):
            if isinstance(event, SessionEstablished):
                return bool(getattr(event, "resumed", False))
        return False

    def _settle(self, shard: Shard, supervisor: SessionSupervisor,
                entry: dict) -> None:
        self._active.pop(supervisor, None)
        shard.ledger.append(entry)
