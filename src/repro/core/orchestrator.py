"""Fleet-scale session orchestration: sharded supervisor pools on one clock.

The paper evaluates mbTLS where middleboxes actually live — CDN edges and
enterprise proxies terminating enormous session populations — so the stack
needs to drive far more than one supervised session per scenario.  This
module turns the :class:`~repro.core.drivers.SessionSupervisor` state
machine into a population: a :class:`SessionOrchestrator` owns one
:class:`~repro.netsim.sim.Simulator` (the timer wheel makes 10^5+ live
timers cheap) and splits the fleet into independent **shards**.

Sharding is the determinism boundary, not a threading construct:

* each shard derives its RNG as ``HmacDrbg(seed, personalization=
  b"fleet/shard/<id>")`` — *splitting*, not forking, so the derivation is
  order-independent and any shard's stream can be reconstructed from
  ``(seed, shard_id)`` alone;
* each shard gets its own :class:`~repro.netsim.network.Network` on the
  shared simulator, its own resumption stores (client, middlebox,
  server-side), and its own session ledger;
* shards never exchange state, and admission control is per-shard, so a
  shard replayed alone is byte-identical to the same shard inside a full
  fleet run (the cross-shard event interleaving on the shared clock cannot
  be observed from inside a shard).

Admission control and backpressure: sessions are *submitted* (queued) and
then *admitted* — started — only while the shard has handshake slots free
and no registered middlebox outbox sits above the high watermark of its
4 MiB bound.  Deferred admissions retry on a short timer, so a drained
outbox reopens the gate deterministically.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Callable

from repro import obs
from repro.core.config import SessionEstablished
from repro.core.drivers import MiddleboxService, SessionSupervisor
from repro.core.resumption import MiddleboxSessionStore
from repro.crypto.drbg import HmacDrbg
from repro.netsim.network import Network
from repro.netsim.sim import Simulator
from repro.tls.session import ClientSessionStore, ServerSessionCache

__all__ = ["SessionOrchestrator", "Shard", "shard_rng"]

#: A supervisor factory: builds a deferred (``start=False``) supervisor
#: wired to the orchestrator's state hook.  The orchestrator starts it
#: once admission control lets it through.
SessionFactory = Callable[
    ["Shard", Callable[[SessionSupervisor, str], None]], SessionSupervisor
]


def shard_rng(seed: bytes, shard_id: int) -> HmacDrbg:
    """The shard's RNG from ``(seed, shard_id)`` alone.

    Personalization-based *splitting* (unlike :meth:`HmacDrbg.fork`, which
    consumes parent state in call order) keeps the derivation independent
    of how many shards exist or when they are built — the replay property
    the per-shard determinism tests pin.
    """
    return HmacDrbg(seed, personalization=b"fleet/shard/%d" % shard_id)


class Shard:
    """One independent slice of the fleet: network, stores, pool, ledger."""

    def __init__(self, shard_id: int, seed: bytes, sim: Simulator,
                 store_capacity: int = 4096) -> None:
        self.id = shard_id
        self.label = str(shard_id)
        self.rng = shard_rng(seed, shard_id)
        self.network = Network(sim)
        # Resumption state is shard-wide: every client in the shard shares
        # the stores, so one cold full handshake per server seeds
        # abbreviated handshakes for the rest of the shard's population.
        self.client_sessions = ClientSessionStore(capacity=store_capacity)
        self.middlebox_sessions = MiddleboxSessionStore(
            capacity=store_capacity, shard=self.label
        )
        self.server_cache = ServerSessionCache(capacity=store_capacity)
        self.middlebox_cache = ServerSessionCache(capacity=store_capacity)
        #: Middlebox services watched for outbox backpressure.
        self.services: list[MiddleboxService] = []
        self.pending: deque[tuple[SessionFactory, dict]] = deque()
        self.inflight = 0  # supervisors between start() and a settled outcome
        self.live = 0  # established sessions not yet closed
        self.peak_live = 0
        self.ledger: list[dict] = []
        self._retry_scheduled = False

    def watch_service(self, service: MiddleboxService) -> None:
        """Register a middlebox service for admission backpressure."""
        self.services.append(service)

    def outbox_fill(self) -> float:
        """Fullest middlebox outbound buffer across the shard (fraction)."""
        return max(
            (service.max_outbox_fill() for service in self.services),
            default=0.0,
        )

    def digest(self) -> str:
        """Canonical hash of this shard's session ledger.

        Derived only from shard-local state (never the global obs plane),
        so it is identical between a full-fleet run and a solo replay of
        this shard from ``(seed, shard_id)``.
        """
        canonical = json.dumps(self.ledger, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


class SessionOrchestrator:
    """Drives sharded supervisor pools with admission control.

    Args:
        seed: fleet master seed; shard RNGs split from it.
        num_shards: independent determinism domains.
        sim: shared simulator (a fresh one with the default timer wheel
            when omitted).
        max_inflight_per_shard: handshake-concurrency cap — how many
            supervisors per shard may sit between dial and outcome.
        outbox_high_watermark: fraction of the 4 MiB middlebox outbox
            bound above which admissions are deferred.
        admission_retry: virtual seconds between admission retries while
            backpressured.
        store_capacity: capacity of each per-shard resumption store.
    """

    def __init__(
        self,
        seed: bytes,
        num_shards: int = 4,
        sim: Simulator | None = None,
        max_inflight_per_shard: int = 64,
        outbox_high_watermark: float = 0.75,
        admission_retry: float = 0.005,
        store_capacity: int = 4096,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.seed = seed
        self.sim = sim if sim is not None else Simulator()
        self.max_inflight_per_shard = max_inflight_per_shard
        self.outbox_high_watermark = outbox_high_watermark
        self.admission_retry = admission_retry
        self.shards = [
            Shard(i, seed, self.sim, store_capacity=store_capacity)
            for i in range(num_shards)
        ]
        # Supervisor -> (shard, open ledger entry).  Keyed by the object
        # (identity hash) so the supervisor stays alive until it settles.
        self._active: dict[SessionSupervisor, tuple[Shard, dict]] = {}
        #: Highest number of simultaneously-live sessions across the whole
        #: fleet (a true instantaneous maximum, unlike the sum of per-shard
        #: peaks, which may have occurred at different times).
        self.peak_concurrent = 0

    # ------------------------------------------------------------------ API

    def submit(self, shard_id: int, factory: SessionFactory,
               info: dict | None = None) -> None:
        """Queue a session for admission on ``shard_id``.

        ``factory(shard, on_state)`` must return a supervisor built with
        ``start=False`` and the given ``on_state`` hook; the orchestrator
        starts it when a handshake slot is free and backpressure allows.
        ``info`` labels the session in the shard ledger (site, server, …).
        """
        shard = self.shards[shard_id]
        shard.pending.append((factory, dict(info or {})))
        self._admit(shard)

    @property
    def live_sessions(self) -> int:
        return sum(shard.live for shard in self.shards)

    @property
    def peak_live_sessions(self) -> int:
        return sum(shard.peak_live for shard in self.shards)

    def drain(self, timeout: float = 600.0) -> None:
        """Run the clock until every submitted session has settled."""

        def settled() -> bool:
            return all(
                not shard.pending and shard.inflight == 0 and shard.live == 0
                for shard in self.shards
            )

        self.sim.run_until(settled, timeout=timeout)

    def digests(self) -> dict[str, str]:
        """Per-shard ledger digests plus the combined fleet digest."""
        per_shard = {shard.label: shard.digest() for shard in self.shards}
        combined = hashlib.sha256(
            "".join(per_shard[label] for label in sorted(per_shard)).encode()
        ).hexdigest()
        return {"shards": per_shard, "fleet": combined}

    # ------------------------------------------------------------ internals

    def _admit(self, shard: Shard) -> None:
        while shard.pending and shard.inflight < self.max_inflight_per_shard:
            if shard.outbox_fill() >= self.outbox_high_watermark:
                obs.counter(
                    "fleet.admission_deferred", shard=shard.label,
                    reason="backpressure",
                ).inc()
                self._schedule_retry(shard)
                return
            factory, info = shard.pending.popleft()
            supervisor = factory(shard, self._on_state)
            entry = {
                **info,
                "shard": shard.id,
                "submitted_at": round(self.sim.now, 9),
            }
            shard.inflight += 1
            self._active[supervisor] = (shard, entry)
            obs.counter("fleet.sessions_admitted", shard=shard.label).inc()
            supervisor.start()
        if shard.pending:
            obs.counter(
                "fleet.admission_deferred", shard=shard.label, reason="capacity"
            ).inc()

    def _schedule_retry(self, shard: Shard) -> None:
        if shard._retry_scheduled:
            return
        shard._retry_scheduled = True

        def retry() -> None:
            shard._retry_scheduled = False
            self._admit(shard)

        self.sim.schedule(self.admission_retry, retry)

    def _on_state(self, supervisor: SessionSupervisor, state: str) -> None:
        active = self._active.get(supervisor)
        if active is None:
            return
        shard, entry = active
        if state in ("established", "degraded"):
            shard.inflight -= 1
            shard.live += 1
            if shard.live > shard.peak_live:
                shard.peak_live = shard.live
            total_live = self.live_sessions
            if total_live > self.peak_concurrent:
                self.peak_concurrent = total_live
            entry["outcome"] = state
            entry["attempts"] = supervisor.attempt
            entry["resumed"] = self._resumed(supervisor)
            latency = supervisor.handshake_latency
            entry["handshake_seconds"] = (
                None if latency is None else round(latency, 9)
            )
            obs.gauge("fleet.live_sessions", shard=shard.label).set(shard.live)
            obs.histogram("fleet.handshake_seconds", shard=shard.label).observe(
                latency if latency is not None else 0.0
            )
            self._admit(shard)
        elif state in ("failed", "aborted"):
            shard.inflight -= 1
            entry.setdefault("outcome", state)
            entry["attempts"] = supervisor.attempt
            entry["failure"] = supervisor.failure
            self._settle(shard, supervisor, entry)
            self._admit(shard)
        elif state == "closed":
            shard.live -= 1
            entry["closed_at"] = round(self.sim.now, 9)
            obs.gauge("fleet.live_sessions", shard=shard.label).set(shard.live)
            self._settle(shard, supervisor, entry)

    @staticmethod
    def _resumed(supervisor: SessionSupervisor) -> bool:
        for event in reversed(supervisor.events):
            if isinstance(event, SessionEstablished):
                return bool(getattr(event, "resumed", False))
        return False

    def _settle(self, shard: Shard, supervisor: SessionSupervisor,
                entry: dict) -> None:
        self._active.pop(supervisor, None)
        shard.ledger.append(entry)
