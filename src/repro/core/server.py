"""The mbTLS server endpoint (§3.4).

Wraps a primary TLS server engine and adds:

* acceptance of optimistic ``MiddleboxAnnouncement`` records from
  server-side middleboxes (each on its own subchannel);
* a secondary TLS handshake per announced middlebox, with the *server*
  playing the TLS client role (this is why Figure 5 shows server cost
  growing by roughly one client-handshake — ~20% — per middlebox);
* per-hop key generation for the server side of the path and the
  server-side data plane.

A legacy TLS server would instead ignore (or choke on) the announcements —
that behaviour lives in the plain :class:`~repro.tls.engine.TLSServerEngine`
via ``ignore_unknown_records``.
"""

from __future__ import annotations

from repro.core.config import (
    MbTLSEndpointConfig,
    MiddleboxInfo,
    MiddleboxRejected,
    SessionEstablished,
)
from repro.core.keys import build_hop_chain, bridge_hop_keys, hop_states_for_endpoint
from repro.core.mux import Subchannel
from repro import obs
from repro.errors import DecodeError, IntegrityError, ProtocolError, SessionAborted
from repro.io.record_plane import RecordPlane
from repro.tls.ciphersuites import suite_by_code
from repro.tls.config import TLSConfig
from repro.tls.engine import TLSClientEngine, TLSServerEngine
from repro.tls.events import (
    AlertReceived,
    AnnouncementReceived,
    ApplicationData,
    ConnectionClosed,
    Event,
    HandshakeComplete,
    MiddleboxJoined,
)
from repro.wire.alerts import Alert, AlertDescription
from repro.wire.mbtls import EncapsulatedRecord, KeyMaterial, MiddleboxAnnouncement
from repro.wire.records import ContentType, Record

__all__ = ["MbTLSServerEngine"]


class MbTLSServerEngine:
    """Sans-IO mbTLS server."""

    is_client = False

    def __init__(self, config: MbTLSEndpointConfig) -> None:
        self.config = config
        self.primary = TLSServerEngine(config.tls)
        # The plane's read/write states are the server-adjacent hop keys,
        # installed at establishment; before that everything is forwarded raw.
        self._plane = RecordPlane()
        self._events: list[Event] = []
        self._secondaries: dict[int, Subchannel] = {}
        self._arrival_order: list[int] = []
        self._middlebox_infos: dict[int, MiddleboxInfo] = {}
        self._announcement_window_open = True
        self.established = False
        self.closed = False
        self._pending_app_data: list[bytes] = []
        self.records_dropped = 0
        # Alert-plane attribution (see DESIGN.md §9).
        self.origin_label = "server"
        self.primary.origin_label = self.origin_label
        self._plane.party = self.origin_label
        self._session_span = None
        self.abort: SessionAborted | None = None
        # Subchannels abandoned because their middlebox stalled or died
        # mid-handshake (graceful degradation, not rejection-by-policy).
        self.bypassed_subchannels: list[int] = []
        # Every decision to proceed without a path member, as
        # (subchannel_id, reason) — the downgrade-visibility ledger.
        self.fallback_decisions: list[tuple[int, str]] = []

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        self._session_span = obs.tracer().begin(
            "handshake.mbtls", party=self.origin_label)
        self.primary.start()

    def data_to_send(self) -> bytes:
        return self._plane.data_to_send()

    def receive_bytes(self, data: bytes) -> list[Event]:
        if self.closed:
            return []
        try:
            self._plane.feed(data)
            for record in self._plane.pop_records():
                self._process_record(record)
            self._check_established()
        except (IntegrityError, ProtocolError) as exc:
            # Unparseable or forged input on the primary stream: answer with
            # a fatal alert on whatever plane is live, then shut down.
            self._abort(exc)
        events = self._events
        self._events = []
        return events

    def _abort(self, exc: Exception) -> None:
        """Send a fatal alert for ``exc`` and close (the abort invariant)."""
        if self.closed:
            return
        if isinstance(exc, IntegrityError):
            description = AlertDescription.BAD_RECORD_MAC
        else:
            description = AlertDescription.from_name(
                getattr(exc, "alert", "internal_error")
            )
        name = description.name.lower()
        alert = Alert.fatal(description, origin=self.origin_label)
        try:
            if self._plane.write_state is not None:
                self._plane.queue_record(ContentType.ALERT, alert.encode())
            else:
                self.primary._plane.queue_record(ContentType.ALERT, alert.encode())
                self._drain_primary()
        except ProtocolError:
            pass
        self.closed = True
        obs.counter("alerts_sent", origin=self.origin_label, alert=name).inc()
        obs.tracer().end(self._session_span, error=name)
        self.abort = SessionAborted(str(exc), origin=self.origin_label, alert=name)
        self._events.append(
            ConnectionClosed(
                error=f"{name}: {exc}", alert=name, origin=self.origin_label
            )
        )

    def send_application_data(self, data: bytes) -> None:
        if self.closed:
            raise ProtocolError("cannot send application data on a closed connection")
        if not self.established:
            # §3.5 False-Start territory: queue until keys are distributed.
            self._pending_app_data.append(bytes(data))
            return
        self._send_app_now(data)

    def _send_app_now(self, data: bytes) -> None:
        if self._plane.write_state is not None:
            self._plane.queue_application_data(data)
        else:
            self.primary.send_application_data(data)
            self._drain_primary()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        alert = Alert.close_notify()
        if self._plane.write_state is not None:
            self._plane.queue_record(ContentType.ALERT, alert.encode())
        else:
            self.primary.close()
            self._drain_primary()
        self._events.append(ConnectionClosed())

    @property
    def middleboxes(self) -> tuple[MiddleboxInfo, ...]:
        """Joined middleboxes in path order from the client.

        Each middlebox emits its own announcement before relaying those of
        middleboxes upstream (closer to the client), so announcements reach
        the server nearest-server-first; path order is the reverse.
        """
        return tuple(
            self._middlebox_infos[sub]
            for sub in reversed(self._arrival_order)
            if sub in self._middlebox_infos and not self._secondaries[sub].rejected
        )

    @property
    def resumed(self) -> bool:
        return self.primary.resumed

    @property
    def _data_read(self):
        """The server-adjacent hop read state (None until established)."""
        return self._plane.read_state

    @property
    def _data_write(self):
        """The server-adjacent hop write state (None until established)."""
        return self._plane.write_state

    def bypass_pending_middleboxes(
        self, reason: str = "secondary handshake timed out"
    ) -> list[Event]:
        """Exclude middleboxes that announced but never finished their
        secondary handshake, and establish without them if the primary is
        done (graceful degradation; driven by the driver's timer)."""
        if self.established or self.closed:
            return []
        for sub in self._secondaries.values():
            if sub.complete:
                continue
            sub.complete = True
            sub.rejected = True
            sub.reject_reason = reason
            self.bypassed_subchannels.append(sub.subchannel_id)
            self._note_fallback(sub.subchannel_id, "middlebox_bypassed")
            obs.counter("middleboxes_bypassed", party=self.origin_label).inc()
            obs.tracer().mark(
                "middlebox.bypassed", party=self.origin_label,
                subchannel=sub.subchannel_id, reason=reason,
            )
            self._events.append(
                MiddleboxRejected(subchannel_id=sub.subchannel_id, reason=reason)
            )
        self._check_established()
        events = self._events
        self._events = []
        return events

    def peer_closed(self) -> list[Event]:
        """The TCP stream died under us (crash, reset): report cleanly."""
        if self.closed:
            return []
        self.closed = True
        self._events.append(ConnectionClosed(error="transport closed"))
        events = self._events
        self._events = []
        return events

    # Back-compat alias for pre-contract callers.
    handle_transport_close = peer_closed

    # ------------------------------------------------------------ internals

    def _drain_primary(self) -> None:
        self._plane.queue_raw(self.primary.data_to_send())

    def _drain_secondary(self, sub: Subchannel) -> None:
        self._plane.queue_raw(sub.drain())

    def _process_record(self, record: Record) -> None:
        if record.content_type == ContentType.MBTLS_ENCAPSULATED:
            self._process_encapsulated(EncapsulatedRecord.from_record(record))
            return
        if self.established and self._plane.write_state is not None and record.content_type in (
            ContentType.APPLICATION_DATA,
            ContentType.ALERT,
        ):
            self._process_data_record(record)
            return
        events = self.primary.receive_bytes(record.encode())
        self._drain_primary()
        for event in events:
            if isinstance(event, (ApplicationData, AlertReceived, ConnectionClosed)):
                self._events.append(event)
                if isinstance(event, ConnectionClosed):
                    self.closed = True
                    if self.abort is None:
                        self.abort = self.primary.abort

    def _process_data_record(self, record: Record) -> None:
        try:
            plaintext = self._plane.unprotect(record)
        except IntegrityError as exc:
            if self.config.tamper_policy == "abort":
                self._abort(exc)
            else:
                # Tampered, replayed, or cross-hop record: discard it (P2/P4).
                self.records_dropped += 1
            return
        if record.content_type == ContentType.APPLICATION_DATA:
            self._events.append(ApplicationData(data=plaintext))
        else:
            alert = Alert.decode(plaintext)
            self._events.append(AlertReceived(alert=alert))
            if alert.is_fatal or alert.is_close:
                self.closed = True
                if alert.is_close:
                    self._events.append(ConnectionClosed())
                else:
                    name = alert.description.name.lower()
                    self.abort = SessionAborted(
                        f"peer sent fatal {name}", origin=alert.origin, alert=name
                    )
                    self._events.append(
                        ConnectionClosed(error=name, alert=name, origin=alert.origin)
                    )

    def _process_encapsulated(self, encap: EncapsulatedRecord) -> None:
        sub = self._secondaries.get(encap.subchannel_id)
        if sub is None:
            self._handle_announcement(encap)
            return
        events = sub.feed_inner(encap.inner)
        self._drain_secondary(sub)
        self._handle_secondary_events(sub, events)

    def _handle_announcement(self, encap: EncapsulatedRecord) -> None:
        try:
            MiddleboxAnnouncement.from_record(encap.inner)
        except DecodeError:
            return  # not an announcement: stray subchannel traffic; drop
        if (
            not self.config.accept_announcements
            or not self._announcement_window_open
            or len(self._secondaries) >= self.config.max_middleboxes
        ):
            return  # behave like a legacy server: silently ignore (§3.4)
        self._events.append(AnnouncementReceived(subchannel_id=encap.subchannel_id))
        secondary_config = TLSConfig(
            rng=self.config.tls.rng.fork(b"secondary-%d" % encap.subchannel_id),
            trust_store=self.config.secondary_trust_store(),
            server_name=None,
            cipher_suites=self.config.tls.cipher_suites,
            now=self.config.tls.now,
            require_attestation=self.config.require_middlebox_attestation,
            attestation_verifier=self.config.middlebox_attestation_verifier,
            on_secret=self.config.tls.on_secret,
        )
        engine = TLSClientEngine(secondary_config)
        # Metrics attribution only — origin_label stays unset so the
        # wire-visible alert plane is untouched.
        engine._plane.party = f"server:sub{encap.subchannel_id}"
        engine.start()  # the server initiates: it is the TLS client here
        sub = Subchannel(encap.subchannel_id, engine)
        self._secondaries[encap.subchannel_id] = sub
        self._arrival_order.append(encap.subchannel_id)
        self._drain_secondary(sub)

    def _handle_secondary_events(self, sub: Subchannel, events: list[Event]) -> None:
        for event in events:
            if isinstance(event, HandshakeComplete):
                sub.complete = True
                info = MiddleboxInfo(
                    subchannel_id=sub.subchannel_id,
                    certificate=sub.engine.peer_certificate,
                    measurement=sub.engine.attested_measurement,
                    discovered=True,
                )
                self._middlebox_infos[sub.subchannel_id] = info
                if not self.config.approve_middlebox(info):
                    sub.rejected = True
                    self._note_fallback(sub.subchannel_id, "policy_rejected")
                    self._events.append(
                        MiddleboxRejected(
                            subchannel_id=sub.subchannel_id,
                            reason="application policy rejected the middlebox",
                        )
                    )
                else:
                    self._events.append(
                        MiddleboxJoined(
                            subchannel_id=sub.subchannel_id,
                            name=info.name,
                            certificate=info.certificate,
                            measurement=info.measurement,
                        )
                    )
            elif isinstance(event, ConnectionClosed) and not sub.complete:
                sub.rejected = True
                sub.complete = True
                self._note_fallback(sub.subchannel_id, "secondary_failed")
                self._events.append(
                    MiddleboxRejected(
                        subchannel_id=sub.subchannel_id,
                        reason=event.error or "secondary handshake failed",
                    )
                )

    def _note_fallback(self, subchannel_id: int, reason: str) -> None:
        """Ledger + counter: the session will proceed without this member."""
        self.fallback_decisions.append((subchannel_id, reason))
        obs.counter(
            "session.fallback", party=self.origin_label, reason=reason
        ).inc()

    def _check_established(self) -> None:
        if self.established or not self.primary.handshake_complete:
            return
        # Snapshot: anything not announced by primary completion is too late.
        self._announcement_window_open = False
        if any(not sub.complete for sub in self._secondaries.values()):
            return
        self._establish()

    def _establish(self) -> None:
        if self.fallback_decisions and not self.config.allow_fallback:
            # Fail closed: see the client-side twin of this gate.
            reasons = sorted({reason for _, reason in self.fallback_decisions})
            self._abort(
                ProtocolError(
                    "refusing fallback to a degraded path "
                    f"({len(self.fallback_decisions)} middlebox(es) excluded: "
                    f"{', '.join(reasons)})",
                    alert="insufficient_security",
                )
            )
            return
        suite = suite_by_code(self.primary.suite.code)
        # Path order from the client = reversed announcement arrival order
        # (see the `middleboxes` property).
        active_order = [
            sub_id
            for sub_id in reversed(self._arrival_order)
            if not self._secondaries[sub_id].rejected
        ]
        _, key_block = self.primary.export_key_block()
        bridge = bridge_hop_keys(suite, key_block)
        if active_order:
            hops = build_hop_chain(
                suite,
                len(active_order),
                self.config.tls.rng,
                bridge,
                client_side=False,
            )
            for index, sub_id in enumerate(active_order):
                sub = self._secondaries[sub_id]
                material = KeyMaterial(
                    toward_client=hops[index], toward_server=hops[index + 1]
                )
                sub.engine.send_raw_record(
                    ContentType.MBTLS_KEY_MATERIAL, material.encode_payload()
                )
                sub.keys_sent = True
                self._drain_secondary(sub)
            data_read, data_write = hop_states_for_endpoint(
                suite, hops[-1], is_client=False
            )
            self._plane.replace_states(data_read, data_write)
            obs.counter(
                "key_installs", party=self.origin_label, kind="hop",
                suite=suite.name,
            ).inc()
            for hop in hops[1:]:
                self.config.tls.report_secret("hop_key", hop.client_write_key)
                self.config.tls.report_secret("hop_key", hop.server_write_key)
        self.established = True
        obs.tracer().end(
            self._session_span,
            middleboxes=len(self.middleboxes), resumed=self.primary.resumed,
        )
        self._events.append(
            SessionEstablished(
                cipher_suite=suite.code,
                middleboxes=self.middleboxes,
                resumed=self.primary.resumed,
            )
        )
        for data in self._pending_app_data:
            self._send_app_now(data)
        self._pending_app_data.clear()
