"""mbTLS session resumption (§3.5).

Resuming an mbTLS session replaces every sub-handshake — the primary and
each secondary — with an abbreviated handshake. The coordination trick:
the primary ClientHello's session ID does double duty just like the hello
itself, so

* the client remembers, per server, the secondary session of each
  middlebox (in discovery-arrival order), keyed by the primary session ID;
* each middlebox caches its secondary session state under the *primary*
  session ID it observed in the primary ServerHello;
* on resumption the middlebox finds the offered primary ID in its cache
  and answers with an abbreviated secondary handshake.

No fresh attestation is needed on resumption (the paper's argument):
possession of the cached secondary master secret proves the peer is the
same attested enclave, so the client carries the middlebox's measurement
forward from the original session — it is stored in the remembered state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro import obs
from repro.tls.session import SessionState

__all__ = ["RememberedMiddlebox", "MiddleboxSessionStore"]


@dataclass(frozen=True)
class RememberedMiddlebox:
    """What the client keeps about one middlebox's secondary session."""

    session: SessionState
    name: str
    measurement: bytes | None


class MiddleboxSessionStore:
    """Client-side memory of middlebox secondary sessions, per server.

    Fleet shards each own a store; ``shard`` labels the obs counters
    (size, resumption hit/miss, evictions) so the fleet report can read a
    per-shard resumption hit-rate.  Label cardinality stays bounded: one
    label value per shard, not per session.
    """

    def __init__(self, capacity: int = 256, shard: str = "0") -> None:
        self._capacity = capacity
        self._shard = shard
        self._entries: OrderedDict[str, list[RememberedMiddlebox]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def remember(self, server_name: str, middleboxes: list[RememberedMiddlebox]) -> None:
        self._entries[server_name] = list(middleboxes)
        self._entries.move_to_end(server_name)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            obs.counter("mb_session_store.evictions", shard=self._shard).inc()
        obs.gauge("mb_session_store.size", shard=self._shard).set(len(self._entries))

    def lookup(self, server_name: str) -> list[RememberedMiddlebox]:
        entry = self._entries.get(server_name)
        if entry is None:
            obs.counter("mb_session_store.misses", shard=self._shard).inc()
            return []
        # A hit is a use: refresh recency so eviction drops the coldest
        # server, not the most-resumed one.
        self._entries.move_to_end(server_name)
        obs.counter("mb_session_store.hits", shard=self._shard).inc()
        return list(entry)

    def forget(self, server_name: str) -> None:
        if self._entries.pop(server_name, None) is not None:
            obs.gauge("mb_session_store.size", shard=self._shard).set(len(self._entries))
