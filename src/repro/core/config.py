"""Configuration and event types for the mbTLS endpoints and middleboxes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.pki.certificate import Certificate
from repro.pki.store import TrustStore
from repro.tls.config import TLSConfig
from repro.tls.events import Event

__all__ = [
    "MiddleboxInfo",
    "MbTLSEndpointConfig",
    "MiddleboxRole",
    "MiddleboxConfig",
    "SessionEstablished",
    "MiddleboxRejected",
]


@dataclass(frozen=True)
class MiddleboxInfo:
    """What an endpoint learns about a middlebox that joined its session.

    On a resumed session no certificate crosses the wire; ``known_name``
    carries the identity remembered from the original handshake (§3.5).
    """

    subchannel_id: int
    certificate: Certificate | None
    measurement: bytes | None
    discovered: bool
    known_name: str | None = None

    @property
    def name(self) -> str:
        if self.certificate is not None:
            return self.certificate.subject
        if self.known_name:
            return self.known_name
        return "<unauthenticated>"


@dataclass(frozen=True)
class SessionEstablished(Event):
    """The mbTLS session is fully set up: keys distributed, data may flow.

    Attributes:
        cipher_suite: the primary session's suite.
        middleboxes: this endpoint's middleboxes, in path order from the
            client side.
        resumed: whether the primary handshake was abbreviated.
    """

    cipher_suite: int
    middleboxes: tuple[MiddleboxInfo, ...]
    resumed: bool = False


@dataclass(frozen=True)
class MiddleboxRejected(Event):
    """A middlebox failed authentication/approval and was excluded."""

    subchannel_id: int
    reason: str


@dataclass
class MbTLSEndpointConfig:
    """Configuration for an mbTLS client or server endpoint.

    Attributes:
        tls: the primary-session TLS configuration (randomness, credential,
            trust store, server name, suites, resumption stores ...).
        middlebox_trust_store: roots for validating middlebox certificates
            (defaults to ``tls.trust_store``).
        require_middlebox_attestation: demand a valid SGX quote from every
            middlebox before giving it session keys (the outsourced-
            middlebox deployment of §3.2).
        middlebox_attestation_verifier: verifier for middlebox quotes.
        approve_middlebox: policy callback deciding whether an authenticated
            middlebox may join (default: accept). This is the "application
            approval" hook of §3.4.
        preconfigured_middleboxes: middlebox addresses known a priori,
            listed in the MiddleboxSupport extension (client only).
        accept_announcements: server only: expect and accept server-side
            middlebox announcements.
        max_middleboxes: safety cap on how many middleboxes may join.
        tamper_policy: what the data plane does with a record failing AEAD
            verification: ``"drop"`` discards it and counts it in
            ``records_dropped`` (the paper's forward-progress behaviour),
            ``"abort"`` originates a fatal ``bad_record_mac`` alert and
            tears the session down (classic TLS behaviour).
        allow_fallback: may the session establish after *excluding* path
            members (bypassed, failed, or policy-rejected middleboxes)?
            ``True`` is the paper's optimistic behaviour; every such
            fallback decision is still recorded as a ``session.fallback``
            counter. ``False`` fails closed: establishing on the weakened
            path is refused with a fatal ``insufficient_security`` alert
            (surfaced as :class:`~repro.errors.DegradedPathError` by the
            supervisor), so an on-path attacker cannot silently force a
            weaker party set.
    """

    tls: TLSConfig
    middlebox_trust_store: TrustStore | None = None
    require_middlebox_attestation: bool = False
    middlebox_attestation_verifier: object | None = None
    approve_middlebox: Callable[[MiddleboxInfo], bool] = lambda info: True
    preconfigured_middleboxes: tuple[str, ...] = ()
    accept_announcements: bool = True
    max_middleboxes: int = 16
    middlebox_session_store: object | None = None  # MiddleboxSessionStore
    tamper_policy: str = "drop"
    allow_fallback: bool = True

    def secondary_trust_store(self) -> TrustStore | None:
        if self.middlebox_trust_store is not None:
            return self.middlebox_trust_store
        return self.tls.trust_store


class MiddleboxRole:
    """How a middlebox decides to join sessions passing through it."""

    CLIENT_SIDE = "client-side"
    SERVER_SIDE = "server-side"
    AUTO = "auto"


@dataclass
class MiddleboxConfig:
    """Configuration for an mbTLS middlebox.

    Attributes:
        name: the middlebox service's name (must match its certificate).
        tls: TLS settings for secondary handshakes (credential required;
            ``enclave`` set when running inside SGX).
        role: CLIENT_SIDE (join when the ClientHello carries
            MiddleboxSupport), SERVER_SIDE (announce toward servers in
            ``served_servers``), or AUTO (client-side if the extension is
            present, else server-side if the destination is served, else
            relay).
        served_servers: destinations this middlebox fronts when acting
            server-side; empty set = serve every destination.
        process: the middlebox application: ``process(direction, data) ->
            data`` where direction is "c2s" or "s2c". Default: identity
            (a transparent forwarder, like the paper's baseline behaviour).
        non_mbtls_servers: cache of servers that ignored our announcement;
            we relay silently for these from then on (§3.4).
        tamper_policy: as on :class:`MbTLSEndpointConfig` — ``"drop"``
            discards records failing AEAD verification, ``"abort"``
            originates fatal ``bad_record_mac`` alerts toward both
            endpoints and tears the session down.
    """

    name: str
    tls: TLSConfig
    role: str = MiddleboxRole.AUTO
    served_servers: frozenset[str] = frozenset()
    process: Callable[[str, bytes], bytes] = lambda direction, data: data
    non_mbtls_servers: set[str] = field(default_factory=set)
    tamper_policy: str = "drop"

    def serves(self, destination: str) -> bool:
        return not self.served_servers or destination in self.served_servers
