"""Glue binding mbTLS engines to the simulated network.

* :class:`MiddleboxDriver` — runs one :class:`MbTLSMiddlebox` per intercepted
  (or directly addressed) connection, pumping both TCP segments.
* :class:`MiddleboxService` — installs a middlebox on a host, spawning one
  engine per connection; attaches to an interceptor (on-path) or a listener
  (preconfigured, directly addressed).
* :func:`serve_mbtls` / :func:`open_mbtls` — endpoint helpers.
* :class:`RetryPolicy` / :class:`SessionSupervisor` — failure recovery:
  handshake/idle timers, capped exponential-backoff redials, and the
  bypass-versus-teardown degradation policy. A supervised session always
  reaches a terminal :attr:`~SessionSupervisor.outcome`; it cannot hang.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.core.client import MbTLSClientEngine
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig, SessionEstablished
from repro.core.middlebox import MbTLSMiddlebox
from repro.core.server import MbTLSServerEngine
from repro.errors import DegradedPathError, NetworkError, SessionAborted
from repro.netsim.driver import CpuMeter, DuplexDriver, EngineDriver
from repro.netsim.network import Host, InterceptedFlow, Socket
from repro.tls.events import ConnectionClosed

__all__ = [
    "MiddleboxDriver",
    "MiddleboxService",
    "serve_mbtls",
    "open_mbtls",
    "PEER_FAULT_ALERTS",
    "RetryPolicy",
    "SessionSupervisor",
]

# Fatal alerts that mean the peer (or a path member) *rejected* the session:
# credential, policy, and negotiation failures. Redialing cannot change the
# answer, so the supervisor aborts instead of burning retries. Everything
# else — bad_record_mac, decode_error, record_overflow, unexpected_message,
# internal_error — is what benign path corruption looks like and stays
# retryable under the normal RetryPolicy.
PEER_FAULT_ALERTS = frozenset(
    {
        "handshake_failure",
        "bad_certificate",
        "unsupported_certificate",
        "certificate_revoked",
        "certificate_expired",
        "certificate_unknown",
        "illegal_parameter",
        "unknown_ca",
        "access_denied",
        "protocol_version",
        "insufficient_security",
        "no_renegotiation",
        "unsupported_extension",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Timer and retry defaults for supervised mbTLS sessions.

    Attributes:
        handshake_timeout: virtual seconds a session may take to establish
            before the driver degrades (bypasses stalled middleboxes) or
            fails the attempt.
        idle_timeout: data-phase silence budget; ``None`` disables it.
        max_attempts: total dial attempts (first try included).
        backoff_base: first retry delay; doubles per attempt.
        backoff_cap: upper bound on any retry delay.
        allow_degraded: endpoint policy — may the session complete without
            middleboxes that stalled or died (the paper's optimistic
            fallback)? With ``False`` a degraded completion is torn down
            and reported as failed (fail-closed).
    """

    handshake_timeout: float = 5.0
    idle_timeout: float | None = None
    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 4.0
    allow_degraded: bool = True

    def backoff(self, retry_index: int) -> float:
        """Delay before retry number ``retry_index`` (0-based), capped."""
        return min(self.backoff_base * (2.0 ** retry_index), self.backoff_cap)


class MiddleboxDriver(DuplexDriver):
    """A :class:`DuplexDriver` that also dials the onward (up) segment.

    Close handling comes from the base class: when either segment of the
    split TCP connection closes, the engine gets to say goodbye (a
    ``close_notify`` under the hop keys, plus closing its secondary
    subchannel) before the surviving segment is shut down.
    """

    def __init__(
        self,
        engine: MbTLSMiddlebox,
        down_socket: Socket,
        dial_up: Callable[[tuple[str, int]], Socket],
        meter: CpuMeter | None = None,
        on_event: Callable[[object], None] | None = None,
    ) -> None:
        super().__init__(engine, down_socket, meter=meter, on_event=on_event)
        self._dial_up = dial_up

    def dial_immediately(self, target: tuple[str, int]) -> None:
        """Optimistically split: open the onward segment right away."""
        try:
            self.bind_up(self._dial_up(target))
        except NetworkError:
            # Next hop unreachable: drop the client segment so the client
            # learns immediately instead of waiting on a wedged middlebox.
            self._teardown_down()

    def _after_down_data(self) -> None:
        if self.up is None and self.engine.dial_target is not None:
            try:
                self.bind_up(self._dial_up(self.engine.dial_target))
            except NetworkError:
                self._teardown_down()

    def _teardown_down(self) -> None:
        with self.meter.measure():
            events = self.engine.peer_closed_up()
        self._dispatch(events)
        if not self.down.closed:
            self._flush()
            self.down.close()


class MiddleboxService:
    """A middlebox deployment on one host, one engine per connection.

    Args:
        host: the host this middlebox runs on.
        make_config: factory producing a fresh :class:`MiddleboxConfig` per
            connection (so per-connection engines don't share TLS state);
            a plain config is also accepted and reused.
        port: the TCP port to intercept/listen on.
        listen_port: if set, also accept direct connections on this port
            (the preconfigured-middlebox deployment).
        meter: CPU meter shared across this service's connections.
    """

    def __init__(
        self,
        host: Host,
        make_config,
        port: int = 443,
        intercept: bool = True,
        listen: bool = False,
        meter: CpuMeter | None = None,
        on_event: Callable[[object], None] | None = None,
        active: bool = True,
    ) -> None:
        self.host = host
        self._make_config = make_config
        self.port = port
        self._intercept = intercept
        self._listen = listen
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.on_event = on_event
        self.drivers: list[MiddleboxDriver] = []
        #: Whether the service is registered on its host.  A *standby*
        #: replica is built with ``active=False`` and only registers when a
        #: failover controller calls :meth:`reinstall`.
        self.active = active
        if active:
            self.reinstall()

    def reinstall(self) -> None:
        """(Re-)register on the host — the crash-restart/failover hook."""
        self.active = True
        if self._intercept:
            self.host.intercept(self.port, self._on_intercept)
        if self._listen:
            self.host.listen(self.port, self._on_accept)

    def uninstall(self) -> None:
        """Deregister from the host (a standby going back to warm spare).

        Connections already split here keep running; only *new* SYNs stop
        being intercepted or accepted.
        """
        self.active = False
        self.host.stop_intercepting(self.port)
        if self._listen:
            self.host.stop_listening(self.port)

    def drain_sessions(self) -> int:
        """Crash hook: drop every connection this service still tracks.

        A crashed host has already reset its streams; draining closes any
        surviving segment (e.g. an onward dial that outlived the crash),
        forgets the drivers, and returns how many sessions were cut loose
        so the failover controller can account for them.
        """
        drained = len(self.drivers)
        for driver in self.drivers:
            for socket in (driver.down, driver.up):
                if socket is not None and not socket.closed:
                    socket.close()
        self.drivers.clear()
        return drained

    def _config(self) -> MiddleboxConfig:
        if callable(self._make_config):
            return self._make_config()
        return self._make_config

    def _on_intercept(self, flow: InterceptedFlow) -> None:
        engine = MbTLSMiddlebox(
            self._config(), destination=flow.destination, port=flow.port
        )
        driver = MiddleboxDriver(
            engine,
            flow.socket,
            dial_up=lambda target: flow.dial_onward(),
            meter=self.meter,
            on_event=self.on_event,
        )
        driver.dial_immediately(("", flow.port))  # optimistic split
        self.drivers.append(driver)

    def _on_accept(self, socket: Socket, source: str) -> None:
        engine = MbTLSMiddlebox(self._config(), destination=None, port=self.port)
        driver = MiddleboxDriver(
            engine,
            socket,
            dial_up=lambda target: self.host.connect(target[0], target[1]),
            meter=self.meter,
            on_event=self.on_event,
        )
        self.drivers.append(driver)

    def max_outbox_fill(self) -> float:
        """Fullest outbound buffer across live connections (0.0–1.0+).

        The service-level backpressure signal an orchestrator polls before
        admitting more sessions through this middlebox.  Finished
        connections are pruned here so a long churn run doesn't scan (or
        retain) every session that ever passed through.
        """
        self.drivers = [
            driver for driver in self.drivers
            if not (driver.down.closed and (driver.up is None or driver.up.closed))
        ]
        return max(
            (driver.engine.outbox_fill for driver in self.drivers), default=0.0
        )


def serve_mbtls(
    host: Host,
    make_config: Callable[[], MbTLSEndpointConfig],
    on_session: Callable[[MbTLSServerEngine, EngineDriver], None] | None = None,
    on_event: Callable[[MbTLSServerEngine, EngineDriver, object], None] | None = None,
    port: int = 443,
    meter: CpuMeter | None = None,
    policy: RetryPolicy | None = None,
) -> None:
    """Run an mbTLS server on ``host``: one engine per accepted connection.

    With a ``policy``, each accepted session gets a handshake timer: stalled
    middlebox announcements are bypassed once it fires (or the session is
    closed if the primary handshake itself stalled), so a broken path can
    never wedge a server-side session open forever.
    """
    service_meter = meter if meter is not None else CpuMeter(host.name)

    def accept(socket: Socket, source: str) -> None:
        engine = MbTLSServerEngine(make_config())
        driver = EngineDriver(
            engine,
            socket,
            meter=service_meter,
            handshake_timeout=policy.handshake_timeout if policy else None,
            idle_timeout=policy.idle_timeout if policy else None,
        )
        if on_event is not None:
            driver.on_event = lambda event: on_event(engine, driver, event)
        driver.start()
        if on_session is not None:
            on_session(engine, driver)

    host.listen(port, accept)


def open_mbtls(
    host: Host,
    destination: str,
    config: MbTLSEndpointConfig,
    on_event: Callable[[object], None] | None = None,
    port: int = 443,
    meter: CpuMeter | None = None,
    policy: RetryPolicy | None = None,
) -> tuple[MbTLSClientEngine, EngineDriver]:
    """Open an mbTLS client connection from ``host`` to ``destination``.

    With a ``policy`` the single attempt is armed with its timers; for full
    redial-with-backoff supervision use :class:`SessionSupervisor`.
    """
    engine = MbTLSClientEngine(config)
    socket = host.connect(destination, port)
    driver = EngineDriver(
        engine,
        socket,
        on_event=on_event,
        meter=meter,
        handshake_timeout=policy.handshake_timeout if policy else None,
        idle_timeout=policy.idle_timeout if policy else None,
    )
    driver.start()
    return engine, driver


class SessionSupervisor:
    """Failure-recovery wrapper around an mbTLS client session.

    Dials, arms the handshake timer, and — when an attempt times out or the
    transport resets under it — redials with capped exponential backoff
    using a fresh engine. Every supervised session ends in exactly one
    terminal outcome:

    * ``"established"`` — full-strength session on the first attempt;
    * ``"degraded"`` — the session works, but only after retries and/or
      with middleboxes bypassed (allowed iff ``policy.allow_degraded``);
    * ``"failed"`` — attempts exhausted (or degradation forbidden); the
      last attempt was closed cleanly;
    * ``"aborted"`` — a peer-fault fatal alert (see
      :data:`PEER_FAULT_ALERTS`) ended the attempt: the peer or a path
      member rejected us, so no redial is scheduled. :attr:`abort` carries
      the originating hop and alert description.

    The supervisor never raises out of the event loop and never hangs: the
    worst case is ``max_attempts`` timer horizons plus backoff.

    The lifecycle is a scheduler-driven state machine — every transition
    happens inside a simulator callback (socket event, timer, backoff
    timer), never inside a pump loop::

        pending → dialing → handshaking → established | degraded → closed
                      ↑          |
                      └─ backoff ┘        (plus terminal failed / aborted)

    :attr:`state` names the current node; ``on_state`` observes every
    transition, which is how an orchestrator drives thousands of sessions
    without polling.  ``start=False`` defers the first dial (state stays
    ``"pending"``) so an admission controller can hold sessions back and
    release them with :meth:`start`.
    """

    def __init__(
        self,
        host: Host,
        destination: str,
        make_config: Callable[[], MbTLSEndpointConfig],
        on_event: Callable[[object], None] | None = None,
        port: int = 443,
        meter: CpuMeter | None = None,
        policy: RetryPolicy | None = None,
        start: bool = True,
        on_state: Callable[["SessionSupervisor", str], None] | None = None,
        retry_gate: Callable[[str], bool] | None = None,
    ) -> None:
        self.host = host
        self.destination = destination
        self._make_config = make_config
        self._user_on_event = on_event
        self.port = port
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.policy = policy if policy is not None else RetryPolicy()
        #: Anti-amplification hook: consulted with the destination before
        #: every redial.  Returning ``False`` (a spent retry budget or an
        #: open circuit breaker) fails the session instead of dialing —
        #: a retry storm cannot outrun the gate.  ``None`` means ungated
        #: (the historical standalone-supervisor behaviour); a fleet
        #: orchestrator injects its per-``(shard, server)`` gate at
        #: admission time.
        self.retry_gate = retry_gate
        self.attempt = 0
        self.state = "pending"
        self.outcome: str | None = None
        self.failure: str | None = None
        self.degraded_refused = False
        self.abort: SessionAborted | None = None
        self.engine: MbTLSClientEngine | None = None
        self.driver: EngineDriver | None = None
        self.events: list[object] = []
        self.first_dial_at: float | None = None
        self.established_at: float | None = None
        self._attempt_span = None
        self._on_state = on_state
        if start:
            self.start()

    # ------------------------------------------------------------------ API

    @property
    def established(self) -> bool:
        return self.outcome in ("established", "degraded")

    @property
    def handshake_latency(self) -> float | None:
        """Virtual seconds from the first dial to establishment (retries
        and backoff included), or ``None`` before the session is up."""
        if self.first_dial_at is None or self.established_at is None:
            return None
        return self.established_at - self.first_dial_at

    def start(self) -> None:
        """Begin dialing a deferred (``start=False``) supervisor."""
        if self.state != "pending":
            raise NetworkError(f"cannot start a session in state {self.state!r}")
        self.first_dial_at = self.host.network.sim.now
        self._dial()

    def send_application_data(self, data: bytes) -> None:
        if self.degraded_refused:
            raise DegradedPathError(
                "session degraded and policy forbids the weakened path"
            )
        if not self.established or self.driver is None:
            raise NetworkError("session is not established")
        if self.driver.session_over:
            raise NetworkError("session is over")
        self.driver.send_application_data(data)

    def close(self) -> None:
        if self.driver is not None and not self.driver.session_over:
            self.driver.close()
        if self.established and self.state != "closed":
            self._set_state("closed")

    # ------------------------------------------------------------ internals

    def _set_state(self, state: str) -> None:
        self.state = state
        if self._on_state is not None:
            self._on_state(self, state)

    def _finish(self, outcome: str) -> None:
        self.outcome = outcome
        if outcome in ("established", "degraded"):
            self.established_at = self.host.network.sim.now
        obs.counter(
            "supervisor_outcomes", destination=self.destination, outcome=outcome
        ).inc()
        obs.tracer().end(self._attempt_span, outcome=outcome)
        self._set_state(outcome)

    def _dial(self) -> None:
        self.attempt += 1
        self._set_state("dialing")
        obs.counter("supervisor_dials", destination=self.destination).inc()
        self._attempt_span = obs.tracer().begin(
            "session.attempt", party=self.host.name,
            attempt=self.attempt, destination=self.destination,
        )
        try:
            socket = self.host.connect(self.destination, self.port)
        except NetworkError as exc:
            self._attempt_over(str(exc))
            return
        engine = MbTLSClientEngine(self._make_config())
        self.engine = engine
        self.driver = EngineDriver(
            engine,
            socket,
            on_event=self._on_event,
            meter=self.meter,
            handshake_timeout=self.policy.handshake_timeout,
            idle_timeout=self.policy.idle_timeout,
            on_timeout=self._on_timeout,
        )
        self._set_state("handshaking")
        self.driver.start()

    def _on_event(self, event: object) -> None:
        self.events.append(event)
        if isinstance(event, SessionEstablished) and self.outcome is None:
            # Degraded = reached a session, but not the one we dialed for:
            # it took retries, or the engine recorded fallback decisions
            # (bypassed, failed, or policy-rejected path members). Each
            # engine-side decision already carries its own session.fallback
            # counter; the retry path is the supervisor's own decision, so
            # it is accounted here.
            fallbacks = tuple(getattr(self.engine, "fallback_decisions", ()))
            degraded = self.attempt > 1 or bool(fallbacks)
            if self.attempt > 1:
                obs.counter(
                    "session.fallback", party=self.host.name, reason="retry"
                ).inc()
            if degraded and not self.policy.allow_degraded:
                # Fail-closed endpoint policy: a weakened path is worse
                # than no path. Tear down with a clean close.
                obs.counter(
                    "session.fallback",
                    party=self.host.name,
                    reason="refused",
                ).inc()
                self.degraded_refused = True
                self._finish("failed")
                self.failure = str(
                    DegradedPathError("degraded session forbidden by policy")
                )
                self.driver.close()
            else:
                self._finish("degraded" if degraded else "established")
        elif isinstance(event, ConnectionClosed):
            alert = getattr(event, "alert", "")
            if alert and event.error is not None and self.abort is None:
                # A fatal alert ended the session; record the attribution
                # whether or not the session had established.
                self.abort = SessionAborted(
                    event.error, origin=getattr(event, "origin", ""), alert=alert
                )
            if self.outcome is None:
                # The attempt died before establishing (reset, refused,
                # fatal alert, timeout): the timeout path is handled by
                # _on_timeout; a peer-fault alert aborts; everything else
                # retries here.
                if self.driver is not None and self.driver.timed_out:
                    return  # _on_timeout owns this attempt's retry
                if alert in PEER_FAULT_ALERTS:
                    self._finish("aborted")
                    self.failure = event.error or alert
                else:
                    self._attempt_over(event.error or "connection closed")
            elif self.established and self.state != "closed":
                # Steady state ended: teardown observed from either side.
                self._set_state("closed")
        if self._user_on_event is not None:
            self._user_on_event(event)

    def _on_timeout(self, kind: str) -> None:
        if self.outcome is None and kind == "handshake":
            self._attempt_over("handshake timeout")

    def _attempt_over(self, error: str) -> None:
        if self.outcome is not None:
            return
        obs.tracer().end(self._attempt_span, error=error)
        if self.attempt >= self.policy.max_attempts:
            self._finish("failed")
            self.failure = error
            return
        if self.retry_gate is not None and not self.retry_gate(self.destination):
            # Budget spent or breaker open: fail fast instead of piling a
            # redial onto a path that is already melting down.
            obs.counter(
                "supervisor_redials_denied", destination=self.destination
            ).inc()
            self._finish("failed")
            self.failure = f"{error} (redial denied by retry gate)"
            return
        delay = self.policy.backoff(self.attempt - 1)
        self._set_state("backoff")
        self.host.network.sim.schedule(delay, self._redial)

    def _redial(self) -> None:
        if self.outcome is not None:
            return
        obs.counter("supervisor_redials", destination=self.destination).inc()
        if not self.host.alive:
            self._attempt_over(f"host {self.host.name} is down")
            return
        self._dial()
