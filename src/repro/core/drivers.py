"""Glue binding mbTLS engines to the simulated network.

* :class:`MiddleboxDriver` — runs one :class:`MbTLSMiddlebox` per intercepted
  (or directly addressed) connection, pumping both TCP segments.
* :class:`MiddleboxService` — installs a middlebox on a host, spawning one
  engine per connection; attaches to an interceptor (on-path) or a listener
  (preconfigured, directly addressed).
* :func:`serve_mbtls` / :func:`open_mbtls` — endpoint helpers.
"""

from __future__ import annotations

from typing import Callable

from repro.core.client import MbTLSClientEngine
from repro.core.config import MbTLSEndpointConfig, MiddleboxConfig
from repro.core.middlebox import MbTLSMiddlebox
from repro.core.server import MbTLSServerEngine
from repro.netsim.driver import CpuMeter, EngineDriver
from repro.netsim.network import Host, InterceptedFlow, Network, Socket

__all__ = ["MiddleboxDriver", "MiddleboxService", "serve_mbtls", "open_mbtls"]


class MiddleboxDriver:
    """Pumps one middlebox engine between its two sockets."""

    def __init__(
        self,
        engine: MbTLSMiddlebox,
        down_socket: Socket,
        dial_up: Callable[[tuple[str, int]], Socket],
        meter: CpuMeter | None = None,
        on_event: Callable[[object], None] | None = None,
    ) -> None:
        self.engine = engine
        self.down = down_socket
        self.up: Socket | None = None
        self._dial_up = dial_up
        self.meter = meter if meter is not None else CpuMeter()
        self.on_event = on_event
        down_socket.on_data(self._on_down_data)
        down_socket.on_close(self._on_down_close)

    def dial_immediately(self, target: tuple[str, int]) -> None:
        """Optimistically split: open the onward segment right away."""
        self._bind_up(self._dial_up(target))

    def _bind_up(self, socket: Socket) -> None:
        self.up = socket
        socket.on_data(self._on_up_data)
        socket.on_close(self._on_up_close)
        self._flush()

    def _ensure_up(self) -> None:
        if self.up is None and self.engine.dial_target is not None:
            self._bind_up(self._dial_up(self.engine.dial_target))

    def _on_down_data(self, data: bytes) -> None:
        with self.meter.measure():
            events = self.engine.receive_down(data)
        self._dispatch(events)
        self._ensure_up()
        self._flush()

    def _on_up_data(self, data: bytes) -> None:
        with self.meter.measure():
            events = self.engine.receive_up(data)
        self._dispatch(events)
        self._flush()

    def _dispatch(self, events) -> None:
        if self.on_event is not None:
            for event in events:
                self.on_event(event)

    def _flush(self) -> None:
        if self.up is not None and not self.up.closed:
            data = self.engine.data_to_send_up()
            if data:
                self.up.send(data)
        if not self.down.closed:
            data = self.engine.data_to_send_down()
            if data:
                self.down.send(data)

    def _on_down_close(self) -> None:
        if self.up is not None and not self.up.closed:
            self._flush()
            self.up.close()

    def _on_up_close(self) -> None:
        if not self.down.closed:
            self._flush()
            self.down.close()


class MiddleboxService:
    """A middlebox deployment on one host, one engine per connection.

    Args:
        host: the host this middlebox runs on.
        make_config: factory producing a fresh :class:`MiddleboxConfig` per
            connection (so per-connection engines don't share TLS state);
            a plain config is also accepted and reused.
        port: the TCP port to intercept/listen on.
        listen_port: if set, also accept direct connections on this port
            (the preconfigured-middlebox deployment).
        meter: CPU meter shared across this service's connections.
    """

    def __init__(
        self,
        host: Host,
        make_config,
        port: int = 443,
        intercept: bool = True,
        listen: bool = False,
        meter: CpuMeter | None = None,
        on_event: Callable[[object], None] | None = None,
    ) -> None:
        self.host = host
        self._make_config = make_config
        self.port = port
        self.meter = meter if meter is not None else CpuMeter(host.name)
        self.on_event = on_event
        self.drivers: list[MiddleboxDriver] = []
        if intercept:
            host.intercept(port, self._on_intercept)
        if listen:
            host.listen(port, self._on_accept)

    def _config(self) -> MiddleboxConfig:
        if callable(self._make_config):
            return self._make_config()
        return self._make_config

    def _on_intercept(self, flow: InterceptedFlow) -> None:
        engine = MbTLSMiddlebox(
            self._config(), destination=flow.destination, port=flow.port
        )
        driver = MiddleboxDriver(
            engine,
            flow.socket,
            dial_up=lambda target: flow.dial_onward(),
            meter=self.meter,
            on_event=self.on_event,
        )
        driver.dial_immediately(("", flow.port))  # optimistic split
        self.drivers.append(driver)

    def _on_accept(self, socket: Socket, source: str) -> None:
        engine = MbTLSMiddlebox(self._config(), destination=None, port=self.port)
        driver = MiddleboxDriver(
            engine,
            socket,
            dial_up=lambda target: self.host.connect(target[0], target[1]),
            meter=self.meter,
            on_event=self.on_event,
        )
        self.drivers.append(driver)


def serve_mbtls(
    host: Host,
    make_config: Callable[[], MbTLSEndpointConfig],
    on_session: Callable[[MbTLSServerEngine, EngineDriver], None] | None = None,
    on_event: Callable[[MbTLSServerEngine, EngineDriver, object], None] | None = None,
    port: int = 443,
    meter: CpuMeter | None = None,
) -> None:
    """Run an mbTLS server on ``host``: one engine per accepted connection."""
    service_meter = meter if meter is not None else CpuMeter(host.name)

    def accept(socket: Socket, source: str) -> None:
        engine = MbTLSServerEngine(make_config())
        driver = EngineDriver(engine, socket, meter=service_meter)
        if on_event is not None:
            driver.on_event = lambda event: on_event(engine, driver, event)
        driver.start()
        if on_session is not None:
            on_session(engine, driver)

    host.listen(port, accept)


def open_mbtls(
    host: Host,
    destination: str,
    config: MbTLSEndpointConfig,
    on_event: Callable[[object], None] | None = None,
    port: int = 443,
    meter: CpuMeter | None = None,
) -> tuple[MbTLSClientEngine, EngineDriver]:
    """Open an mbTLS client connection from ``host`` to ``destination``."""
    engine = MbTLSClientEngine(config)
    socket = host.connect(destination, port)
    driver = EngineDriver(engine, socket, on_event=on_event, meter=meter)
    driver.start()
    return engine, driver
