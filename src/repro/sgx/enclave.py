"""Simulated SGX enclaves: isolated memory plus code measurement.

The model captures exactly the two SGX features mbTLS consumes:

* **Isolated execution** — secrets stored through an enclave's
  :class:`MemoryArena` are invisible to the platform owner; secrets stored in
  ordinary host memory are not. A malicious middlebox infrastructure
  provider (MIP) is modelled by :meth:`Platform.dump_visible_secrets`.
* **Code identity** — an enclave's *measurement* is the hash of its initial
  code and configuration. A MIP that swaps the middlebox software before
  launch necessarily changes the measurement, which remote attestation
  (see :mod:`repro.sgx.attestation`) then exposes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import EnclaveError

__all__ = ["EnclaveCode", "MemoryArena", "Enclave", "Platform"]


@dataclass(frozen=True)
class EnclaveCode:
    """The code + configuration loaded into an enclave at launch.

    Attributes:
        name: human-readable application name (e.g. ``"header-proxy"``).
        version: version string; part of the measured identity.
        image: opaque bytes standing in for the code/data pages that SGX
            hashes into MRENCLAVE (here: any canonical serialization of the
            middlebox application and its configuration).
    """

    name: str
    version: str
    image: bytes = b""

    @property
    def measurement(self) -> bytes:
        """The enclave measurement (MRENCLAVE analogue)."""
        h = hashlib.sha256()
        for part in (self.name.encode(), self.version.encode(), self.image):
            h.update(len(part).to_bytes(4, "big"))
            h.update(part)
        return h.digest()


class MemoryArena:
    """A labelled store for secrets, attributable to enclave or host memory.

    Protocol engines report every piece of key material they hold through an
    arena (see ``TLSConfig.on_secret``); the security tests then ask the
    platform what an adversarial MIP could read.
    """

    def __init__(self, protected: bool) -> None:
        self.protected = protected
        self._secrets: dict[str, list[bytes]] = {}

    def store(self, label: str, secret: bytes) -> None:
        self._secrets.setdefault(label, []).append(bytes(secret))

    def secrets(self) -> dict[str, list[bytes]]:
        return {label: list(values) for label, values in self._secrets.items()}

    def all_bytes(self) -> set[bytes]:
        return {value for values in self._secrets.values() for value in values}


class Enclave:
    """A launched enclave: measured code plus protected memory.

    Enclaves are created through :meth:`Platform.launch_enclave` so that a
    malicious platform gets its chance to tamper with the code image first —
    exactly the attack remote attestation exists to catch.
    """

    def __init__(self, code: EnclaveCode, platform: "Platform") -> None:
        self.code = code
        self.platform = platform
        self.memory = MemoryArena(protected=True)

    @property
    def measurement(self) -> bytes:
        return self.code.measurement

    def quote(self, report_data: bytes) -> "bytes":
        """Produce an attestation quote binding ``report_data`` (≤64 bytes)."""
        return self.platform.attestation_service.sign_quote(
            self.measurement, report_data
        )


class Platform:
    """The hardware + privileged software of one machine (the MIP's domain).

    Args:
        attestation_service: the simulated Intel attestation authority whose
            key signs this platform's quotes.
        malicious: whether the platform owner actively attacks. A malicious
            platform can read all host (non-enclave) memory and substitute
            enclave code at launch; it can never read enclave memory — the
            threat model assumes the CPU is not physically compromised.
    """

    def __init__(self, attestation_service, malicious: bool = False) -> None:
        self.attestation_service = attestation_service
        self.malicious = malicious
        self.host_memory = MemoryArena(protected=False)
        self.enclaves: list[Enclave] = []
        self._code_substitution: EnclaveCode | None = None

    def plant_code_substitution(self, evil_code: EnclaveCode) -> None:
        """(Malicious MIP) replace the next enclave's code image at launch."""
        if not self.malicious:
            raise EnclaveError("honest platforms do not tamper with enclave code")
        self._code_substitution = evil_code

    def launch_enclave(self, code: EnclaveCode) -> Enclave:
        """Launch an enclave; a malicious platform may substitute the code."""
        if self._code_substitution is not None:
            code = self._code_substitution
            self._code_substitution = None
        enclave = Enclave(code, self)
        self.enclaves.append(enclave)
        return enclave

    def arena_for(self, enclave: Enclave | None) -> MemoryArena:
        """The memory a component runs in: enclave memory or host memory."""
        if enclave is None:
            return self.host_memory
        if enclave not in self.enclaves:
            raise EnclaveError("enclave does not belong to this platform")
        return enclave.memory

    def dump_visible_secrets(self) -> set[bytes]:
        """Everything a platform owner with full hardware access can read.

        Enclave memory is excluded: SGX encrypts and integrity-protects
        cache lines before they reach DRAM.
        """
        return self.host_memory.all_bytes()
