"""Simulated Intel SGX: enclaves, remote attestation, and an I/O cost model."""

from repro.sgx.attestation import AttestationService, AttestationVerifier, Quote
from repro.sgx.enclave import Enclave, EnclaveCode, MemoryArena, Platform
from repro.sgx.syscalls import SgxCostModel, ThroughputResult

__all__ = [
    "AttestationService",
    "AttestationVerifier",
    "Quote",
    "Enclave",
    "EnclaveCode",
    "MemoryArena",
    "Platform",
    "SgxCostModel",
    "ThroughputResult",
]
