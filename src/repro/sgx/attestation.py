"""Simulated remote attestation: quotes signed by an "Intel" authority.

A quote binds an enclave measurement to 64 bytes of ``report_data``. mbTLS
puts a hash of the handshake transcript in ``report_data``, which is what
makes each quote fresh and unreplayable (§3.4, "Secure Environment
Attestation").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RSAPublicKey, generate_rsa_key
from repro.errors import AttestationError, DecodeError
from repro.wire.codec import Reader, Writer

__all__ = ["Quote", "AttestationService", "AttestationVerifier"]

_REPORT_DATA_LEN = 64


@dataclass(frozen=True)
class Quote:
    """An attestation quote: measurement, report data, authority signature."""

    measurement: bytes
    report_data: bytes
    signature: bytes

    def encode(self) -> bytes:
        return (
            Writer()
            .write_vector(self.measurement, 2)
            .write_vector(self.report_data, 2)
            .write_vector(self.signature, 2)
            .getvalue()
        )

    @classmethod
    def decode(cls, data: bytes) -> "Quote":
        reader = Reader(data)
        measurement = reader.read_vector(2)
        report_data = reader.read_vector(2)
        signature = reader.read_vector(2)
        reader.expect_end()
        if len(report_data) != _REPORT_DATA_LEN:
            raise DecodeError("quote report_data must be 64 bytes")
        return cls(measurement=measurement, report_data=report_data, signature=signature)

    def signed_bytes(self) -> bytes:
        return (
            Writer()
            .write_vector(self.measurement, 2)
            .write_vector(self.report_data, 2)
            .getvalue()
        )


class AttestationService:
    """The root of attestation trust (Intel's provisioning/quoting key).

    One instance typically serves a whole simulation; every platform's
    quotes chain to it, and every verifier holds its public key.
    """

    def __init__(self, rng: HmacDrbg | None = None, key_bits: int = 1024) -> None:
        rng = rng if rng is not None else HmacDrbg(b"attestation-service")
        self._key = generate_rsa_key(key_bits, rng)

    @property
    def public_key(self) -> RSAPublicKey:
        return self._key.public_key

    def sign_quote(self, measurement: bytes, report_data: bytes) -> bytes:
        """Produce an encoded quote over (measurement, report_data)."""
        if len(report_data) > _REPORT_DATA_LEN:
            raise AttestationError("report_data exceeds 64 bytes")
        report_data = report_data.ljust(_REPORT_DATA_LEN, b"\x00")
        unsigned = Quote(measurement=measurement, report_data=report_data, signature=b"")
        signature = self._key.sign(unsigned.signed_bytes())
        return Quote(
            measurement=measurement, report_data=report_data, signature=signature
        ).encode()

    def verifier(
        self, expected_measurements: set[bytes] | None = None
    ) -> "AttestationVerifier":
        return AttestationVerifier(self.public_key, expected_measurements)


class AttestationVerifier:
    """Verifies quotes against the authority key and a measurement allowlist."""

    def __init__(
        self,
        authority_key: RSAPublicKey,
        expected_measurements: set[bytes] | None = None,
    ) -> None:
        self._authority_key = authority_key
        self.expected_measurements = expected_measurements

    def verify(self, quote_bytes: bytes, expected_report_data: bytes) -> Quote:
        """Check signature, freshness binding, and code identity.

        Args:
            quote_bytes: the encoded quote from the SGXAttestation message.
            expected_report_data: what the verifier independently computed
                (for mbTLS: the transcript hash at the attestation point).

        Raises:
            AttestationError: if any check fails.
        """
        try:
            quote = Quote.decode(quote_bytes)
        except DecodeError as exc:
            raise AttestationError(f"malformed quote: {exc}") from exc
        if not self._authority_key.verify(quote.signed_bytes(), quote.signature):
            raise AttestationError("quote signature does not verify")
        expected = expected_report_data.ljust(_REPORT_DATA_LEN, b"\x00")
        if quote.report_data != expected:
            raise AttestationError(
                "quote report_data does not match this handshake (replay?)"
            )
        if (
            self.expected_measurements is not None
            and quote.measurement not in self.expected_measurements
        ):
            raise AttestationError("enclave measurement not in the expected set")
        return quote
